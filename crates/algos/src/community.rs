//! Label-propagation community detection (queries Q7 and Q8).
//!
//! Q7 runs an iterative, synchronous label-propagation pass count over
//! the graph (the paper uses the APOC label-propagation UDF with 25
//! passes); Q8 then retrieves the largest community by the number of
//! vertices of a given type it contains.

use std::collections::HashMap;

use kaskade_graph::{Graph, VertexId};

/// Sentinel label for tombstoned vertex slots (never a community id).
const DEAD: u32 = u32::MAX;

/// Community assignment: `labels[v.index()]` is the community id of `v`
/// (`u32::MAX` marks a tombstoned slot with no community).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communities {
    /// Per-vertex community label.
    pub labels: Vec<u32>,
    /// Number of synchronous passes actually executed.
    pub passes: usize,
}

/// Synchronous label propagation for `passes` iterations (Q7). Each
/// vertex starts in its own community; at every pass each vertex adopts
/// the most frequent label among its (in+out) neighbors and itself,
/// breaking ties toward the smaller label so runs are deterministic
/// (counting the vertex's own label also prevents the two-cycle
/// oscillation synchronous label propagation is prone to). Stops early
/// when no label changes.
pub fn label_propagation(g: &Graph, passes: usize) -> Communities {
    // labels are indexed by vertex *slot*; tombstoned slots keep the
    // DEAD sentinel and never participate (live vertices only ever see
    // live neighbors, so a dead label cannot propagate)
    let mut labels: Vec<u32> = vec![DEAD; g.vertex_slots()];
    for v in g.vertices() {
        labels[v.index()] = v.0;
    }
    let mut executed = 0;
    let mut histogram: HashMap<u32, usize> = HashMap::new();
    for _ in 0..passes {
        executed += 1;
        let mut next = labels.clone();
        let mut changed = false;
        for v in g.vertices() {
            histogram.clear();
            *histogram.entry(labels[v.index()]).or_default() += 1;
            for w in g.out_neighbors(v) {
                *histogram.entry(labels[w.index()]).or_default() += 1;
            }
            for w in g.in_neighbors(v) {
                *histogram.entry(labels[w.index()]).or_default() += 1;
            }
            if histogram.is_empty() {
                continue;
            }
            // most frequent label; ties toward the smaller label
            let best = histogram
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(_, std::cmp::Reverse(l))| l)
                .unwrap();
            if best != labels[v.index()] {
                next[v.index()] = best;
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }
    Communities {
        labels,
        passes: executed,
    }
}

/// Sizes of all communities, as `(label, member_count)` sorted by
/// descending size then label.
pub fn community_sizes(c: &Communities) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &l in &c.labels {
        if l != DEAD {
            *counts.entry(l).or_default() += 1;
        }
    }
    let mut v: Vec<(u32, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Q8: the label and member set of the community containing the most
/// vertices of `count_type` (e.g. "Job" in prov). Returns `None` on an
/// empty graph or when no vertex has that type.
pub fn largest_community(
    g: &Graph,
    c: &Communities,
    count_type: &str,
) -> Option<(u32, Vec<VertexId>)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for v in g.vertices_of_type(count_type) {
        *counts.entry(c.labels[v.index()]).or_default() += 1;
    }
    let (&best, _) = counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))?;
    let members = g
        .vertices()
        .filter(|v| c.labels[v.index()] == best)
        .collect();
    Some((best, members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::GraphBuilder;

    /// Two triangles joined by nothing: {0,1,2} and {3,4,5}.
    fn two_triangles() -> kaskade_graph::Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..6).map(|_| b.add_vertex("V")).collect();
        for &(i, j) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(vs[i], vs[j], "E");
        }
        b.finish()
    }

    #[test]
    fn tombstoned_vertices_form_no_communities() {
        // retract one vertex of the first triangle: label propagation
        // must neither panic on the dead slot nor count it
        let g = two_triangles().remove_vertices([kaskade_graph::VertexId(0)]);
        let c = label_propagation(&g, 25);
        assert_eq!(c.labels.len(), 6); // slot-indexed
        assert_eq!(c.labels[0], u32::MAX, "dead slot carries the sentinel");
        let sizes = community_sizes(&c);
        assert_eq!(sizes.iter().map(|&(_, n)| n).sum::<usize>(), 5);
        let (_, members) = largest_community(&g, &c, "V").unwrap();
        assert!(!members.contains(&kaskade_graph::VertexId(0)));
    }

    #[test]
    fn disconnected_components_get_distinct_labels() {
        let g = two_triangles();
        let c = label_propagation(&g, 25);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[1], c.labels[2]);
        assert_eq!(c.labels[3], c.labels[4]);
        assert_ne!(c.labels[0], c.labels[3]);
    }

    #[test]
    fn converges_early_and_reports_passes() {
        let g = two_triangles();
        let c = label_propagation(&g, 100);
        assert!(c.passes < 100, "should converge, took {}", c.passes);
    }

    #[test]
    fn community_sizes_sorted() {
        let g = two_triangles();
        let c = label_propagation(&g, 25);
        let sizes = community_sizes(&c);
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes[0].1, 3);
        assert_eq!(sizes[1].1, 3);
    }

    #[test]
    fn largest_community_by_type() {
        // triangle of jobs + pair of files
        let mut b = GraphBuilder::new();
        let j: Vec<_> = (0..3).map(|_| b.add_vertex("Job")).collect();
        let f: Vec<_> = (0..2).map(|_| b.add_vertex("File")).collect();
        b.add_edge(j[0], j[1], "E");
        b.add_edge(j[1], j[2], "E");
        b.add_edge(j[2], j[0], "E");
        b.add_edge(f[0], f[1], "E");
        let g = b.finish();
        let c = label_propagation(&g, 25);
        let (_, members) = largest_community(&g, &c, "Job").unwrap();
        assert_eq!(members.len(), 3);
        assert!(members.iter().all(|v| g.vertex_type(*v) == "Job"));
    }

    #[test]
    fn largest_community_none_for_missing_type() {
        let g = two_triangles();
        let c = label_propagation(&g, 5);
        assert!(largest_community(&g, &c, "Job").is_none());
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let mut b = GraphBuilder::new();
        b.add_vertex("V");
        b.add_vertex("V");
        let g = b.finish();
        let c = label_propagation(&g, 10);
        assert_eq!(c.labels, vec![0, 1]);
        assert_eq!(c.passes, 1); // converges immediately
    }

    #[test]
    fn deterministic_tie_break() {
        // a -- b: both adopt the smaller label 0
        let mut b = GraphBuilder::new();
        let x = b.add_vertex("V");
        let y = b.add_vertex("V");
        b.add_edge(x, y, "E");
        let g = b.finish();
        let c = label_propagation(&g, 25);
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[1], 0);
    }
}
