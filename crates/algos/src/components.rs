//! Weakly connected components (union-find) and data valuation.
//!
//! Data valuation is one of the §I-A motivating applications:
//! "quantifying the value of a dataset in terms of its 'centrality' to
//! jobs or users accessing them". We operationalize it as the number of
//! distinct downstream consumers of a vertex within a hop budget.

use kaskade_graph::{Graph, VertexId};

/// Union-find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

/// Weakly connected components: edge direction is ignored. Returns a
/// per-vertex component label (the smallest vertex id in the component)
/// and the number of components.
pub fn weakly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut uf = UnionFind::new(g.vertex_slots());
    for e in g.edges() {
        uf.union(g.edge_src(e).index(), g.edge_dst(e).index());
    }
    // canonical label: smallest live member id per component; dead
    // slots keep u32::MAX so they never found a component
    let mut label = vec![u32::MAX; g.vertex_slots()];
    for v in g.vertices() {
        let r = uf.find(v.index());
        label[r] = label[r].min(v.0);
    }
    let mut out = vec![u32::MAX; g.vertex_slots()];
    let mut count = 0;
    for v in g.vertices() {
        let r = uf.find(v.index());
        out[v.index()] = label[r];
        if label[r] == v.0 {
            count += 1;
        }
    }
    (out, count)
}

/// Data valuation: for every vertex of type `vtype`, the number of
/// distinct downstream vertices of type `consumer_type` reachable
/// within `max_hops` hops. Sorted by descending value, ties by id.
pub fn data_valuation(
    g: &Graph,
    vtype: &str,
    consumer_type: &str,
    max_hops: usize,
) -> Vec<(VertexId, usize)> {
    let mut out: Vec<(VertexId, usize)> = g
        .vertices_of_type(vtype)
        .map(|v| {
            let consumers = crate::traversal::descendants(g, v, max_hops)
                .into_iter()
                .filter(|&w| g.vertex_type(w) == consumer_type)
                .count();
            (v, consumers)
        })
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::GraphBuilder;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn wcc_ignores_direction() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        let d = b.add_vertex("V");
        let e = b.add_vertex("V");
        b.add_edge(c, a, "E"); // direction into a — still same component
        b.add_edge(d, e, "E");
        let g = b.finish();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[a.index()], labels[c.index()]);
        assert_eq!(labels[d.index()], labels[e.index()]);
        assert_ne!(labels[a.index()], labels[d.index()]);
    }

    #[test]
    fn wcc_labels_are_canonical_min_ids() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex("V");
        let v1 = b.add_vertex("V");
        let v2 = b.add_vertex("V");
        b.add_edge(v2, v1, "E");
        b.add_edge(v1, v0, "E");
        let g = b.finish();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
        assert_eq!(labels, vec![0, 0, 0]);
    }

    #[test]
    fn wcc_empty_and_isolated() {
        let g = GraphBuilder::new().finish();
        let (labels, count) = weakly_connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);

        let mut b = GraphBuilder::new();
        b.add_vertex("V");
        b.add_vertex("V");
        let g = b.finish();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
    }

    #[test]
    fn data_valuation_counts_downstream_consumers() {
        // f0 read by j1 and j2 (via direct edges); f1 read by j2 only
        let mut b = GraphBuilder::new();
        let f0 = b.add_vertex("File");
        let f1 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let j2 = b.add_vertex("Job");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(f0, j2, "IS_READ_BY");
        b.add_edge(f1, j2, "IS_READ_BY");
        let g = b.finish();
        let vals = data_valuation(&g, "File", "Job", 4);
        assert_eq!(vals[0], (f0, 2));
        assert_eq!(vals[1], (f1, 1));
    }

    #[test]
    fn data_valuation_transitive() {
        // f0 -> j1 -> f1 -> j2: f0's value at 3 hops counts j1 and j2
        let mut b = GraphBuilder::new();
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j1, f1, "WRITES_TO");
        b.add_edge(f1, j2, "IS_READ_BY");
        let g = b.finish();
        let vals = data_valuation(&g, "File", "Job", 3);
        assert_eq!(vals[0], (f0, 2));
        // with a 1-hop budget only the direct reader counts
        let vals1 = data_valuation(&g, "File", "Job", 1);
        assert_eq!(vals1[0].1, 1);
    }
}
