//! # kaskade-algos
//!
//! Graph algorithms backing the Kaskade evaluation workload (Table IV):
//! bounded traversals (Q2/Q3), blast-radius aggregation (Q1), weighted
//! path lengths (Q4), and label-propagation community detection (Q7/Q8).
//! In the paper these run as Neo4j queries plus APOC UDFs; here they are
//! direct algorithms over [`kaskade_graph::Graph`], used both by the
//! examples and as the execution layer for the rewritten-query
//! benchmarks.

#![warn(missing_docs)]

mod community;
mod components;
mod paths;
mod traversal;

pub use community::{community_sizes, label_propagation, largest_community, Communities};
pub use components::{data_valuation, weakly_connected_components, UnionFind};
pub use paths::{path_lengths, total_path_length, PathLength};
pub use traversal::{ancestors, blast_radius_sum, descendants, k_hop_neighborhood, Direction};
