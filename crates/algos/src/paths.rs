//! Weighted path-length computation (query Q4 of Table IV).
//!
//! Q4 retrieves all vertices in a source vertex's forward k-hop
//! neighborhood and, for each, aggregates (max) an edge property
//! (timestamp) over the edges of the path used to reach it.

use std::collections::VecDeque;

use kaskade_graph::{Graph, VertexId};

/// One Q4 result row: a reached vertex, its hop distance, and the
/// maximum edge timestamp along the BFS discovery path to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLength {
    /// Reached vertex.
    pub vertex: VertexId,
    /// Hop distance from the source.
    pub hops: usize,
    /// Maximum value of the edge property along the discovery path.
    pub max_edge_ts: i64,
}

/// Computes Q4 from `src`: BFS to `max_hops`, tracking for each reached
/// vertex the max of integer edge property `ts_prop` along its discovery
/// path. Edges without the property contribute `i64::MIN` (i.e. are
/// ignored by the max).
pub fn path_lengths(g: &Graph, src: VertexId, max_hops: usize, ts_prop: &str) -> Vec<PathLength> {
    let mut visited = vec![false; g.vertex_slots()];
    visited[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back((src, 0usize, i64::MIN));
    let mut out = Vec::new();
    while let Some((v, d, acc)) = queue.pop_front() {
        if d == max_hops {
            continue;
        }
        for (e, w) in g.out_edges(v) {
            if visited[w.index()] {
                continue;
            }
            visited[w.index()] = true;
            let ts = g
                .edge_prop(e, ts_prop)
                .and_then(|p| p.as_int())
                .unwrap_or(i64::MIN);
            let new_acc = acc.max(ts);
            out.push(PathLength {
                vertex: w,
                hops: d + 1,
                max_edge_ts: new_acc,
            });
            queue.push_back((w, d + 1, new_acc));
        }
    }
    out
}

/// Sum of hop distances over a Q4 result — the scalar the benchmark
/// reports so the work cannot be optimized away.
pub fn total_path_length(rows: &[PathLength]) -> usize {
    rows.iter().map(|r| r.hops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::{GraphBuilder, Value};

    fn chain_with_ts(ts_values: &[i64]) -> (kaskade_graph::Graph, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let mut vs = vec![b.add_vertex("V")];
        for &ts in ts_values {
            let v = b.add_vertex("V");
            let e = b.add_edge(*vs.last().unwrap(), v, "E");
            b.set_edge_prop(e, "ts", Value::Int(ts));
            vs.push(v);
        }
        (b.finish(), vs)
    }

    #[test]
    fn max_ts_accumulates_along_path() {
        let (g, vs) = chain_with_ts(&[5, 3, 9, 1]);
        let rows = path_lengths(&g, vs[0], 10, "ts");
        assert_eq!(rows.len(), 4);
        let maxes: Vec<i64> = rows.iter().map(|r| r.max_edge_ts).collect();
        assert_eq!(maxes, vec![5, 5, 9, 9]);
    }

    #[test]
    fn hops_are_bfs_distances() {
        let (g, vs) = chain_with_ts(&[1, 2, 3]);
        let rows = path_lengths(&g, vs[0], 2, "ts");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].hops, 1);
        assert_eq!(rows[1].hops, 2);
        assert_eq!(total_path_length(&rows), 3);
    }

    #[test]
    fn missing_ts_is_ignored_by_max() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        let d = b.add_vertex("V");
        b.add_edge(a, c, "E"); // no ts
        let e2 = b.add_edge(c, d, "E");
        b.set_edge_prop(e2, "ts", Value::Int(7));
        let g = b.finish();
        let rows = path_lengths(&g, a, 5, "ts");
        assert_eq!(rows[0].max_edge_ts, i64::MIN);
        assert_eq!(rows[1].max_edge_ts, 7);
    }

    #[test]
    fn source_not_included() {
        let (g, vs) = chain_with_ts(&[1]);
        let rows = path_lengths(&g, vs[0], 3, "ts");
        assert!(rows.iter().all(|r| r.vertex != vs[0]));
    }
}
