//! Bounded traversals: k-hop neighborhoods, ancestors and descendants.
//!
//! These are the primitives behind queries Q2 ("ancestors": backward
//! lineage up to k hops) and Q3 ("descendants": forward lineage up to k
//! hops) of the paper's workload (Table IV).

use std::collections::VecDeque;

use kaskade_graph::{Graph, VertexId};

/// Traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (descendants / forward lineage).
    Forward,
    /// Follow in-edges (ancestors / backward lineage).
    Backward,
}

/// Breadth-first search from `src` up to `max_hops`, following edges in
/// the given direction. Returns `(vertex, hops)` pairs for every reached
/// vertex (excluding `src` itself), in BFS order.
pub fn k_hop_neighborhood(
    g: &Graph,
    src: VertexId,
    max_hops: usize,
    dir: Direction,
) -> Vec<(VertexId, usize)> {
    let mut visited = vec![false; g.vertex_slots()];
    visited[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back((src, 0usize));
    let mut out = Vec::new();
    while let Some((v, d)) = queue.pop_front() {
        if d == max_hops {
            continue;
        }
        let next: Box<dyn Iterator<Item = VertexId>> = match dir {
            Direction::Forward => Box::new(g.out_neighbors(v)),
            Direction::Backward => Box::new(g.in_neighbors(v)),
        };
        for w in next {
            if !visited[w.index()] {
                visited[w.index()] = true;
                out.push((w, d + 1));
                queue.push_back((w, d + 1));
            }
        }
    }
    out
}

/// Vertices reachable from `src` within `max_hops` forward hops
/// (Q3, "descendants"). Excludes `src`.
pub fn descendants(g: &Graph, src: VertexId, max_hops: usize) -> Vec<VertexId> {
    k_hop_neighborhood(g, src, max_hops, Direction::Forward)
        .into_iter()
        .map(|(v, _)| v)
        .collect()
}

/// Vertices reaching `src` within `max_hops` backward hops
/// (Q2, "ancestors"). Excludes `src`.
pub fn ancestors(g: &Graph, src: VertexId, max_hops: usize) -> Vec<VertexId> {
    k_hop_neighborhood(g, src, max_hops, Direction::Backward)
        .into_iter()
        .map(|(v, _)| v)
        .collect()
}

/// Sum of an integer vertex property over the descendants of `src` that
/// have vertex type `target_type`, within `max_hops` hops — the
/// "blast radius" aggregate of Q1 for a single source.
pub fn blast_radius_sum(
    g: &Graph,
    src: VertexId,
    max_hops: usize,
    target_type: &str,
    weight_prop: &str,
) -> i64 {
    descendants(g, src, max_hops)
        .into_iter()
        .filter(|&v| g.vertex_type(v) == target_type)
        .filter_map(|v| g.vertex_prop(v, weight_prop).and_then(|p| p.as_int()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::{GraphBuilder, Value};

    /// j0 -> f0 -> j1 -> f1 -> j2 (chain), plus j0 -> f2 -> j3
    fn lineage_chain() -> (kaskade_graph::Graph, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        let f2 = b.add_vertex("File");
        let j3 = b.add_vertex("Job");
        for (v, cpu) in [(j0, 1), (j1, 10), (j2, 100), (j3, 1000)] {
            b.set_vertex_prop(v, "CPU", Value::Int(cpu));
        }
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j1, f1, "WRITES_TO");
        b.add_edge(f1, j2, "IS_READ_BY");
        b.add_edge(j0, f2, "WRITES_TO");
        b.add_edge(f2, j3, "IS_READ_BY");
        (b.finish(), vec![j0, f0, j1, f1, j2, f2, j3])
    }

    #[test]
    fn descendants_respect_hop_cap() {
        let (g, vs) = lineage_chain();
        let j0 = vs[0];
        assert_eq!(descendants(&g, j0, 1).len(), 2); // f0, f2
        assert_eq!(descendants(&g, j0, 2).len(), 4); // + j1, j3
        assert_eq!(descendants(&g, j0, 10).len(), 6); // all but j0
    }

    #[test]
    fn ancestors_mirror_descendants() {
        let (g, vs) = lineage_chain();
        let j2 = vs[4];
        let anc = ancestors(&g, j2, 10);
        assert_eq!(anc.len(), 4); // f1, j1, f0, j0
        assert_eq!(ancestors(&g, j2, 1), vec![vs[3]]); // f1 only
    }

    #[test]
    fn neighborhood_reports_hop_counts() {
        let (g, vs) = lineage_chain();
        let hops = k_hop_neighborhood(&g, vs[0], 4, Direction::Forward);
        for (v, d) in &hops {
            match g.vertex_type(*v) {
                "File" => assert!(d % 2 == 1, "files at odd hops"),
                "Job" => assert!(d % 2 == 0, "jobs at even hops"),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn blast_radius_sums_only_target_type() {
        let (g, vs) = lineage_chain();
        let j0 = vs[0];
        // within 2 hops: jobs j1 (10) and j3 (1000)
        assert_eq!(blast_radius_sum(&g, j0, 2, "Job", "CPU"), 1010);
        // within 4 hops adds j2 (100)
        assert_eq!(blast_radius_sum(&g, j0, 4, "Job", "CPU"), 1110);
        // zero hops: nothing
        assert_eq!(blast_radius_sum(&g, j0, 0, "Job", "CPU"), 0);
    }

    #[test]
    fn bfs_visits_each_vertex_once_with_min_hops() {
        // diamond: a->b, a->c, b->d, c->d; d must be at hop 2 once
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let v1 = b.add_vertex("V");
        let v2 = b.add_vertex("V");
        let d = b.add_vertex("V");
        b.add_edge(a, v1, "E");
        b.add_edge(a, v2, "E");
        b.add_edge(v1, d, "E");
        b.add_edge(v2, d, "E");
        let g = b.finish();
        let hops = k_hop_neighborhood(&g, a, 5, Direction::Forward);
        assert_eq!(hops.len(), 3);
        let d_entry = hops.iter().find(|(v, _)| *v == d).unwrap();
        assert_eq!(d_entry.1, 2);
    }

    #[test]
    fn cycle_terminates() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        b.add_edge(a, c, "E");
        b.add_edge(c, a, "E");
        let g = b.finish();
        assert_eq!(descendants(&g, a, 100), vec![c]);
    }
}
