//! Criterion bench for §IV / §VII-A: view-enumeration overhead.
//!
//! Measures (a) the end-to-end constraint-based enumeration for the
//! blast-radius query — the paper reports this adds "a few
//! milliseconds" to query time — and (b) the procedural Alg. 1 baseline
//! at growing k, whose search space grows with `M^k` on cyclic schemas
//! while the constrained enumeration stays flat (the ablation of the
//! DESIGN.md design-choice list).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kaskade_core::{enumerate_views, procedural};
use kaskade_datasets::Dataset;
use kaskade_query::{listings::LISTING_1, parse};

fn bench_enumeration(c: &mut Criterion) {
    let query = parse(LISTING_1).unwrap();
    let prov_schema = Dataset::Prov.schema();
    let dblp_schema = Dataset::Dblp.schema();

    let mut group = c.benchmark_group("enumeration");
    group.bench_function("constrained_prov_blast_radius", |b| {
        b.iter(|| black_box(enumerate_views(&query, &prov_schema).unwrap()))
    });
    group.bench_function("constrained_dblp_blast_radius", |b| {
        b.iter(|| black_box(enumerate_views(&query, &dblp_schema).unwrap()))
    });
    for k_max in [4, 6, 8, 10] {
        group.bench_with_input(
            BenchmarkId::new("procedural_alg1_prov", k_max),
            &k_max,
            |b, &k| b.iter(|| black_box(procedural::search_space_size(&prov_schema, k))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
