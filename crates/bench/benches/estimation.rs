//! Criterion bench for Fig. 5: view-size estimation cost and the
//! estimator-vs-actual comparison machinery.
//!
//! The estimators themselves are O(#types); what costs time is
//! computing the *actual* connector size and the degree statistics.
//! This bench times all three so the estimation-vs-materialization
//! trade-off of §V-A is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kaskade_bench::setup::k_hop_pair_count;
use kaskade_core::cost::{erdos_renyi_estimate, path_count_estimate};
use kaskade_datasets::Dataset;
use kaskade_graph::GraphStats;

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_estimation");
    for dataset in [Dataset::Prov, Dataset::RoadnetUsa] {
        let g = dataset.generate(1, 0x5EED).edge_prefix(10_000);
        let schema = dataset.schema();
        let stats = GraphStats::compute(&g);

        group.bench_with_input(
            BenchmarkId::new("stats_compute", dataset.short_name()),
            &g,
            |b, g| b.iter(|| black_box(GraphStats::compute(g))),
        );
        group.bench_with_input(
            BenchmarkId::new("estimate_eq2_eq3", dataset.short_name()),
            &stats,
            |b, stats| {
                b.iter(|| {
                    black_box(path_count_estimate(stats, &schema, 2, 50));
                    black_box(path_count_estimate(stats, &schema, 2, 95));
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("estimate_eq1_erdos_renyi", dataset.short_name()),
            &g,
            |b, g| b.iter(|| black_box(erdos_renyi_estimate(g.vertex_count(), g.edge_count(), 2))),
        );
        group.bench_with_input(
            BenchmarkId::new("actual_2hop_pairs", dataset.short_name()),
            &g,
            |b, g| b.iter(|| black_box(k_hop_pair_count(g, 2))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
