//! Criterion bench for incremental view maintenance vs full
//! re-materialization, driven through the [`ViewMaintainer`] refresh
//! API. The paper's provenance workload only ever appends, so this is
//! the regime that matters operationally.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kaskade_core::{apply_delta, ConnectorDef, GraphDelta, VRef, ViewDef};
use kaskade_datasets::{generate_provenance, ProvenanceConfig};
use kaskade_graph::Value;

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);

    for jobs in [1_000usize, 4_000] {
        let base = generate_provenance(&ProvenanceConfig {
            jobs,
            ..Default::default()
        });
        let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let maintainer = def.maintainer();
        let view = maintainer.materialize(&base);

        // one appended job reading two recent files and writing one
        let mut delta = GraphDelta::new();
        let files: Vec<_> = base.vertices_of_type("File").collect();
        let j = delta.add_vertex("Job", vec![("CPU".into(), Value::Int(9))]);
        for f in files.iter().rev().take(2) {
            delta.add_edge(VRef::Existing(*f), j, "IS_READ_BY", vec![]);
        }
        let nf = delta.add_vertex("File", vec![]);
        delta.add_edge(j, nf, "WRITES_TO", vec![]);
        let applied = apply_delta(&base, &delta);

        group.bench_with_input(
            BenchmarkId::new("incremental", jobs),
            &applied,
            |b, applied| b.iter(|| black_box(maintainer.refresh(&view, applied).graph)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_rematerialize", jobs),
            &applied,
            |b, applied| b.iter(|| black_box(maintainer.materialize(&applied.graph))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
