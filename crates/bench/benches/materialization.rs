//! Criterion bench for view creation cost (§V-A "view creation cost"
//! and the Fig. 6 pipeline): summarizer and connector materialization
//! per dataset, plus the knapsack-driven end-to-end selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kaskade_core::{
    materialize, select_views, ConnectorDef, SelectionConfig, SummarizerDef, ViewDef,
};
use kaskade_datasets::Dataset;
use kaskade_graph::GraphStats;
use kaskade_query::{listings::LISTING_1, parse};

fn bench_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialization");
    group.sample_size(10);

    let prov = Dataset::Prov.generate(1, 0x5EED);
    group.bench_function("summarizer_prov_keep_job_file", |b| {
        b.iter(|| {
            black_box(materialize(
                &prov,
                &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
                    keep: vec!["Job".into(), "File".into()],
                }),
            ))
        })
    });
    let filtered = materialize(
        &prov,
        &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        }),
    );
    group.bench_function("connector_prov_job_to_job_2hop", |b| {
        b.iter(|| {
            black_box(materialize(
                &filtered,
                &ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)),
            ))
        })
    });

    for dataset in [Dataset::RoadnetUsa, Dataset::SocLivejournal] {
        let g = dataset.generate(1, 0x5EED);
        let anchor = dataset.anchor_type();
        group.bench_with_input(
            BenchmarkId::new("connector_2hop", dataset.short_name()),
            &g,
            |b, g| {
                b.iter(|| {
                    black_box(materialize(
                        g,
                        &ViewDef::Connector(ConnectorDef::k_hop(anchor, anchor, 2)),
                    ))
                })
            },
        );
    }

    // end-to-end §V-B selection (enumeration + scoring + knapsack)
    let stats = GraphStats::compute(&filtered);
    let schema = kaskade_graph::Schema::provenance();
    let workload = vec![parse(LISTING_1).unwrap()];
    group.bench_function("view_selection_prov_blast_radius", |b| {
        b.iter(|| {
            black_box(select_views(
                &filtered,
                &stats,
                &schema,
                &workload,
                &SelectionConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_materialization);
criterion_main!(benches);
