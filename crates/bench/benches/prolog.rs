//! Criterion bench for the embedded Prolog engine itself: unification-
//! heavy recursion, findall aggregation, and the paper's constraint
//! mining rules — the inference substrate everything in §IV runs on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kaskade_prolog::Database;

fn bench_prolog(c: &mut Criterion) {
    let mut group = c.benchmark_group("prolog");

    // naive reverse: quadratic append/member churn, a classic stress
    let mut db = Database::with_prelude();
    db.consult(
        "nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).",
    )
    .unwrap();
    let list: Vec<String> = (0..30).map(|i| i.to_string()).collect();
    let q = format!("nrev([{}], R)", list.join(","));
    group.bench_function("nrev_30", |b| b.iter(|| black_box(db.query(&q).unwrap())));

    // findall over a combinatorial space
    let mut db2 = Database::with_prelude();
    db2.consult("val(X) :- between(1, 25, X).").unwrap();
    group.bench_function("findall_pairs_625", |b| {
        b.iter(|| {
            black_box(
                db2.query("findall(p(X,Y), (val(X), val(Y)), L), length(L, N)")
                    .unwrap(),
            )
        })
    });

    // the paper's schema mining rule on a 5-type schema
    let mut db3 = Database::with_prelude();
    db3.consult(kaskade_core::SCHEMA_MINING_RULES).unwrap();
    db3.consult(
        "schemaEdge('Job','File','W'). schemaEdge('File','Job','R').
         schemaEdge('Job','Task','S'). schemaEdge('Task','Machine','M').
         schemaEdge('Task','Task','T'). schemaEdge('User','Job','U').",
    )
    .unwrap();
    group.bench_function("schema_k_hop_walk_k10", |b| {
        b.iter(|| black_box(db3.query("schemaKHopWalk('Job','Job',10)").unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_prolog);
criterion_main!(benches);
