//! Criterion bench for Fig. 7: the Table IV query workload over the
//! filter graph vs the 2-hop connector view, per dataset.
//!
//! This is the headline experiment: on heterogeneous networks every
//! query should be faster over the connector (Q7/Q8 by the largest
//! factor, Q2/Q3 by the smallest); on the homogeneous power-law network
//! (soc-livejournal) the connector is larger than the input and the
//! rewriting loses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kaskade_bench::setup::Env;
use kaskade_bench::workload::{run, QueryId};
use kaskade_datasets::Dataset;

fn bench_queries(c: &mut Criterion) {
    // A reduced-size environment keeps the full matrix within a sane
    // bench wall time; relative shapes are unchanged.
    for dataset in [Dataset::Prov, Dataset::Dblp] {
        let env = Env::prepare(dataset, 1, 0x5EED);
        let mut group = c.benchmark_group(format!("fig7_{}", dataset.short_name()));
        group.sample_size(10);
        for q in QueryId::ALL {
            if !q.applies_to(dataset) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(q.name(), "filter"), &env, |b, env| {
                b.iter(|| black_box(run(env, q, false)))
            });
            group.bench_with_input(BenchmarkId::new(q.name(), "connector"), &env, |b, env| {
                b.iter(|| black_box(run(env, q, true)))
            });
        }
        group.finish();
    }

    // Homogeneous datasets: a representative subset (the crossover case).
    for dataset in [Dataset::RoadnetUsa, Dataset::SocLivejournal] {
        let env = Env::prepare(dataset, 1, 0x5EED);
        let mut group = c.benchmark_group(format!("fig7_{}", dataset.short_name()));
        group.sample_size(10);
        for q in [QueryId::Q2, QueryId::Q4, QueryId::Q7] {
            group.bench_with_input(BenchmarkId::new(q.name(), "raw"), &env, |b, env| {
                b.iter(|| black_box(run(env, q, false)))
            });
            group.bench_with_input(BenchmarkId::new(q.name(), "connector"), &env, |b, env| {
                b.iter(|| black_box(run(env, q, true)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
