//! Criterion bench for the serving runtime's hot read path: plan-key
//! normalization, a warmed plan-cache execute, and snapshot cloning —
//! the per-query costs every reader thread pays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kaskade_core::{ConnectorDef, Kaskade, ViewDef};
use kaskade_datasets::{generate_provenance, ProvenanceConfig};
use kaskade_graph::Schema;
use kaskade_query::{listings::LISTING_1, parse};
use kaskade_service::{plan_key, Engine};

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);

    let query = parse(LISTING_1).unwrap();
    group.bench_function("plan_key", |b| {
        b.iter(|| black_box(plan_key(black_box(&query))))
    });

    let g = generate_provenance(&ProvenanceConfig::tiny(41).core_only());
    let mut kaskade = Kaskade::new(g, Schema::provenance());
    kaskade.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));

    group.bench_function("snapshot_clone", |b| {
        b.iter(|| black_box(kaskade.snapshot()))
    });

    let engine = Engine::from_kaskade(&kaskade);
    engine.execute(&query).unwrap(); // warm the plan cache
    group.bench_function("execute_cached_plan", |b| {
        b.iter(|| black_box(engine.execute(black_box(&query)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
