//! The experiment report generator: prints every table and figure of
//! the paper's evaluation from the reproduced system.
//!
//! ```text
//! report [experiment] [dataset]
//!
//! experiments: table1 table2 table3 table4 fig3 fig5 fig6 fig7 fig8 enum
//!              serve scale recovery adaptive all
//! datasets:    prov dblp roadnet-usa soc-livejournal (default: all applicable)
//! ```
//!
//! `scale`, `recovery`, and `adaptive` additionally accept `--json` to
//! emit one JSON line per row (the formats checked in as
//! `BENCH_scale.json`, `BENCH_recovery.json`, and `BENCH_adaptive.json`
//! and consumed by CI's gates). `recovery` and `adaptive` exit nonzero
//! when their acceptance gate fails.

use std::env;
use std::time::Duration;

use kaskade_bench::experiments::{
    enumeration_ablation, fig5, fig5_upper_bound_hit_rate, fig6, fig7, fig8, serve_adaptive,
    serve_churn, serve_compaction, serve_dag, serve_recovery, serve_scale, serve_sharded,
    serve_throughput, serve_trace, table3,
};
use kaskade_bench::setup::Env;
use kaskade_bench::workload::QueryId;
use kaskade_core::{materialize, ConnectorDef, ViewDef};
use kaskade_datasets::Dataset;
use kaskade_graph::{GraphBuilder, Value};

const SEED: u64 = 0x5EED;
const SCALE: usize = 1;

fn parse_dataset(s: &str) -> Option<Dataset> {
    Dataset::ALL.into_iter().find(|d| d.short_name() == s)
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let dataset = args.get(1).and_then(|s| parse_dataset(s));

    match what {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => print_table3(),
        "table4" => table4(),
        "fig3" => fig3(),
        "fig5" => print_fig5(dataset),
        "fig6" => print_fig6(dataset),
        "fig7" => print_fig7(dataset),
        "fig8" => print_fig8(dataset),
        "enum" => print_enum(),
        "serve" => print_serve(dataset),
        "scale" => print_scale(dataset, args.iter().any(|a| a == "--json")),
        "recovery" => print_recovery(args.iter().any(|a| a == "--json")),
        "adaptive" => print_adaptive(args.iter().any(|a| a == "--json")),
        "all" => {
            table1();
            table2();
            print_table3();
            table4();
            fig3();
            print_fig5(None);
            print_fig6(None);
            print_fig7(None);
            print_fig8(None);
            print_enum();
            print_serve(None);
            print_scale(None, false);
            print_recovery(false);
            print_adaptive(false);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("usage: report [table1|table2|table3|table4|fig3|fig5|fig6|fig7|fig8|enum|serve|scale|recovery|adaptive|all] [dataset] [--json]");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    header("TABLE I: Connectors in Kaskade");
    for (name, desc) in [
        (
            "Same-vertex-type connector",
            "Target vertices are all pairs of vertices with a specific vertex type.",
        ),
        (
            "k-hop connector",
            "Target vertices are all vertex pairs that are connected through k-length paths.",
        ),
        (
            "Same-edge-type connector",
            "Target vertices are all pairs of vertices connected with a path of edges of a specific edge type.",
        ),
        (
            "Source-to-sink connector",
            "Target vertices are (source, sink) pairs: no incoming resp. no outgoing edges.",
        ),
    ] {
        println!("  {name:<28} {desc}");
    }
    // demonstrate a materialized instance of the workhorse connector
    let env = Env::prepare(Dataset::Prov, SCALE, SEED);
    println!(
        "\n  materialized example: {} over prov — {} vertices, {} edges",
        env.connector_label,
        env.connector.vertex_count(),
        env.connector.edge_count()
    );
}

fn table2() {
    header("TABLE II: Summarizers in Kaskade");
    for (name, desc) in [
        (
            "Vertex-removal summarizer",
            "Removes vertices (and incident edges) matching a predicate.",
        ),
        (
            "Edge-removal summarizer",
            "Removes edges matching a predicate.",
        ),
        (
            "Vertex-inclusion summarizer",
            "Keeps vertices matching the predicate and edges between them.",
        ),
        (
            "Edge-inclusion summarizer",
            "Keeps only edges matching a predicate.",
        ),
        (
            "Vertex-aggregator summarizer",
            "Groups matching vertices into a supervertex with an aggregate.",
        ),
        (
            "Edge-aggregator summarizer",
            "Groups matching edges into a superedge with an aggregate.",
        ),
        (
            "Subgraph-aggregator summarizer",
            "Groups a matching subgraph into a supervertex.",
        ),
    ] {
        println!("  {name:<32} {desc}");
    }
}

fn print_table3() {
    header("TABLE III: Networks used for evaluation (generated, seeded)");
    println!(
        "  {:<18} {:>14} {:>10} {:>10} {:>7} {:>6}",
        "short name", "type", "|V|", "|E|", "vtypes", "etypes"
    );
    for r in table3(SCALE, SEED) {
        println!(
            "  {:<18} {:>14} {:>10} {:>10} {:>7} {:>6}",
            r.name, r.kind, r.vertices, r.edges, r.vertex_types, r.edge_types
        );
    }
}

fn table4() {
    header("TABLE IV: Query workload");
    for q in QueryId::ALL {
        println!("  {:<4} {}", q.name(), q.description());
    }
}

fn fig3() {
    header("FIG 3: 2-hop connector construction over the toy lineage graph");
    // the exact graph of Fig. 3(a)
    let mut b = GraphBuilder::new();
    let names = ["j1", "f1", "j2", "f2", "j3", "f3", "f4"];
    let types = ["Job", "File", "Job", "File", "Job", "File", "File"];
    let vs: Vec<_> = names
        .iter()
        .zip(types)
        .map(|(n, t)| {
            let v = b.add_vertex(t);
            b.set_vertex_prop(v, "name", Value::Str(n.to_string()));
            v
        })
        .collect();
    for (s, d, t) in [
        (0, 1, "WRITES_TO"),
        (1, 2, "IS_READ_BY"),
        (0, 3, "WRITES_TO"),
        (3, 4, "IS_READ_BY"),
        (2, 5, "WRITES_TO"),
        (4, 6, "WRITES_TO"),
    ] {
        b.add_edge(vs[s], vs[d], t);
    }
    let g = b.finish();
    println!(
        "  input graph (a): {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );
    for (src, dst, panel) in [
        ("Job", "Job", "(c) job-to-job"),
        ("File", "File", "(d) file-to-file"),
    ] {
        let view = materialize(&g, &ViewDef::Connector(ConnectorDef::k_hop(src, dst, 2)));
        print!("  2-hop connector {panel}: ");
        let mut edges: Vec<String> = view
            .edges()
            .map(|e| {
                let n = |v| {
                    view.vertex_prop(v, "name")
                        .map(|p| p.to_string())
                        .unwrap_or_default()
                };
                format!("{}->{}", n(view.edge_src(e)), n(view.edge_dst(e)))
            })
            .collect();
        edges.sort();
        println!("{}", edges.join(", "));
    }
}

fn datasets_or(dataset: Option<Dataset>) -> Vec<Dataset> {
    dataset
        .map(|d| vec![d])
        .unwrap_or_else(|| Dataset::ALL.to_vec())
}

fn print_fig5(dataset: Option<Dataset>) {
    header("FIG 5: estimated vs actual 2-hop connector sizes (edge prefixes)");
    let prefixes = [1_000, 3_000, 10_000, 30_000, 100_000];
    for d in datasets_or(dataset) {
        println!("\n  {}", d.short_name());
        println!(
            "    {:>12} {:>14} {:>14} {:>14} {:>12}",
            "graph edges", "est(a=50)", "est(a=95)", "Erdos-Renyi", "actual"
        );
        let rows = fig5(d, SCALE, SEED, &prefixes);
        for r in &rows {
            println!(
                "    {:>12} {:>14.0} {:>14.0} {:>14.2} {:>12}",
                r.graph_edges, r.est_alpha50, r.est_alpha95, r.est_erdos_renyi, r.actual
            );
        }
        println!(
            "    alpha=95 upper-bound hit rate: {:.0}%",
            100.0 * fig5_upper_bound_hit_rate(&rows)
        );
    }
}

fn print_fig6(dataset: Option<Dataset>) {
    header("FIG 6: effective size reduction (raw -> filter -> connector)");
    let targets = dataset
        .map(|d| vec![d])
        .unwrap_or_else(|| vec![Dataset::Prov, Dataset::Dblp]);
    for d in targets {
        if !d.is_heterogeneous() {
            continue; // Fig. 6 covers the heterogeneous networks
        }
        let env = Env::prepare(d, SCALE, SEED);
        println!("\n  {}", d.short_name());
        println!("    {:<11} {:>10} {:>10}", "stage", "vertices", "edges");
        for r in fig6(&env) {
            println!("    {:<11} {:>10} {:>10}", r.stage, r.vertices, r.edges);
        }
    }
}

fn print_fig7(dataset: Option<Dataset>) {
    header("FIG 7: query runtimes, filter graph vs 2-hop connector view");
    for d in datasets_or(dataset) {
        let env = Env::prepare(d, SCALE, SEED);
        let base_label = if d.is_heterogeneous() {
            "filter"
        } else {
            "raw"
        };
        println!(
            "\n  {} (connector: {} edges vs {} {} edges)",
            d.short_name(),
            env.connector.edge_count(),
            base_label,
            env.filtered.edge_count()
        );
        println!(
            "    {:<4} {:>14} {:>14} {:>9}",
            "query",
            format!("{base_label} (s)"),
            "connector (s)",
            "speedup"
        );
        for r in fig7(&env, 3) {
            println!(
                "    {:<4} {:>14.4} {:>14.4} {:>8.1}x",
                r.query, r.filter_secs, r.connector_secs, r.speedup
            );
        }
    }
}

fn print_fig8(dataset: Option<Dataset>) {
    header("FIG 8: out-degree CCDF (log-log) and power-law fit");
    for d in datasets_or(dataset) {
        let data = fig8(d, SCALE, SEED);
        println!("\n  {}", d.short_name());
        match data.exponent {
            Some(e) => println!("    best-fit power-law exponent: {e:.2}"),
            None => println!("    (degenerate distribution, no fit)"),
        }
        println!("    {:>8} {:>10}", "degree", "freq>x");
        // sample up to 12 points evenly for readability
        let n = data.ccdf.len();
        let step = n.div_ceil(12).max(1);
        for (deg, count) in data.ccdf.iter().step_by(step) {
            println!("    {deg:>8} {count:>10}");
        }
    }
}

fn print_serve(dataset: Option<Dataset>) {
    header("SERVING: concurrent readers vs an active delta writer (kaskade-service)");
    let d = dataset.unwrap_or(Dataset::Prov);
    println!(
        "  {} — blast-radius workload, closed-loop readers, one scripted delta every 2ms",
        d.short_name()
    );
    println!(
        "    {:>7} {:>9} {:>10} {:>11} {:>11} {:>7} {:>7} {:>9} {:>12}",
        "readers", "reads", "reads/s", "p50", "p99", "writes", "epochs", "hit rate", "max lag"
    );
    for r in serve_throughput(
        d,
        SCALE,
        SEED,
        &[1, 2, 4, 8],
        Duration::from_millis(400),
        Duration::ZERO,
        Duration::from_millis(2),
    ) {
        println!(
            "    {:>7} {:>9} {:>10.0} {:>11} {:>11} {:>7} {:>7} {:>8.0}% {:>12}",
            r.readers,
            r.reads,
            r.reads_per_sec,
            format!("{:.1?}", r.p50),
            format!("{:.1?}", r.p99),
            r.writes,
            r.epochs,
            100.0 * r.cache_hit_rate,
            format!("{:.1?}", r.max_refresh_lag),
        );
    }

    println!(
        "\n  churn serving: retractable deltas per workload shape (4 readers, writer every 2ms)"
    );
    println!(
        "    {:>8} {:>9} {:>7} {:>12} {:>7} {:>12} {:>12} {:>11} {:>11} {:>6}",
        "workload",
        "reads",
        "writes",
        "retractions",
        "epochs",
        "refresh",
        "max lag",
        "stats full",
        "stats incr",
        "ok"
    );
    for r in serve_churn(
        d,
        SCALE,
        SEED,
        4,
        Duration::from_millis(400),
        Duration::from_millis(2),
    ) {
        println!(
            "    {:>8} {:>9} {:>7} {:>12} {:>7} {:>12} {:>12} {:>11} {:>11} {:>6}",
            r.workload,
            r.reads,
            r.writes,
            r.retractions,
            r.epochs,
            format!("{:.1?}", r.last_refresh),
            format!("{:.1?}", r.max_refresh_lag),
            format!("{:.1?}", r.stats_full_recompute),
            format!("{:.1?}", r.stats_incremental_update),
            if r.final_consistent { "yes" } else { "NO" },
        );
    }
    println!("\n  (`stats full` is the per-publish statistics rescan the write path used to");
    println!("   pay; `stats incr` is the incremental histogram update it pays now)");

    println!("\n  sharded ingest: identical churn sequence through single vs sharded engines");
    println!(
        "    {:>7} {:>7} {:>13} {:>13} {:>13} {:>13} {:>6} {:>9}",
        "shards", "writes", "single", "coordinator", "shard max", "shard sum", "equal", "coherent"
    );
    for r in serve_sharded(d, SCALE, SEED, &[2, 4], 120) {
        println!(
            "    {:>7} {:>7} {:>13} {:>13} {:>13} {:>13} {:>6} {:>9}",
            r.shards,
            r.writes,
            format!("{:.1?}", r.single_apply),
            format!("{:.1?}", r.coordinator_apply),
            format!("{:.1?}", r.max_shard_apply()),
            format!("{:.1?}", r.sum_shard_apply()),
            if r.results_equal { "yes" } else { "NO" },
            if r.coherent { "yes" } else { "NO" },
        );
    }
    println!("\n  (`single` is the whole unsharded write path per the same delta sequence;");
    println!("   `shard max` is the parallel ingest critical path — per-shard delta apply");
    println!("   runs concurrently, and connector view refresh inside `coordinator` fans");
    println!("   out one worker per shard)");

    println!("\n  slot compaction: constant-live churn, compaction disabled vs dead-ratio 0.5");
    println!(
        "    {:>10} {:>7} {:>7} {:>9} {:>7} {:>12} {:>12} {:>11} {:>6}",
        "policy", "writes", "live", "capacity", "ratio", "compactions", "reclaimed", "apply", "ok"
    );
    for r in serve_compaction(SEED, 1_200) {
        println!(
            "    {:>10} {:>7} {:>7} {:>9} {:>6.2}x {:>12} {:>12} {:>11} {:>6}",
            r.policy,
            r.writes,
            r.live,
            r.slot_capacity,
            r.capacity_ratio(),
            r.compactions_run,
            r.slots_reclaimed,
            format!("{:.1?}", r.apply_total),
            if r.final_consistent { "yes" } else { "NO" },
        );
    }
    println!("\n  (`capacity` is vertex+edge id slots held, live or dead: the engine's");
    println!("   working-set floor. Under churn at constant live size the disabled");
    println!("   engine grows without bound; the 0.5 policy keeps capacity <= 2x live)");

    println!("\n  refresh DAG: 4-view composed catalog, level-serial vs level-parallel");
    println!(
        "    {:>12} {:>6} {:>7} {:>7} {:>11} {:>10} {:>15}",
        "mode", "views", "levels", "writes", "refresh", "refreshed", "rematerialized"
    );
    for r in serve_dag(SEED, 300) {
        println!(
            "    {:>12} {:>6} {:>7} {:>7} {:>11} {:>10} {:>15}",
            r.mode,
            r.views,
            r.levels,
            r.writes,
            format!("{:.1?}", r.refresh_total),
            r.refreshed,
            r.rematerialized,
        );
    }
    println!("\n  (the same churn sequence against the same composed catalog — the");
    println!("   connector and the summarizer maintained OVER it sit on two DAG levels;");
    println!("   `dag-parallel` fans level-0 views out across workers, `rematerialized`");
    println!("   stays 0 because the composed view always refreshes from its upstream)");

    println!("\n  tracing overhead: identical run with the span subsystem off / on / on+slowlog");
    println!(
        "    {:>10} {:>9} {:>10} {:>11} {:>7} {:>8} {:>6}",
        "tracer", "reads", "reads/s", "p50", "events", "dropped", "slow"
    );
    for r in serve_trace(
        d,
        SCALE,
        SEED,
        4,
        Duration::from_millis(400),
        Duration::from_millis(2),
    ) {
        println!(
            "    {:>10} {:>9} {:>10.0} {:>11} {:>7} {:>8} {:>6}",
            r.variant,
            r.reads,
            r.reads_per_sec,
            format!("{:.1?}", r.p50),
            r.events,
            r.dropped,
            r.slow_queries,
        );
    }
    println!("\n  (a disabled span site costs one relaxed atomic load; the CI overhead");
    println!("   gate fails the build if `--trace on` throughput regresses >10%)");
}

fn print_scale(dataset: Option<Dataset>, json: bool) {
    let d = dataset.unwrap_or(Dataset::Prov);
    let rows = serve_scale(
        d,
        SCALE,
        SEED,
        &[1, 2, 4, 8],
        4,
        Duration::from_millis(400),
        Duration::from_millis(2),
    );
    if json {
        for r in &rows {
            println!(
                "{{\"shards\":{},\"reads\":{},\"reads_per_sec\":{:.0},\"read_p50_ns\":{},\
                 \"read_p99_ns\":{},\"apply_p50_ns\":{},\"apply_p99_ns\":{},\"writes\":{},\
                 \"pool_dispatches\":{},\"spawns_during_serve\":{},\"final_consistent\":{}}}",
                r.shards,
                r.reads,
                r.reads_per_sec,
                r.read_p50.as_nanos(),
                r.read_p99.as_nanos(),
                r.apply_p50.as_nanos(),
                r.apply_p99.as_nanos(),
                r.writes,
                r.pool_dispatches,
                r.spawns_during_serve,
                r.final_consistent,
            );
        }
        return;
    }
    header("SCALE: publish latency vs shard count (merged publish, persistent pool)");
    println!(
        "  {} — hotkey workload, 4 readers, writer every 2ms, per shard count",
        d.short_name()
    );
    println!(
        "    {:>7} {:>9} {:>10} {:>11} {:>11} {:>11} {:>11} {:>7} {:>10} {:>7} {:>6}",
        "shards",
        "reads",
        "reads/s",
        "read p50",
        "read p99",
        "apply p50",
        "apply p99",
        "writes",
        "dispatches",
        "spawns",
        "ok"
    );
    for r in &rows {
        println!(
            "    {:>7} {:>9} {:>10.0} {:>11} {:>11} {:>11} {:>11} {:>7} {:>10} {:>7} {:>6}",
            r.shards,
            r.reads,
            r.reads_per_sec,
            format!("{:.1?}", r.read_p50),
            format!("{:.1?}", r.read_p99),
            format!("{:.1?}", r.apply_p50),
            format!("{:.1?}", r.apply_p99),
            r.writes,
            r.pool_dispatches,
            r.spawns_during_serve,
            if r.final_consistent { "yes" } else { "NO" },
        );
    }
    println!("\n  (the publish path assembles the global CSR from the shard CSRs on the");
    println!("   persistent pool instead of re-running the whole apply serially; `spawns`");
    println!("   counts ad-hoc scoped threads during serving and must stay 0. CI's");
    println!("   publish-scaling gate bounds the 8-shard mean publish latency at 1.3x");
    println!("   the 1-shard run on >=8-core runners)");
}

fn print_recovery(json: bool) {
    let rows = serve_recovery(SEED, 600, &[16, 64, 256]);
    let mut ok = true;
    if json {
        for r in &rows {
            println!(
                "{{\"checkpoint_every\":{},\"writes\":{},\"records_replayed\":{},\
                 \"checkpoint_bytes\":{},\"log_bytes\":{},\"replay_ns\":{},\"restart_ns\":{},\
                 \"state_matches\":{},\"within_budget\":{}}}",
                r.checkpoint_every,
                r.writes,
                r.records_replayed,
                r.checkpoint_bytes,
                r.log_bytes,
                r.replay_time.as_nanos(),
                r.restart_time.as_nanos(),
                r.state_matches,
                r.within_budget(),
            );
            ok &= r.state_matches && r.within_budget();
        }
    } else {
        header("RECOVERY: checkpoint + WAL-replay restart vs checkpoint cadence");
        println!("  tiny prov churn, 600 steps, WAL-backed engine per cadence");
        println!(
            "    {:>10} {:>7} {:>9} {:>10} {:>9} {:>11} {:>11} {:>8} {:>7}",
            "ckpt every",
            "writes",
            "replayed",
            "ckpt KiB",
            "log KiB",
            "replay",
            "restart",
            "matches",
            "budget"
        );
        for r in &rows {
            println!(
                "    {:>10} {:>7} {:>9} {:>10.1} {:>9.1} {:>11} {:>11} {:>8} {:>7}",
                r.checkpoint_every,
                r.writes,
                r.records_replayed,
                r.checkpoint_bytes as f64 / 1024.0,
                r.log_bytes as f64 / 1024.0,
                format!("{:.1?}", r.replay_time),
                format!("{:.1?}", r.restart_time),
                if r.state_matches { "yes" } else { "NO" },
                if r.within_budget() { "ok" } else { "OVER" },
            );
            ok &= r.state_matches && r.within_budget();
        }
        println!("\n  (recovery = newest checkpoint + log tail; the restart column adds the");
        println!("   engine spin-up and the fresh safety checkpoint, and CI's recovery gate");
        println!("   bounds it at 2x the raw checkpoint+replay budget)");
    }
    if !ok {
        eprintln!("recovery gate FAILED: a row diverged or blew the 2x restart budget");
        std::process::exit(1);
    }
}

fn print_adaptive(json: bool) {
    let rows = serve_adaptive(
        Dataset::Prov,
        SCALE,
        SEED,
        &[1, 4],
        4,
        Duration::from_millis(1_500),
        Duration::from_millis(40),
    );
    let mut ok = true;
    let gate = |r: &kaskade_bench::experiments::AdaptiveRow| {
        let base = r.consistency_violations == 0 && r.rematerialized == 0 && r.final_consistent;
        if r.policy == "adaptive" {
            base && r.migrations >= 1 && r.views_created >= 1
        } else {
            base && r.migrations == 0
        }
    };
    if json {
        for r in &rows {
            println!(
                "{{\"policy\":\"{}\",\"shards\":{},\"reads\":{},\"reads_per_sec\":{:.0},\
                 \"read_p50_ns\":{},\"ticks\":{},\"migrations\":{},\"views_created\":{},\
                 \"views_dropped\":{},\"cache_hit_rate\":{:.3},\"rematerialized\":{},\
                 \"consistency_violations\":{},\"final_consistent\":{}}}",
                r.policy,
                r.shards,
                r.reads,
                r.reads_per_sec,
                r.p50.as_nanos(),
                r.ticks,
                r.migrations,
                r.views_created,
                r.views_dropped,
                r.cache_hit_rate,
                r.rematerialized,
                r.consistency_violations,
                r.final_consistent,
            );
            ok &= gate(r);
        }
    } else {
        header("ADAPTIVE: self-driving view admission from an empty catalog (advisor off/on)");
        println!("  prov — hotkey workload, 4 readers, writer every 2ms, advisor every 40ms");
        println!(
            "    {:>9} {:>7} {:>9} {:>10} {:>11} {:>6} {:>11} {:>8} {:>8} {:>9} {:>6} {:>6}",
            "policy",
            "shards",
            "reads",
            "reads/s",
            "p50",
            "ticks",
            "migrations",
            "created",
            "dropped",
            "hit rate",
            "remat",
            "ok"
        );
        for r in &rows {
            println!(
                "    {:>9} {:>7} {:>9} {:>10.0} {:>11} {:>6} {:>11} {:>8} {:>8} {:>8.0}% {:>6} {:>6}",
                r.policy,
                r.shards,
                r.reads,
                r.reads_per_sec,
                format!("{:.1?}", r.p50),
                r.ticks,
                r.migrations,
                r.views_created,
                r.views_dropped,
                100.0 * r.cache_hit_rate,
                r.rematerialized,
                if r.consistency_violations == 0 && r.final_consistent {
                    "yes"
                } else {
                    "NO"
                },
            );
            ok &= gate(r);
        }
        println!("\n  (both runs start with an EMPTY catalog; every view the adaptive rows");
        println!("   end with arrived through advisor-issued live DDL mid-serve. The gate:");
        println!("   adaptive rows must migrate online with zero consistency violations");
        println!("   and zero re-materializations; static rows must never migrate)");
    }
    if !ok {
        eprintln!("adaptive gate FAILED: a run missed a migration, tore a read, or rebuilt");
        std::process::exit(1);
    }
}

fn print_enum() {
    header("SECTION IV: constraint-based vs procedural view enumeration");
    for k_max in [4, 6, 8, 10] {
        let a = enumeration_ablation(Dataset::Prov, k_max);
        println!(
            "  k_max={:<3} constrained: {:>3} candidates, {:>8} steps, {:>8.3} ms | procedural Alg.1: {:>8} schema paths, {:>8.3} ms",
            a.k_max,
            a.constrained_candidates,
            a.constrained_steps,
            a.constrained_secs * 1e3,
            a.procedural_paths,
            a.procedural_secs * 1e3,
        );
    }
    println!("\n  (the constrained candidate count stays flat while the procedural");
    println!("   schema-path space grows with k_max — the §IV pruning argument)");
}
