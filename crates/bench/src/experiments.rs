//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (§VII). Each returns plain data rows; the `report` binary
//! formats them, and the Criterion benches time the hot paths.

use std::time::{Duration, Instant};

use kaskade_core::{
    cost::{erdos_renyi_estimate, path_count_estimate},
    enumerate_views, procedural, ConnectorDef, GraphDelta, Kaskade, SelectionConfig, Snapshot,
    ViewDef,
};
use kaskade_datasets::Dataset;
use kaskade_graph::{degree_ccdf, power_law_exponent, GraphStats};
use kaskade_query::parse;
use kaskade_service::{
    drive, DriveConfig, Engine, EngineConfig, ShardedEngine, SubmitOpts, Tracer, Workload,
};

use crate::setup::{k_hop_pair_count, Env};
use crate::workload::{run, QueryId};

/// One point of the Fig. 5 size-estimation experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Number of edges in the graph prefix.
    pub graph_edges: usize,
    /// Eq. (2)/(3) estimate with α = 50.
    pub est_alpha50: f64,
    /// Eq. (2)/(3) estimate with α = 95.
    pub est_alpha95: f64,
    /// Eq. (1) Erdős–Rényi baseline.
    pub est_erdos_renyi: f64,
    /// Actual 2-hop connector edges (distinct vertex pairs).
    pub actual: usize,
}

/// Fig. 5: estimated vs. actual 2-hop connector sizes over edge
/// prefixes of `dataset`.
pub fn fig5(dataset: Dataset, scale: usize, seed: u64, prefixes: &[usize]) -> Vec<Fig5Row> {
    let full = dataset.generate(scale, seed);
    let schema = dataset.schema();
    let mut rows = Vec::new();
    for &m in prefixes {
        if m > full.edge_count() {
            continue;
        }
        let g = full.edge_prefix(m);
        let stats = GraphStats::compute(&g);
        rows.push(Fig5Row {
            graph_edges: g.edge_count(),
            est_alpha50: path_count_estimate(&stats, &schema, 2, 50),
            est_alpha95: path_count_estimate(&stats, &schema, 2, 95),
            est_erdos_renyi: erdos_renyi_estimate(g.vertex_count(), g.edge_count(), 2),
            actual: k_hop_pair_count(&g, 2),
        });
    }
    rows
}

/// One bar group of Fig. 6: graph sizes at each view stage.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Stage name: "raw", "filter", or "connector".
    pub stage: &'static str,
    /// Vertices at this stage.
    pub vertices: usize,
    /// Edges at this stage.
    pub edges: usize,
}

/// Fig. 6: effective size reduction raw → summarizer → connector.
pub fn fig6(env: &Env) -> Vec<Fig6Row> {
    vec![
        Fig6Row {
            stage: "raw",
            vertices: env.raw.vertex_count(),
            edges: env.raw.edge_count(),
        },
        Fig6Row {
            stage: "filter",
            vertices: env.filtered.vertex_count(),
            edges: env.filtered.edge_count(),
        },
        Fig6Row {
            stage: "connector",
            vertices: env.connector.vertex_count(),
            edges: env.connector.edge_count(),
        },
    ]
}

/// One bar pair of Fig. 7: per-query runtimes on both graph variants.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Query name ("q1".."q8").
    pub query: &'static str,
    /// Runtime over the filter graph (raw graph for homogeneous
    /// datasets), in seconds.
    pub filter_secs: f64,
    /// Runtime of the rewritten query over the connector view, in
    /// seconds.
    pub connector_secs: f64,
    /// filter/connector speedup (>1 means the view wins).
    pub speedup: f64,
}

/// Fig. 7: total query runtimes, filter vs connector, averaged over
/// `reps` runs.
pub fn fig7(env: &Env, reps: usize) -> Vec<Fig7Row> {
    let reps = reps.max(1);
    let mut rows = Vec::new();
    for q in QueryId::ALL {
        if !q.applies_to(env.dataset) {
            continue;
        }
        let time = |on_connector: bool| -> f64 {
            let start = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(run(env, q, on_connector));
            }
            start.elapsed().as_secs_f64() / reps as f64
        };
        let filter_secs = time(false);
        let connector_secs = time(true);
        rows.push(Fig7Row {
            query: q.name(),
            filter_secs,
            connector_secs,
            speedup: filter_secs / connector_secs.max(1e-12),
        });
    }
    rows
}

/// Fig. 8 data: CCDF points and the fitted power-law exponent.
#[derive(Debug, Clone)]
pub struct Fig8Data {
    /// `(degree, count of vertices with degree > x)` points.
    pub ccdf: Vec<(usize, usize)>,
    /// Best-fit power-law exponent (log-log linear fit), if defined.
    pub exponent: Option<f64>,
}

/// Fig. 8: out-degree CCDF and power-law fit of a dataset's raw graph.
pub fn fig8(dataset: Dataset, scale: usize, seed: u64) -> Fig8Data {
    let g = dataset.generate(scale, seed);
    let ccdf = degree_ccdf(&g);
    let exponent = power_law_exponent(&ccdf);
    Fig8Data {
        ccdf: ccdf.iter().map(|p| (p.degree, p.count)).collect(),
        exponent,
    }
}

/// Result of the §IV enumeration ablation: constraint-based
/// (declarative, query-constraint-injected) vs procedural Alg. 1
/// (schema-only).
#[derive(Debug, Clone)]
pub struct EnumerationAblation {
    /// Candidates the constraint-based enumeration produced.
    pub constrained_candidates: usize,
    /// Inference steps it took.
    pub constrained_steps: u64,
    /// Wall time of constraint-based enumeration (seconds) — the
    /// "few milliseconds" overhead of §VII-A.
    pub constrained_secs: f64,
    /// Schema k-hop paths the unconstrained Alg. 1 enumerates up to
    /// `k_max` (the baseline search-space size).
    pub procedural_paths: usize,
    /// Wall time of the procedural enumeration (seconds).
    pub procedural_secs: f64,
    /// Upper hop bound used.
    pub k_max: usize,
}

/// Runs the enumeration ablation for the blast-radius query on a
/// dataset's schema.
pub fn enumeration_ablation(dataset: Dataset, k_max: usize) -> EnumerationAblation {
    let schema = dataset.schema();
    let query = parse(kaskade_query::listings::LISTING_1).expect("listing parses");

    let start = Instant::now();
    let e = enumerate_views(&query, &schema).expect("enumeration succeeds");
    let constrained_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let procedural_paths = procedural::search_space_size(&schema, k_max);
    let procedural_secs = start.elapsed().as_secs_f64();

    EnumerationAblation {
        constrained_candidates: e.candidates.len(),
        constrained_steps: e.inference_steps,
        constrained_secs,
        procedural_paths,
        procedural_secs,
        k_max,
    }
}

/// One row of the concurrent-serving throughput experiment: N reader
/// threads against an active delta writer on the `kaskade-service`
/// engine.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Concurrent reader threads.
    pub readers: usize,
    /// Successful reads over the run.
    pub reads: u64,
    /// Successful reads per second of wall-clock time.
    pub reads_per_sec: f64,
    /// Median query latency.
    pub p50: Duration,
    /// 99th-percentile query latency.
    pub p99: Duration,
    /// Deltas the writer submitted (and the engine applied).
    pub writes: u64,
    /// Snapshot epochs published (write batches).
    pub epochs: u64,
    /// Plan-cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Worst enqueue→visibility refresh lag observed.
    pub max_refresh_lag: Duration,
}

/// Concurrent-serving throughput: for each reader count, drive the
/// serving engine for `duration` with a closed-loop reader pool and a
/// writer submitting one scripted delta every `write_pause`
/// (`read_pause` > 0 paces each reader to a fixed request rate
/// instead). Views are selected for the workload first, so reads
/// exercise the view-routing plan path. Every run starts from the same
/// pre-materialized state.
pub fn serve_throughput(
    dataset: Dataset,
    scale: usize,
    seed: u64,
    reader_counts: &[usize],
    duration: Duration,
    read_pause: Duration,
    write_pause: Duration,
) -> Vec<ServeRow> {
    let graph = dataset.generate(scale, seed);
    let mut kaskade = Kaskade::new(graph, dataset.schema());
    let workload =
        vec![parse(kaskade_query::listings::LISTING_1).expect("serving workload parses")];
    kaskade.select_and_materialize(&workload, &SelectionConfig::default());
    let base = kaskade.snapshot();

    reader_counts
        .iter()
        .map(|&readers| {
            let engine = Engine::new(base.clone());
            let outcome = drive(
                &engine,
                &workload,
                &DriveConfig {
                    readers,
                    duration,
                    read_pause,
                    write_pause,
                    max_writes: 0,
                    verify_consistency: false,
                    workload: Workload::Append,
                },
            );
            ServeRow {
                readers,
                reads: outcome.reads,
                reads_per_sec: outcome.reads_per_sec(),
                p50: outcome.report.p50,
                p99: outcome.report.p99,
                writes: outcome.writes,
                epochs: outcome.report.epoch,
                cache_hit_rate: outcome.report.plan_cache_hit_rate(),
                max_refresh_lag: outcome.report.max_refresh_lag,
            }
        })
        .collect()
}

/// One row of the tracing-overhead experiment: the same serving run
/// with the span subsystem off, on, or on with a slow-query threshold.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Tracer variant driven ("off", "on", "on+slowlog").
    pub variant: &'static str,
    /// Successful reads over the run.
    pub reads: u64,
    /// Successful reads per second of wall-clock time.
    pub reads_per_sec: f64,
    /// Median query latency.
    pub p50: Duration,
    /// Trace events captured in the flight recorder.
    pub events: usize,
    /// Events dropped on flight-recorder slot contention.
    pub dropped: u64,
    /// Queries that crossed the slow-query threshold.
    pub slow_queries: u64,
}

/// Tracing overhead: the identical serving run (same state, same
/// workload, same writer cadence) under three tracer variants. The CI
/// overhead gate asserts `--trace off` and `--trace on` throughput stay
/// within noise of each other — a disabled span site must cost one
/// relaxed atomic load, and an enabled one two timestamps plus a ring
/// push.
pub fn serve_trace(
    dataset: Dataset,
    scale: usize,
    seed: u64,
    readers: usize,
    duration: Duration,
    write_pause: Duration,
) -> Vec<TraceRow> {
    let graph = dataset.generate(scale, seed);
    let mut kaskade = Kaskade::new(graph, dataset.schema());
    let workload =
        vec![parse(kaskade_query::listings::LISTING_1).expect("serving workload parses")];
    kaskade.select_and_materialize(&workload, &SelectionConfig::default());
    let base = kaskade.snapshot();

    [
        ("off", false, None),
        ("on", true, None),
        ("on+slowlog", true, Some(Duration::from_micros(1))),
    ]
    .into_iter()
    .map(|(variant, enabled, slow)| {
        let tracer = std::sync::Arc::new(Tracer::new(enabled));
        tracer.set_slow_query_threshold(slow);
        let engine = Engine::with_config(
            base.clone(),
            EngineConfig {
                tracer: Some(std::sync::Arc::clone(&tracer)),
                ..EngineConfig::default()
            },
        );
        let outcome = drive(
            &engine,
            &workload,
            &DriveConfig {
                readers,
                duration,
                read_pause: Duration::ZERO,
                write_pause,
                max_writes: 0,
                verify_consistency: false,
                workload: Workload::Append,
            },
        );
        TraceRow {
            variant,
            reads: outcome.reads,
            reads_per_sec: outcome.reads_per_sec(),
            p50: outcome.report.p50,
            events: tracer.dump().len(),
            dropped: tracer.dropped_events(),
            slow_queries: tracer.slow_queries(),
        }
    })
    .collect()
}

/// One row of the churn-serving experiment: a workload shape driven
/// against the engine, with the refresh-lag and stats-maintenance
/// numbers that make the incremental-statistics win visible.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Workload shape driven ("append", "churn", "hotkey", "burst").
    pub workload: &'static str,
    /// Successful reads over the run.
    pub reads: u64,
    /// Deltas the writer submitted.
    pub writes: u64,
    /// Retraction operations in applied batches.
    pub retractions: u64,
    /// Snapshot epochs published.
    pub epochs: u64,
    /// Apply+publish duration of the last batch.
    pub last_refresh: Duration,
    /// Worst enqueue→visibility refresh lag observed.
    pub max_refresh_lag: Duration,
    /// Whether the final snapshot passed the full consistency oracle
    /// (views and stats vs from-scratch rebuild).
    pub final_consistent: bool,
    /// Wall time of one full `GraphStats::compute` over the final base
    /// graph — the per-publish cost the old write path paid.
    pub stats_full_recompute: Duration,
    /// Wall time of one incremental `GraphStats::with_changes` update —
    /// the per-publish cost the write path pays now.
    pub stats_incremental_update: Duration,
}

/// Churn serving: drives the engine with each [`Workload`] shape
/// (inserts, deletes, skew, bursts) for `duration`, verifying at the
/// end that every materialized view and the incrementally maintained
/// statistics match a from-scratch rebuild. Also times one full
/// statistics recompute against one incremental update on the final
/// graph, quantifying the refresh-lag win of incremental stats.
pub fn serve_churn(
    dataset: Dataset,
    scale: usize,
    seed: u64,
    readers: usize,
    duration: Duration,
    write_pause: Duration,
) -> Vec<ChurnRow> {
    use kaskade_graph::{DegreeChange, GraphStats};
    let graph = dataset.generate(scale, seed);
    let mut kaskade = Kaskade::new(graph, dataset.schema());
    let workload =
        vec![parse(kaskade_query::listings::LISTING_1).expect("serving workload parses")];
    kaskade.select_and_materialize(&workload, &SelectionConfig::default());
    let base = kaskade.snapshot();

    Workload::ALL
        .iter()
        .map(|&shape| {
            let engine = Engine::new(base.clone());
            let outcome = drive(
                &engine,
                &workload,
                &DriveConfig {
                    readers,
                    duration,
                    read_pause: Duration::ZERO,
                    write_pause,
                    max_writes: 0,
                    verify_consistency: false,
                    workload: shape,
                },
            );
            let snap = engine.snapshot();
            let g = snap.state.graph();
            let start = Instant::now();
            let full = GraphStats::compute(g);
            let stats_full_recompute = start.elapsed();
            // one representative incremental update: the first live
            // vertex gaining an out-edge (derived from its real degree
            // so the histogram update is always valid)
            let v0 = g.vertices().next().expect("non-empty");
            let change = [DegreeChange {
                vtype: g.vertex_type(v0).to_string(),
                before: Some(g.out_degree(v0)),
                after: Some(g.out_degree(v0) + 1),
            }];
            let start = Instant::now();
            std::hint::black_box(full.with_changes(&change, g.vertex_count(), g.edge_count() + 1));
            let stats_incremental_update = start.elapsed();
            ChurnRow {
                workload: shape.name(),
                reads: outcome.reads,
                writes: outcome.writes,
                retractions: outcome.report.retractions_applied,
                epochs: outcome.report.epoch,
                last_refresh: outcome.report.last_refresh,
                max_refresh_lag: outcome.report.max_refresh_lag,
                final_consistent: outcome.final_consistent,
                stats_full_recompute,
                stats_incremental_update,
            }
        })
        .collect()
}

/// One row of the sharded-ingest experiment: the same churn delta
/// sequence driven through a single engine and a sharded engine,
/// comparing where the write path spends its time.
#[derive(Debug, Clone)]
pub struct ShardedServeRow {
    /// Shard count of the sharded engine for this row.
    pub shards: usize,
    /// Deltas ingested by each engine.
    pub writes: u64,
    /// Total apply+publish time of the single engine (graph apply,
    /// incremental stats, and view maintenance — the whole serial
    /// write path).
    pub single_apply: Duration,
    /// Total apply+publish time of the sharded coordinator (global
    /// apply, parallel view refresh, stats merge).
    pub coordinator_apply: Duration,
    /// Each shard engine's own ingest total (sub-delta apply and
    /// per-shard incremental statistics). Shards run concurrently, so
    /// the effective per-batch ingest cost is the max, not the sum.
    pub shard_apply: Vec<Duration>,
    /// Whether the blast-radius query returned byte-identical tables
    /// from both engines after the final flush.
    pub results_equal: bool,
    /// Whether the final sharded snapshot passed
    /// [`kaskade_service::ShardedSnapshot::is_coherent`].
    pub coherent: bool,
}

impl ShardedServeRow {
    /// The slowest shard's ingest total — the parallel write path's
    /// critical path.
    pub fn max_shard_apply(&self) -> Duration {
        self.shard_apply.iter().copied().max().unwrap_or_default()
    }

    /// Sum of every shard's ingest total (total work, ignoring
    /// parallelism).
    pub fn sum_shard_apply(&self) -> Duration {
        self.shard_apply.iter().sum()
    }
}

/// Sharded ingest: pre-scripts `steps` churn deltas (derived
/// sequentially, so they stay schema- and liveness-valid under any
/// batching), feeds the identical sequence to a single [`Engine`] and
/// to a [`ShardedEngine`] per shard count, and reports per-shard
/// ingest timings against the single-engine write path, plus the
/// differential checks (byte-identical query results, coherent final
/// snapshot).
pub fn serve_sharded(
    dataset: Dataset,
    scale: usize,
    seed: u64,
    shard_counts: &[usize],
    steps: u64,
) -> Vec<ShardedServeRow> {
    let graph = dataset.generate(scale, seed);
    let mut kaskade = Kaskade::new(graph, dataset.schema());
    // the connector is the view whose maintenance dominates the write
    // path — exactly what the sharded engine parallelizes
    if dataset.is_heterogeneous() {
        kaskade.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
    }
    let base = kaskade.snapshot();
    let query = parse(kaskade_query::listings::LISTING_1).expect("serving workload parses");

    // script the delta sequence once, against a view-free scratch state
    // (cheap), so every engine ingests the very same writes
    let mut deltas: Vec<GraphDelta> = Vec::with_capacity(steps as usize);
    let mut scratch = Snapshot::new(base.graph().clone(), base.schema().clone());
    for step in 0..steps {
        let Some(delta) = kaskade_service::churn_delta(&scratch, step) else {
            break;
        };
        scratch = scratch.with_delta(&delta);
        deltas.push(delta);
    }

    shard_counts
        .iter()
        .map(|&shards| {
            // compaction off for this experiment: the delta sequence
            // is pre-scripted in one fixed id space, and the point
            // here is comparing ingest time, not memory (the
            // `serve_compaction` experiment covers that)
            let single = Engine::with_config(
                base.clone(),
                EngineConfig {
                    compact_dead_ratio: f64::INFINITY,
                    ..EngineConfig::default()
                },
            );
            let sharded = ShardedEngine::with_config(
                base.clone(),
                kaskade_service::ShardedConfig {
                    compact_dead_ratio: f64::INFINITY,
                    ..kaskade_service::ShardedConfig::hash(shards)
                },
            );
            for d in &deltas {
                // a full queue only means the worker is behind: drain
                // and resubmit so both engines ingest every delta
                use kaskade_service::SubmitError;
                loop {
                    match single.submit(d.clone(), SubmitOpts::default()) {
                        Ok(()) => break,
                        Err(SubmitError::Backpressure) => {
                            single.flush();
                        }
                        Err(_) => break,
                    }
                }
                loop {
                    match sharded.submit(d.clone(), SubmitOpts::default()) {
                        Ok(()) => break,
                        Err(SubmitError::Backpressure) => {
                            sharded.flush();
                        }
                        Err(_) => break,
                    }
                }
            }
            single.flush();
            sharded.flush();
            let results_equal = match (single.execute(&query), sharded.execute(&query)) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            };
            let snap = sharded.snapshot();
            let report = sharded.metrics();
            ShardedServeRow {
                shards,
                writes: deltas.len() as u64,
                single_apply: single.metrics().apply_total,
                coordinator_apply: report.global.apply_total,
                shard_apply: report.per_shard.iter().map(|s| s.apply_total).collect(),
                results_equal,
                coherent: snap.is_coherent(),
            }
        })
        .collect()
}

/// One row of the serve-scale experiment: the hotkey workload served
/// live (concurrent readers + writer) at one shard count, through the
/// merged publish path and the persistent worker pool.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Shard count (1 = the unsharded [`Engine`]).
    pub shards: usize,
    /// Successful reads over the run.
    pub reads: u64,
    /// Successful reads per second of wall-clock time.
    pub reads_per_sec: f64,
    /// Median query latency.
    pub read_p50: Duration,
    /// 99th-percentile query latency.
    pub read_p99: Duration,
    /// Median apply+publish latency (the publish path this experiment
    /// scales).
    pub apply_p50: Duration,
    /// 99th-percentile apply+publish latency.
    pub apply_p99: Duration,
    /// Deltas the writer submitted.
    pub writes: u64,
    /// Multi-task dispatches the persistent worker pool served
    /// (scatter, merged publish, pool-backed refresh).
    pub pool_dispatches: u64,
    /// Ad-hoc `thread::scope` spawns observed during the run — the
    /// steady-state serving paths must keep this at zero now that the
    /// persistent pool exists.
    pub spawns_during_serve: u64,
    /// Whether the final snapshot passed the full consistency oracle.
    pub final_consistent: bool,
}

/// Publish-path scaling: the identical hotkey serving run (concurrent
/// readers, writer on a fixed cadence) swept over shard counts. With
/// the serial coordinator apply this degraded super-linearly in the
/// shard count (the coordinator redid the whole global apply while
/// shards idled at the barrier); with the merged publish the apply
/// quantiles should stay within a small constant of the 1-shard run —
/// the property CI's `serve_scale` gate pins down.
pub fn serve_scale(
    dataset: Dataset,
    scale: usize,
    seed: u64,
    shard_counts: &[usize],
    readers: usize,
    duration: Duration,
    write_pause: Duration,
) -> Vec<ScaleRow> {
    let graph = dataset.generate(scale, seed);
    let mut kaskade = Kaskade::new(graph, dataset.schema());
    // same view load as `serve_sharded`: the connector dominates the
    // refresh half of the publish path
    if dataset.is_heterogeneous() {
        kaskade.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
    }
    let base = kaskade.snapshot();
    let workload =
        vec![parse(kaskade_query::listings::LISTING_1).expect("serving workload parses")];
    let cfg = DriveConfig {
        readers,
        duration,
        read_pause: Duration::ZERO,
        write_pause,
        max_writes: 0,
        verify_consistency: false,
        workload: Workload::HotKey,
    };

    shard_counts
        .iter()
        .map(|&shards| {
            let spawns_before = kaskade_graph::thread_spawns();
            let (outcome, dispatches) = if shards <= 1 {
                let engine = Engine::new(base.clone());
                let outcome = drive(&engine, &workload, &cfg);
                let dispatches = engine.pool().dispatches();
                (outcome, dispatches)
            } else {
                let engine = ShardedEngine::with_config(
                    base.clone(),
                    kaskade_service::ShardedConfig::hash(shards),
                );
                let outcome = drive(&engine, &workload, &cfg);
                let dispatches = engine.pool().dispatches();
                (outcome, dispatches)
            };
            ScaleRow {
                shards,
                reads: outcome.reads,
                reads_per_sec: outcome.reads_per_sec(),
                read_p50: outcome.report.p50,
                read_p99: outcome.report.p99,
                apply_p50: outcome.report.apply_p50,
                apply_p99: outcome.report.apply_p99,
                writes: outcome.writes,
                pool_dispatches: dispatches,
                spawns_during_serve: kaskade_graph::thread_spawns() - spawns_before,
                final_consistent: outcome.final_consistent,
            }
        })
        .collect()
}

/// One row of the slot-compaction experiment: the same constant-live
/// churn sequence served with compaction disabled vs enabled.
#[derive(Debug, Clone)]
pub struct CompactionRow {
    /// Policy label ("disabled" or the dead ratio).
    pub policy: &'static str,
    /// Churn deltas ingested.
    pub writes: u64,
    /// Live elements (vertices + edges) in the final snapshot.
    pub live: usize,
    /// Total id-slot capacity (vertex + edge slots, live + dead) of
    /// the final snapshot — what an engine actually holds in memory.
    pub slot_capacity: usize,
    /// Compactions the writer ran.
    pub compactions_run: u64,
    /// Id slots reclaimed across those compactions.
    pub slots_reclaimed: u64,
    /// Total apply+publish time of the write path (compactions
    /// included).
    pub apply_total: Duration,
    /// Whether the final snapshot passed the full views+stats oracle.
    pub final_consistent: bool,
}

impl CompactionRow {
    /// `slot_capacity / live` — 1.0 is perfectly compact; unbounded
    /// growth under churn shows up as this ratio climbing forever.
    pub fn capacity_ratio(&self) -> f64 {
        self.slot_capacity as f64 / self.live.max(1) as f64
    }
}

/// Slot compaction under churn: drives `steps` constant-live churn
/// deltas (insert/delete turnover, [`kaskade_service::churn_delta`])
/// through two engines — compaction disabled vs the default 0.5
/// dead-ratio policy — and reports the final live size against the
/// id-slot capacity each engine actually holds. Runs on a small
/// provenance base (with the connector view materialized) so hundreds
/// of steps of turnover cross the compaction threshold several times;
/// on the disabled engine the same turnover just accumulates
/// tombstones. Each engine scripts every delta from its **own**
/// current snapshot and submits it with that snapshot's epoch — after
/// the first compaction the two id spaces diverge, and that is the
/// point: clients keep working purely in published-snapshot terms.
pub fn serve_compaction(seed: u64, steps: u64) -> Vec<CompactionRow> {
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_service::SubmitError;
    let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
    let mut kaskade = Kaskade::new(g, kaskade_graph::Schema::provenance());
    kaskade.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
    let base = kaskade.snapshot();

    [("disabled", f64::INFINITY), ("ratio 0.5", 0.5)]
        .into_iter()
        .map(|(policy, ratio)| {
            let engine = Engine::with_config(
                base.clone(),
                EngineConfig {
                    compact_dead_ratio: ratio,
                    ..EngineConfig::default()
                },
            );
            let mut writes = 0u64;
            for step in 0..steps {
                let snap = engine.snapshot();
                let Some(delta) = kaskade_service::churn_delta(&snap.state, step) else {
                    break;
                };
                loop {
                    match engine.submit(delta.clone(), SubmitOpts::based_on(snap.epoch)) {
                        Ok(()) => {
                            writes += 1;
                            break;
                        }
                        Err(SubmitError::Backpressure) => {
                            engine.flush();
                        }
                        Err(_) => break, // engine gone: delta not counted
                    }
                }
                // small batches keep the turnover visible to the policy
                if step % 8 == 7 {
                    engine.flush();
                }
            }
            engine.flush();
            let snap = engine.snapshot();
            let graph = snap.state.graph();
            let report = engine.metrics();
            CompactionRow {
                policy,
                writes,
                live: graph.vertex_count() + graph.edge_count(),
                slot_capacity: graph.vertex_slots() + graph.edge_slots(),
                compactions_run: report.compactions_run,
                slots_reclaimed: report.slots_reclaimed,
                apply_total: report.apply_total,
                final_consistent: kaskade_service::snapshot_is_consistent(&snap.state),
            }
        })
        .collect()
}

/// One row of the recovery experiment: one churn run logged to a WAL
/// at a given checkpoint cadence, then recovered from disk.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Checkpoint cadence (batches between checkpoints).
    pub checkpoint_every: u64,
    /// Churn deltas ingested before the engine was torn down.
    pub writes: u64,
    /// Log records replayed on top of the latest checkpoint.
    pub records_replayed: usize,
    /// Size of the latest checkpoint file on disk.
    pub checkpoint_bytes: u64,
    /// Size of the delta log on disk at teardown.
    pub log_bytes: u64,
    /// Wall time of the raw checkpoint-load + log-replay pass — the
    /// irreducible budget any recovery pays.
    pub replay_time: Duration,
    /// Wall time of the full [`Engine::recover`] restart (includes a
    /// second replay pass, the fresh safety checkpoint, and spinning
    /// the writer up).
    pub restart_time: Duration,
    /// Whether the recovered state is byte-identical to the state the
    /// live engine last published.
    pub state_matches: bool,
}

impl RecoveryRow {
    /// The CI gate: the full restart must cost at most 2× the raw
    /// checkpoint+replay budget (engine spin-up must not dominate).
    pub fn within_budget(&self) -> bool {
        self.restart_time <= self.replay_time * 2 + Duration::from_millis(50)
    }
}

/// Recovery cost vs checkpoint cadence: drives `steps` churn deltas
/// through a WAL-backed engine per cadence in `cadences`, tears the
/// engine down, and measures (a) the raw checkpoint-load + replay pass
/// and (b) the full `Engine::recover` restart, verifying the recovered
/// state byte-matches the last published snapshot. Frequent
/// checkpoints shrink the replay tail at the price of more checkpoint
/// writes during serving; the row pair quantifies that trade.
pub fn serve_recovery(seed: u64, steps: u64, cadences: &[u64]) -> Vec<RecoveryRow> {
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_service::{SubmitError, WalConfig};
    let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
    let mut kaskade = Kaskade::new(g, kaskade_graph::Schema::provenance());
    kaskade.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
    let base = kaskade.snapshot();

    let encoded = |s: &Snapshot| {
        let mut enc = kaskade_graph::Enc::new();
        s.encode(&mut enc);
        enc.into_bytes()
    };

    cadences
        .iter()
        .map(|&cadence| {
            let dir = std::env::temp_dir().join(format!(
                "kaskade-bench-rec-{cadence}-{seed:x}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let wal = || WalConfig {
                fsync: false,
                checkpoint_every: cadence,
                ..WalConfig::new(&dir)
            };
            let engine = Engine::with_config(
                base.clone(),
                EngineConfig {
                    wal: Some(wal()),
                    ..EngineConfig::default()
                },
            );
            let mut writes = 0u64;
            for step in 0..steps {
                let snap = engine.snapshot();
                let Some(delta) = kaskade_service::churn_delta(&snap.state, step) else {
                    break;
                };
                loop {
                    match engine.submit(delta.clone(), SubmitOpts::based_on(snap.epoch)) {
                        Ok(()) => {
                            writes += 1;
                            break;
                        }
                        Err(SubmitError::Backpressure) => {
                            engine.flush();
                        }
                        Err(_) => break,
                    }
                }
                if step % 8 == 7 {
                    engine.flush();
                }
            }
            engine.flush();
            let live = engine.snapshot().state.clone();
            drop(engine); // tear down; only the WAL directory survives

            let log_bytes = std::fs::metadata(dir.join("wal.log"))
                .map(|m| m.len())
                .unwrap_or(0);
            let checkpoint_bytes = std::fs::read_dir(&dir)
                .map(|rd| {
                    rd.filter_map(|e| e.ok())
                        .filter(|e| e.file_name().to_string_lossy().starts_with("checkpoint-"))
                        .filter_map(|e| e.metadata().ok())
                        .map(|m| m.len())
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);

            let start = Instant::now();
            let raw = kaskade_service::recover(&dir)
                .expect("recovery io")
                .expect("the run published batches");
            let replay_time = start.elapsed();

            let start = Instant::now();
            let restarted = Engine::recover(EngineConfig {
                wal: Some(wal()),
                ..EngineConfig::default()
            })
            .expect("recovery io")
            .expect("the run published batches");
            let restart_time = start.elapsed();

            let state_matches = encoded(&raw.state) == encoded(&live)
                && encoded(&restarted.snapshot().state) == encoded(&live);
            drop(restarted);
            let _ = std::fs::remove_dir_all(&dir);
            RecoveryRow {
                checkpoint_every: cadence,
                writes,
                records_replayed: raw.records_replayed,
                checkpoint_bytes,
                log_bytes,
                replay_time,
                restart_time,
                state_matches,
            }
        })
        .collect()
}

/// One row of the adaptive-serving experiment: the same hotkey serving
/// run, starting from an **empty** catalog, with the background view
/// advisor off ("static") vs on ("adaptive").
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Admission policy driven ("static" or "adaptive").
    pub policy: &'static str,
    /// Shard count (1 = the unsharded [`Engine`]).
    pub shards: usize,
    /// Successful reads over the run.
    pub reads: u64,
    /// Successful reads per second of wall-clock time.
    pub reads_per_sec: f64,
    /// Median query latency.
    pub p50: Duration,
    /// Advisor ticks that ran during the serve window.
    pub ticks: u64,
    /// Live DDL migrations (creates + drops) the advisor issued.
    pub migrations: u64,
    /// Views created through live DDL over the run.
    pub views_created: u64,
    /// Views dropped through live DDL over the run.
    pub views_dropped: u64,
    /// Plan-cache hit rate over the run (DDL prunes the cache, so the
    /// adaptive run pays a re-plan per migration).
    pub cache_hit_rate: f64,
    /// Full re-materialization fallbacks of surviving views (must be
    /// 0: DDL never forces unrelated views to rebuild).
    pub rematerialized: u64,
    /// Per-read snapshot-consistency violations (must be 0: DDL epochs
    /// publish as atomically as batch epochs).
    pub consistency_violations: u64,
    /// Whether the final snapshot passed the full consistency oracle.
    pub final_consistent: bool,
}

/// Adaptive serving: the hotkey workload served from an **empty**
/// catalog, once statically (the catalog never changes, every query
/// pays the base-graph path forever) and once with the background
/// advisor re-running enumerate+select over live workload stats and
/// migrating the catalog through live DDL mid-serve. The adaptive run
/// must migrate online — create at least one view the workload earns —
/// with zero consistency violations and zero re-materializations of
/// surviving views; the static run must not migrate at all. Those are
/// the properties CI's `report adaptive` gate and the checked-in
/// `BENCH_adaptive.json` pin down.
pub fn serve_adaptive(
    dataset: Dataset,
    scale: usize,
    seed: u64,
    shard_counts: &[usize],
    readers: usize,
    duration: Duration,
    advise_every: Duration,
) -> Vec<AdaptiveRow> {
    use kaskade_service::{Advisor, AdvisorConfig};
    use std::sync::Arc;
    let graph = dataset.generate(scale, seed);
    // EMPTY catalog: every view in the adaptive run's final catalog got
    // there through advisor-issued live DDL
    let kaskade = Kaskade::new(graph, dataset.schema());
    let base = kaskade.snapshot();
    let workload =
        vec![parse(kaskade_query::listings::LISTING_1).expect("serving workload parses")];
    let cfg = DriveConfig {
        readers,
        duration,
        read_pause: Duration::ZERO,
        write_pause: Duration::from_millis(2),
        max_writes: 0,
        verify_consistency: true,
        workload: Workload::HotKey,
    };
    let advisor_cfg = AdvisorConfig {
        every: advise_every,
        ..AdvisorConfig::default()
    };
    let finish = |advisor: Option<Advisor>| {
        advisor.map_or((0, 0), |mut advisor| {
            advisor.stop();
            (advisor.ticks(), advisor.migrations())
        })
    };

    let mut rows = Vec::new();
    for &shards in shard_counts {
        for (policy, adaptive) in [("static", false), ("adaptive", true)] {
            let tracer = Arc::new(Tracer::new(false));
            let (outcome, ticks, migrations) = if shards <= 1 {
                let engine = Arc::new(Engine::new(base.clone()));
                let advisor = adaptive.then(|| {
                    Advisor::start(
                        Arc::clone(&engine),
                        Arc::clone(&tracer),
                        advisor_cfg.clone(),
                    )
                });
                let outcome = drive(&*engine, &workload, &cfg);
                let (ticks, migrations) = finish(advisor);
                (outcome, ticks, migrations)
            } else {
                let engine = Arc::new(ShardedEngine::with_config(
                    base.clone(),
                    kaskade_service::ShardedConfig::hash(shards),
                ));
                let advisor = adaptive.then(|| {
                    Advisor::start(
                        Arc::clone(&engine),
                        Arc::clone(&tracer),
                        advisor_cfg.clone(),
                    )
                });
                let outcome = drive(&*engine, &workload, &cfg);
                let (ticks, migrations) = finish(advisor);
                (outcome, ticks, migrations)
            };
            rows.push(AdaptiveRow {
                policy,
                shards,
                reads: outcome.reads,
                reads_per_sec: outcome.reads_per_sec(),
                p50: outcome.report.p50,
                ticks,
                migrations,
                views_created: outcome.report.views_created,
                views_dropped: outcome.report.views_dropped,
                cache_hit_rate: outcome.report.plan_cache_hit_rate(),
                rematerialized: outcome.report.views_rematerialized,
                consistency_violations: outcome.consistency_violations,
                final_consistent: outcome.final_consistent,
            });
        }
    }
    rows
}

/// One row of the refresh-DAG experiment: the same scripted churn
/// sequence applied to a multi-view composed catalog with the DAG's
/// level-parallel fan-out disabled vs enabled.
#[derive(Debug, Clone)]
pub struct DagRow {
    /// Refresh mode ("serial" or "dag-parallel").
    pub mode: &'static str,
    /// Views in the catalog.
    pub views: usize,
    /// Dependency levels the DAG scheduled them into.
    pub levels: usize,
    /// Churn deltas applied.
    pub writes: u64,
    /// Total apply+refresh time across all deltas.
    pub refresh_total: Duration,
    /// Incremental view refreshes performed.
    pub refreshed: u64,
    /// Full re-materialization fallbacks (must be 0: the composed
    /// view's upstream connector is in the catalog).
    pub rematerialized: u64,
}

/// Refresh DAG: drives `steps` churn deltas through the same 4-view
/// composed catalog (connector, summarizer *over* that connector,
/// pipeline aggregator, source-sink) twice — once with the DAG forced
/// serial, once with its level-parallel fan-out — and reports the
/// total write-path time of each. The two runs publish identical
/// snapshots; only the scheduling differs, so the delta is the pure
/// win from refreshing independent views concurrently.
pub fn serve_dag(seed: u64, steps: u64) -> Vec<DagRow> {
    use kaskade_core::{
        AggOp, ComposedDef, PropPredicate, RefreshOptions, SourceSinkDef, SummarizerDef,
    };
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    let g = generate_provenance(&ProvenanceConfig {
        seed,
        ..ProvenanceConfig::default()
    });
    let mut kaskade = Kaskade::new(g, kaskade_graph::Schema::provenance());
    let connector = ConnectorDef::k_hop("Job", "Job", 2);
    kaskade.materialize_view(ViewDef::Connector(connector.clone()));
    kaskade.materialize_view(ViewDef::Composed(ComposedDef {
        connector,
        summarizer: SummarizerDef::EdgePredicate {
            keep: PropPredicate::IntAtLeast("support".into(), 2),
        },
    }));
    kaskade.materialize_view(ViewDef::Summarizer(SummarizerDef::VertexAggregator {
        vtype: "Job".into(),
        group_prop: "pipelineName".into(),
        agg_prop: "CPU".into(),
        agg: AggOp::Sum,
    }));
    kaskade.materialize_view(ViewDef::SourceSink(SourceSinkDef::default()));
    let base = kaskade.snapshot();

    [("serial", false), ("dag-parallel", true)]
        .into_iter()
        .map(|(mode, parallel)| {
            let opts = RefreshOptions {
                parallel,
                ..RefreshOptions::default()
            };
            let mut snap = base.clone();
            let mut total = Duration::ZERO;
            let (mut writes, mut refreshed, mut remat, mut levels) = (0u64, 0u64, 0u64, 0usize);
            for step in 0..steps {
                let Some(delta) = kaskade_service::churn_delta(&snap, step) else {
                    break;
                };
                let start = Instant::now();
                let (next, report) = snap.with_delta_report(&delta, &opts);
                total += start.elapsed();
                snap = next;
                writes += 1;
                refreshed += report.refreshed as u64;
                remat += report.rematerialized as u64;
                levels = report.levels;
            }
            DagRow {
                mode,
                views: base.catalog().len(),
                levels,
                writes,
                refresh_total: total,
                refreshed,
                rematerialized: remat,
            }
        })
        .collect()
}

/// One Table III row: dataset inventory.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset short name.
    pub name: &'static str,
    /// "heterogeneous" / "homogeneous".
    pub kind: &'static str,
    /// Raw vertex count.
    pub vertices: usize,
    /// Raw edge count.
    pub edges: usize,
    /// Distinct vertex types.
    pub vertex_types: usize,
    /// Distinct edge types.
    pub edge_types: usize,
}

/// Table III: generated dataset inventory at the given scale.
pub fn table3(scale: usize, seed: u64) -> Vec<Table3Row> {
    Dataset::ALL
        .iter()
        .map(|&d| {
            let g = d.generate(scale, seed);
            Table3Row {
                name: d.short_name(),
                kind: if d.is_heterogeneous() {
                    "heterogeneous"
                } else {
                    "homogeneous"
                },
                vertices: g.vertex_count(),
                edges: g.edge_count(),
                vertex_types: g.vertex_type_counts().len(),
                edge_types: g.edge_type_counts().len(),
            }
        })
        .collect()
}

/// Fig. 5 estimator accuracy summary used by EXPERIMENTS.md: how many
/// prefixes have `actual <= est_alpha95` (the paper's claim that α=95
/// upper-bounds most real graphs).
pub fn fig5_upper_bound_hit_rate(rows: &[Fig5Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let hits = rows
        .iter()
        .filter(|r| (r.actual as f64) <= r.est_alpha95)
        .count();
    hits as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_rows_monotone_prefixes() {
        let rows = fig5(Dataset::Prov, 1, 31, &[500, 2_000, 8_000]);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].graph_edges <= w[1].graph_edges);
        }
        for r in &rows {
            assert!(r.est_alpha50 <= r.est_alpha95);
            assert!(r.est_alpha95 >= 0.0);
        }
    }

    #[test]
    fn fig5_er_underestimates_on_powerlaw() {
        let rows = fig5(Dataset::SocLivejournal, 1, 32, &[5_000]);
        let r = rows[0];
        assert!(
            r.est_erdos_renyi < r.actual as f64,
            "er={} actual={}",
            r.est_erdos_renyi,
            r.actual
        );
    }

    #[test]
    fn fig6_stages_shrink_on_prov() {
        let env = Env::prepare(Dataset::Prov, 1, 33);
        let rows = fig6(&env);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].vertices > rows[1].vertices, "summarizer shrinks");
        assert!(rows[1].vertices > rows[2].vertices, "connector shrinks");
    }

    #[test]
    fn fig7_produces_rows_for_applicable_queries() {
        let env = Env::prepare(Dataset::Dblp, 1, 34);
        let rows = fig7(&env, 1);
        // q1 excluded for dblp → 7 rows
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.filter_secs >= 0.0 && r.connector_secs >= 0.0);
        }
    }

    #[test]
    fn fig8_powerlaw_fit_negative_for_social() {
        let d = fig8(Dataset::SocLivejournal, 1, 35);
        assert!(d.exponent.unwrap() < 0.0);
        assert!(!d.ccdf.is_empty());
    }

    #[test]
    fn ablation_shows_search_space_reduction() {
        let a = enumeration_ablation(Dataset::Prov, 10);
        // constraint-based enumeration yields a handful of candidates;
        // the procedural schema-path space is much larger
        assert!(a.constrained_candidates > 0);
        assert!(a.procedural_paths > a.constrained_candidates);
        assert!(a.constrained_steps > 0);
    }

    #[test]
    fn serve_throughput_reads_under_active_writer() {
        // unoptimized builds take ~0.5s per blast-radius query; the run
        // must span several rounds per reader for cache hits to show
        let rows = serve_throughput(
            Dataset::Prov,
            1,
            37,
            &[4],
            Duration::from_millis(1_500),
            Duration::ZERO,
            Duration::from_millis(2),
        );
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.readers, 4);
        assert!(r.reads > 0, "readers progressed: {r:?}");
        assert!(r.writes > 0, "writer progressed: {r:?}");
        assert!(r.epochs > 0, "snapshots published: {r:?}");
        assert!(r.cache_hit_rate > 0.0, "plan cache warmed: {r:?}");
        assert!(r.reads_per_sec > 0.0);
        assert!(r.p99 >= r.p50);
    }

    #[test]
    fn serve_trace_captures_spans_only_when_enabled() {
        let rows = serve_trace(
            Dataset::Prov,
            1,
            41,
            2,
            Duration::from_millis(300),
            Duration::from_millis(2),
        );
        assert_eq!(rows.len(), 3);
        let (off, on, slowlog) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(off.variant, "off");
        assert_eq!(off.events, 0, "disabled tracer recorded spans: {off:?}");
        assert_eq!(on.variant, "on");
        assert!(on.events > 0, "enabled tracer captured nothing: {on:?}");
        assert!(on.reads > 0 && off.reads > 0);
        // a 1µs threshold makes every served query a slow query
        assert_eq!(slowlog.slow_queries, slowlog.reads, "{slowlog:?}");
    }

    #[test]
    fn serve_churn_verifies_all_workload_shapes() {
        let rows = serve_churn(
            Dataset::Prov,
            1,
            38,
            2,
            Duration::from_millis(300),
            Duration::from_millis(1),
        );
        assert_eq!(rows.len(), Workload::ALL.len());
        for r in &rows {
            assert!(
                r.final_consistent,
                "{}: final snapshot inconsistent",
                r.workload
            );
            assert!(r.writes > 0, "{}: writer progressed", r.workload);
            assert!(r.epochs > 0, "{}: snapshots published", r.workload);
        }
        let churn = rows.iter().find(|r| r.workload == "churn").unwrap();
        assert!(churn.retractions > 0, "churn actually retracted: {churn:?}");
    }

    #[test]
    fn serve_sharded_is_equivalent_and_coherent() {
        let rows = serve_sharded(Dataset::Prov, 1, 39, &[1, 4], 40);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.shard_apply.len(), r.shards);
            assert!(r.writes > 0, "{r:?}");
            assert!(
                r.results_equal,
                "{}-shard results diverged from the single engine",
                r.shards
            );
            assert!(r.coherent, "{}-shard final snapshot torn", r.shards);
            assert!(r.single_apply > Duration::ZERO);
            assert!(r.max_shard_apply() <= r.sum_shard_apply());
        }
    }

    #[test]
    fn serve_scale_exercises_pool_without_spawns() {
        let rows = serve_scale(
            Dataset::Prov,
            1,
            43,
            &[1, 2],
            2,
            Duration::from_millis(300),
            Duration::from_millis(2),
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.final_consistent, "{}-shard: {r:?}", r.shards);
            assert!(r.writes > 0 && r.reads > 0, "{r:?}");
            assert_eq!(
                r.spawns_during_serve, 0,
                "{}-shard serving spawned ad-hoc threads: {r:?}",
                r.shards
            );
        }
        // the sharded run scatters, merges, and refreshes on the pool
        assert!(
            rows[1].pool_dispatches > 0,
            "sharded serving never dispatched to the pool: {:?}",
            rows[1]
        );
    }

    #[test]
    fn serve_compaction_bounds_slot_capacity() {
        let rows = serve_compaction(40, 900);
        assert_eq!(rows.len(), 2);
        let disabled = &rows[0];
        let enabled = &rows[1];
        assert_eq!(disabled.policy, "disabled");
        assert_eq!(disabled.compactions_run, 0);
        assert!(disabled.final_consistent, "{disabled:?}");
        assert!(enabled.final_consistent, "{enabled:?}");
        assert!(
            enabled.compactions_run >= 1,
            "churn past the threshold must compact: {enabled:?}"
        );
        assert!(enabled.slots_reclaimed > 0, "{enabled:?}");
        // the acceptance bound: capacity stays within 2x live under
        // the 0.5 policy, while the disabled engine's keeps growing
        assert!(
            enabled.capacity_ratio() <= 2.0,
            "capacity ratio {:.2} exceeds the 2x bound: {enabled:?}",
            enabled.capacity_ratio()
        );
        assert!(
            disabled.slot_capacity > enabled.slot_capacity,
            "without compaction the same churn must hold more slots: {rows:?}"
        );
    }

    #[test]
    fn serve_adaptive_migrates_online() {
        let rows = serve_adaptive(
            Dataset::Prov,
            1,
            42,
            &[1],
            2,
            Duration::from_millis(1_500),
            Duration::from_millis(40),
        );
        assert_eq!(rows.len(), 2);
        let (fixed, adaptive) = (&rows[0], &rows[1]);
        assert_eq!(fixed.policy, "static");
        assert_eq!(fixed.migrations, 0, "no advisor, no DDL: {fixed:?}");
        assert_eq!(fixed.views_created, 0, "{fixed:?}");
        assert_eq!(adaptive.policy, "adaptive");
        assert!(adaptive.ticks >= 1, "advisor never ticked: {adaptive:?}");
        assert!(
            adaptive.migrations >= 1 && adaptive.views_created >= 1,
            "advisor never migrated the catalog online: {adaptive:?}"
        );
        for r in &rows {
            assert_eq!(r.consistency_violations, 0, "torn read under DDL: {r:?}");
            assert_eq!(r.rematerialized, 0, "DDL forced a rebuild: {r:?}");
            assert!(r.final_consistent, "{r:?}");
            assert!(r.reads > 0 && r.reads_per_sec > 0.0, "{r:?}");
        }
    }

    #[test]
    fn table3_covers_all_datasets() {
        let rows = table3(1, 36);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.name == "prov" && r.vertex_types == 5));
        assert!(rows
            .iter()
            .any(|r| r.name == "roadnet-usa" && r.kind == "homogeneous"));
    }

    #[test]
    fn upper_bound_hit_rate() {
        let rows = vec![
            Fig5Row {
                graph_edges: 10,
                est_alpha50: 1.0,
                est_alpha95: 100.0,
                est_erdos_renyi: 0.1,
                actual: 50,
            },
            Fig5Row {
                graph_edges: 10,
                est_alpha50: 1.0,
                est_alpha95: 10.0,
                est_erdos_renyi: 0.1,
                actual: 50,
            },
        ];
        assert_eq!(fig5_upper_bound_hit_rate(&rows), 0.5);
        assert_eq!(fig5_upper_bound_hit_rate(&[]), 0.0);
    }
}
