//! # kaskade-bench
//!
//! The benchmark harness of the Kaskade reproduction: experiment
//! drivers that regenerate every table and figure of the paper's
//! evaluation (§VII), shared setup (dataset → summarizer → connector
//! pipeline), and the Table IV query workload.
//!
//! Run `cargo run -p kaskade-bench --release --bin report` for the full
//! report, or `report fig7 prov` for a single experiment. Criterion
//! micro-benchmarks live in `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod setup;
pub mod workload;
