//! Shared experiment setup: datasets, summarized graphs, connector
//! views — the three graph stages of the paper's evaluation (§VII-B):
//! raw → filter (schema-level summarizer) → connector.

use kaskade_core::{materialize, ConnectorDef, SummarizerDef, ViewDef};
use kaskade_datasets::Dataset;
use kaskade_graph::Graph;

/// A prepared evaluation environment for one dataset.
pub struct Env {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// The raw generated graph (heterogeneous datasets include the
    /// periphery the summarizer later removes).
    pub raw: Graph,
    /// The summarized ("filter") graph queries run on: for prov/dblp a
    /// schema-level vertex-inclusion summarizer; for homogeneous
    /// datasets the raw graph itself (§VII-B).
    pub filtered: Graph,
    /// The 2-hop anchor-to-anchor connector view over `filtered`
    /// (job-to-job, author-to-author, or vertex-to-vertex).
    pub connector: Graph,
    /// The connector's edge-type label.
    pub connector_label: String,
}

impl Env {
    /// Generates and prepares all three graph stages.
    pub fn prepare(dataset: Dataset, scale: usize, seed: u64) -> Env {
        let raw = dataset.generate(scale, seed);
        let filtered = match dataset {
            Dataset::Prov => materialize(
                &raw,
                &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
                    keep: vec!["Job".into(), "File".into()],
                }),
            ),
            Dataset::Dblp => materialize(
                &raw,
                &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
                    keep: vec!["Author".into(), "Publication".into()],
                }),
            ),
            _ => raw.clone(),
        };
        let anchor = dataset.anchor_type();
        let def = ConnectorDef::k_hop(anchor, anchor, 2);
        let connector = materialize(&filtered, &ViewDef::Connector(def.clone()));
        Env {
            dataset,
            raw,
            filtered,
            connector,
            connector_label: def.edge_label(),
        }
    }
}

/// Total number of distinct ordered vertex pairs `(u, v)` connected by a
/// directed walk of exactly `k` edges — the size of the vertex-to-vertex
/// k-hop connector, used as the "actual" series of Fig. 5.
pub fn k_hop_pair_count(g: &Graph, k: usize) -> usize {
    use std::collections::HashSet;
    let mut total = 0usize;
    for u in g.vertices() {
        let mut frontier: HashSet<_> = HashSet::new();
        frontier.insert(u);
        for _ in 0..k {
            let mut next = HashSet::new();
            for &v in &frontier {
                for w in g.out_neighbors(v) {
                    next.insert(w);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        total += frontier.len();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::GraphBuilder;

    #[test]
    fn env_prepares_all_stages() {
        let env = Env::prepare(Dataset::Prov, 1, 11);
        assert!(env.raw.vertex_count() > env.filtered.vertex_count());
        assert!(env.connector.edge_count() > 0);
        assert_eq!(env.connector_label, "JOB_TO_JOB_2_HOP");
        // connector graph has only Job vertices
        assert!(env
            .connector
            .vertices()
            .all(|v| env.connector.vertex_type(v) == "Job"));
    }

    #[test]
    fn homogeneous_env_filter_is_raw() {
        let env = Env::prepare(Dataset::RoadnetUsa, 1, 12);
        assert_eq!(env.raw.edge_count(), env.filtered.edge_count());
        assert_eq!(env.connector_label, "INTERSECTION_TO_INTERSECTION_2_HOP");
    }

    #[test]
    fn k_hop_pair_count_chain() {
        // a->b->c->d: 2-hop pairs: (a,c), (b,d)
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4).map(|_| b.add_vertex("V")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], "E");
        }
        let g = b.finish();
        assert_eq!(k_hop_pair_count(&g, 2), 2);
        assert_eq!(k_hop_pair_count(&g, 3), 1);
        assert_eq!(k_hop_pair_count(&g, 1), 3);
        assert_eq!(k_hop_pair_count(&g, 4), 0);
    }

    #[test]
    fn pair_count_matches_connector_materialization() {
        let env = Env::prepare(Dataset::Prov, 1, 13);
        // vertex-to-vertex pairs ≥ job-to-job connector edges
        let pairs = k_hop_pair_count(&env.filtered, 2);
        assert!(pairs >= env.connector.edge_count());
    }
}
