//! The evaluation query workload Q1–Q8 (Table IV of the paper).
//!
//! Each query runs in two variants: over the filtered ("filter") graph
//! and — rewritten — over the 2-hop connector view, exactly as §VII-C
//! describes: Q1–Q4 traverse half the hops on the connector, Q7/Q8 run
//! about half as many label-propagation passes, Q5/Q6 are unchanged.

use kaskade_algos::{
    ancestors, community_sizes, descendants, label_propagation, largest_community, path_lengths,
    total_path_length,
};
use kaskade_graph::{Graph, VertexId};
use kaskade_query::{execute, listings, parse, Datum};

use crate::setup::Env;

/// The eight workload queries of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Job blast radius (subgraph retrieval + aggregation).
    Q1,
    /// Ancestors: backward lineage up to 4 hops, all anchor vertices.
    Q2,
    /// Descendants: forward lineage up to 4 hops, all anchor vertices.
    Q3,
    /// Path lengths: max-timestamp aggregation over 4-hop neighborhoods.
    Q4,
    /// Edge count.
    Q5,
    /// Vertex count.
    Q6,
    /// Community detection: 25 passes of label propagation.
    Q7,
    /// Largest community by anchor-type population.
    Q8,
}

impl QueryId {
    /// All queries in Table IV order.
    pub const ALL: [QueryId; 8] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
    ];

    /// Short name ("q1"..."q8").
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "q1",
            QueryId::Q2 => "q2",
            QueryId::Q3 => "q3",
            QueryId::Q4 => "q4",
            QueryId::Q5 => "q5",
            QueryId::Q6 => "q6",
            QueryId::Q7 => "q7",
            QueryId::Q8 => "q8",
        }
    }

    /// Table IV descriptions.
    pub fn description(self) -> &'static str {
        match self {
            QueryId::Q1 => "Job Blast Radius (Retrieval, Subgraph)",
            QueryId::Q2 => "Ancestors (Retrieval, Set of vertices)",
            QueryId::Q3 => "Descendants (Retrieval, Set of vertices)",
            QueryId::Q4 => "Path lengths (Retrieval, Bag of scalars)",
            QueryId::Q5 => "Edge Count (Retrieval, Single scalar)",
            QueryId::Q6 => "Vertex Count (Retrieval, Single scalar)",
            QueryId::Q7 => "Community Detection (Update, N/A)",
            QueryId::Q8 => "Largest Community (Retrieval, Subgraph)",
        }
    }

    /// Whether this query applies to the given dataset (Q1 needs job
    /// CPU/pipeline properties, so it is prov-only — Fig. 7 likewise
    /// only shows q1 for prov).
    pub fn applies_to(self, dataset: kaskade_datasets::Dataset) -> bool {
        self != QueryId::Q1 || dataset == kaskade_datasets::Dataset::Prov
    }
}

/// The outcome of one query run: a scalar digest of the result (so
/// benchmarks can validate filter-vs-connector agreement) plus the
/// result cardinality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutput {
    /// Scalar digest (query-specific; documented per query).
    pub value: f64,
    /// Number of result rows / reached vertices.
    pub rows: usize,
}

/// Maximum number of anchor vertices Q2/Q3/Q4 iterate. The paper runs
/// them for *all* anchors of billion-edge graphs on a 28-core server; we
/// cap per-anchor loops at laptop scale. The cap is deterministic (first
/// ids) and identical for filter and connector runs, so relative
/// timings are unaffected.
pub const ANCHOR_CAP: usize = 1_000;

fn anchor_vertices(g: &Graph, anchor: &str) -> Vec<VertexId> {
    g.vertices_of_type(anchor).take(ANCHOR_CAP).collect()
}

/// Q7's pass counts: 25 on the filter graph, ~half on the connector.
pub const Q7_PASSES_FILTER: usize = 25;
/// Connector-side pass count for Q7 (§VII-C: "around half as many").
pub const Q7_PASSES_CONNECTOR: usize = 13;

/// Runs query `q` on `env`, either over the filter graph or over the
/// connector view (with halved hop/pass counts).
pub fn run(env: &Env, q: QueryId, on_connector: bool) -> QueryOutput {
    let (g, hops) = if on_connector {
        (&env.connector, 2)
    } else {
        (&env.filtered, 4)
    };
    let anchor = env.dataset.anchor_type();
    match q {
        QueryId::Q1 => {
            let src = if on_connector {
                listings::LISTING_4
            } else {
                listings::LISTING_1
            };
            let query = parse(src).expect("listing parses");
            let table = execute(g, &query).expect("listing executes");
            let sum: f64 = table
                .rows
                .iter()
                .filter_map(|r| r.get(1).and_then(Datum::as_f64))
                .sum();
            QueryOutput {
                value: sum,
                rows: table.len(),
            }
        }
        QueryId::Q2 => {
            let mut total = 0usize;
            for v in anchor_vertices(g, anchor) {
                total += ancestors(g, v, hops).len();
            }
            QueryOutput {
                value: total as f64,
                rows: total,
            }
        }
        QueryId::Q3 => {
            let mut total = 0usize;
            for v in anchor_vertices(g, anchor) {
                total += descendants(g, v, hops).len();
            }
            QueryOutput {
                value: total as f64,
                rows: total,
            }
        }
        QueryId::Q4 => {
            let mut total_hops = 0usize;
            let mut rows = 0usize;
            for v in anchor_vertices(g, anchor) {
                let pl = path_lengths(g, v, hops, "ts");
                total_hops += total_path_length(&pl);
                rows += pl.len();
            }
            QueryOutput {
                value: total_hops as f64,
                rows,
            }
        }
        QueryId::Q5 => QueryOutput {
            value: g.edge_count() as f64,
            rows: 1,
        },
        QueryId::Q6 => QueryOutput {
            value: g.vertex_count() as f64,
            rows: 1,
        },
        QueryId::Q7 => {
            let passes = if on_connector {
                Q7_PASSES_CONNECTOR
            } else {
                Q7_PASSES_FILTER
            };
            let c = label_propagation(g, passes);
            let n_communities = community_sizes(&c).len();
            QueryOutput {
                value: n_communities as f64,
                rows: n_communities,
            }
        }
        QueryId::Q8 => {
            let passes = if on_connector {
                Q7_PASSES_CONNECTOR
            } else {
                Q7_PASSES_FILTER
            };
            let c = label_propagation(g, passes);
            match largest_community(g, &c, anchor) {
                Some((_, members)) => QueryOutput {
                    value: members.len() as f64,
                    rows: members.len(),
                },
                None => QueryOutput {
                    value: 0.0,
                    rows: 0,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_datasets::Dataset;

    fn tiny_env(d: Dataset) -> Env {
        // scale 1 is already laptop-tiny for the defaults; use directly
        Env::prepare(d, 1, 21)
    }

    #[test]
    fn all_queries_run_on_prov_both_variants() {
        let env = tiny_env(Dataset::Prov);
        for q in QueryId::ALL {
            let a = run(&env, q, false);
            let b = run(&env, q, true);
            // smoke: everything terminates and produces finite results
            assert!(a.value.is_finite(), "{:?} filter", q);
            assert!(b.value.is_finite(), "{:?} connector", q);
        }
    }

    #[test]
    fn q1_only_on_prov() {
        assert!(QueryId::Q1.applies_to(Dataset::Prov));
        assert!(!QueryId::Q1.applies_to(Dataset::Dblp));
        assert!(QueryId::Q2.applies_to(Dataset::Dblp));
    }

    #[test]
    fn q1_filter_and_connector_agree() {
        // Listing 1 over the filter graph and Listing 4 over the
        // connector view are equivalent rewritings (§V-C)
        let env = tiny_env(Dataset::Prov);
        let a = run(&env, QueryId::Q1, false);
        let b = run(&env, QueryId::Q1, true);
        assert_eq!(a.rows, b.rows);
        assert!(
            (a.value - b.value).abs() < 1e-6,
            "{} vs {}",
            a.value,
            b.value
        );
    }

    #[test]
    fn q3_counts_agree_between_variants() {
        // 4 raw hops forward from a job = 2 connector hops, but raw
        // counts include files; compare jobs-only reachability instead:
        // descendants on connector are a subset count — just check both
        // run and connector finds at least the job-to-job pairs
        let env = tiny_env(Dataset::Prov);
        let filter = run(&env, QueryId::Q3, false);
        let conn = run(&env, QueryId::Q3, true);
        assert!(filter.rows >= conn.rows);
        assert!(conn.rows > 0);
    }

    #[test]
    fn q5_q6_unchanged_semantics() {
        let env = tiny_env(Dataset::Prov);
        let q5 = run(&env, QueryId::Q5, false);
        assert_eq!(q5.value, env.filtered.edge_count() as f64);
        let q6c = run(&env, QueryId::Q6, true);
        assert_eq!(q6c.value, env.connector.vertex_count() as f64);
    }

    #[test]
    fn q8_members_are_anchor_heavy() {
        let env = tiny_env(Dataset::Dblp);
        let out = run(&env, QueryId::Q8, false);
        assert!(out.rows > 0);
    }

    #[test]
    fn workload_runs_on_homogeneous_datasets() {
        let env = tiny_env(Dataset::RoadnetUsa);
        for q in [QueryId::Q2, QueryId::Q4, QueryId::Q7] {
            let out = run(&env, q, false);
            assert!(out.value >= 0.0);
        }
    }
}
