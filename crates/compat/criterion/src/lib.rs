//! Offline drop-in shim for the subset of the `criterion` API used by
//! this workspace (see `crates/compat/README.md`).
//!
//! Each benchmark is timed with a short warm-up followed by a batch of
//! wall-clock samples; the median per-iteration time is printed as one
//! line. There is no statistical analysis, HTML report, or baseline
//! comparison — the goal is that `cargo bench` produces meaningful
//! numbers offline with zero dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark, optionally parameterized
/// (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `routine`, printing the median per-iteration wall-clock
    /// time over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that makes a
        // single sample take a measurable amount of time.
        let mut iters_per_sample = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            per_iter.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("time is never NaN"));
        let median = per_iter[per_iter.len() / 2];
        self.report(median);
    }

    fn report(&mut self, median_secs: f64) {
        let formatted = if median_secs >= 1.0 {
            format!("{median_secs:.3} s")
        } else if median_secs >= 1e-3 {
            format!("{:.3} ms", median_secs * 1e3)
        } else if median_secs >= 1e-6 {
            format!("{:.3} µs", median_secs * 1e6)
        } else {
            format!("{:.1} ns", median_secs * 1e9)
        };
        println!("median {formatted} ({} samples)", self.samples);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id` within this group. Benchmarks
    /// whose full name does not contain the command-line filter (the
    /// first free argument, as with `cargo bench -- <filter>`) are
    /// skipped.
    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_name = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return self;
            }
        }
        print!("{full_name}: ");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        let mut bencher = Bencher {
            samples: self.sample_size,
        };
        routine(&mut bencher);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {
        self.criterion.groups_finished += 1;
    }
}

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    groups_finished: usize,
    filter: Option<String>,
}

impl Criterion {
    /// Picks up the benchmark-name filter from the command line: the
    /// first argument that is not a flag, matching `cargo bench -- <filter>`.
    pub fn configured_from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            groups_finished: 0,
            filter,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, routine);
        self
    }
}

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub use std::hint::black_box;

/// Declares a benchmark group function running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::configured_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function for a benchmark binary.
///
/// When the harness is invoked by `cargo test` (bench targets are built
/// with `--test`), the benchmarks are skipped so test runs stay fast;
/// `cargo bench` runs them fully.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
