//! Offline drop-in shim for the subset of the `proptest` API used by
//! this workspace (see `crates/compat/README.md`).
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`], the [`Strategy`] trait
//! with [`Strategy::prop_map`], strategies for integer ranges, tuples,
//! simple regex string patterns, [`collection::vec`], and
//! [`any::<T>()`](any).
//!
//! Inputs are generated from a deterministic per-test RNG, so failures
//! are reproducible run-to-run. Unlike real proptest there is **no
//! shrinking**: a failing case panics, and the failing case index is
//! printed so the inputs can be regenerated deterministically from
//! `(test name, case index)`.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`
    /// (typically the test function's name) and `case` index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let m = (self.next_u64() as u128) * (span as u128);
        (m >> 64) as u64
    }
}

/// Run-time configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// `&str` strategies interpret the string as a regex over a small
/// subset: literal characters, `[...]` character classes with ranges,
/// and `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers (`*`/`+` capped at
/// 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = regex_lite::parse(self);
        regex_lite::generate(&pattern, rng)
    }
}

mod regex_lite {
    use super::TestRng;

    pub enum Element {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    pub struct Piece {
        pub element: Element,
        pub min: u32,
        pub max: u32,
    }

    pub fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let element = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            match chars.peek() {
                                Some(']') | None => {
                                    ranges.push((lo, lo));
                                    ranges.push(('-', '-'));
                                }
                                Some(&hi) => {
                                    chars.next();
                                    ranges.push((lo, hi));
                                }
                            }
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Element::Class(ranges)
                }
                '\\' => Element::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                ),
                c => Element::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => {
                            let min = m.trim().parse().expect("bad {m,n} quantifier");
                            let max = n.trim().parse().expect("bad {m,n} quantifier");
                            (min, max)
                        }
                        None => {
                            let n = spec.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { element, min, max });
        }
        pieces
    }

    pub fn generate(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let span = u64::from(piece.max - piece.min) + 1;
            let count = piece.min + rng.below(span) as u32;
            for _ in 0..count {
                match &piece.element {
                    Element::Literal(c) => out.push(*c),
                    Element::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                            .sum();
                        let mut pick = rng.below(total.max(1));
                        for &(lo, hi) in ranges {
                            let width = hi as u64 - lo as u64 + 1;
                            if pick < width {
                                out.push(
                                    char::from_u32(lo as u32 + pick as u32)
                                        .expect("class range spans invalid codepoint"),
                                );
                                break;
                            }
                            pick -= width;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Reports the failing case index when a property-test body panics.
///
/// Used by the [`proptest!`] expansion: inputs are regenerated
/// deterministically from `(test name, case index)`, so the index in
/// the failure output is enough to reproduce the failing inputs.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    /// Arms a guard for one generated case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at case {}; inputs regenerate \
                 deterministically from TestRng::deterministic({:?}, {})",
                self.name, self.case, self.name, self.case
            );
        }
    }
}

/// Everything a `proptest!` test body typically needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let guard = $crate::CaseGuard::new(stringify!($name), case);
                    let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut rng);
                    )+
                    $body
                    drop(guard);
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}
