//! Offline drop-in shim for the subset of the `rand` 0.9 API used by
//! this workspace (see `crates/compat/README.md`).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded via SplitMix64:
//! deterministic per seed, statistically solid for the generators and
//! tests in this repository, but not bit-compatible with the real
//! `StdRng` (ChaCha12).

#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::{Rng, SeedableRng};

    /// The workspace's standard seedable RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation: the user-facing sampling surface.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        self.random::<f64>() < p
    }
}

/// Uniform sampling over a 64-bit span without modulo bias
/// (Lemire's multiply-shift with rejection).
fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types sampleable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::random_range`], producing `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.23..0.27).contains(&frac), "frac={frac}");
    }

    #[test]
    fn uniform_covers_small_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
