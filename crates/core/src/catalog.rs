//! The catalog of materialized views.

use std::fmt;

use kaskade_graph::{Graph, GraphStats};

use crate::views::ViewDef;

/// A typed handle to a materialized view: the view's stable position in
/// the [`Catalog`]. Plans, the refresh DAG, and shard routing reference
/// views through `ViewId` instead of display strings — positions are
/// stable because the serving write path never changes the view *set*
/// ([`crate::Snapshot::with_delta`] refreshes every entry in place) and
/// compaction carries the catalog over verbatim. The human-readable
/// name is still [`ViewDef::id`]; resolve one to the other with
/// [`Catalog::lookup`] / [`Catalog::get_by_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u32);

impl ViewId {
    /// The catalog index this id denotes.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

/// A materialized view: its definition, the physical graph, and the
/// statistics the cost model needs when costing rewritten queries.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The view definition.
    pub def: ViewDef,
    /// The physical view graph.
    pub graph: Graph,
    /// Statistics of the view graph.
    pub stats: GraphStats,
}

impl MaterializedView {
    /// Wraps a freshly materialized graph.
    pub fn new(def: ViewDef, graph: Graph) -> Self {
        let stats = GraphStats::compute(&graph);
        MaterializedView { def, graph, stats }
    }

    /// Size in edges (the budget unit of §V-B).
    pub fn size_edges(&self) -> usize {
        self.graph.edge_count()
    }
}

/// All currently materialized views.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    views: Vec<MaterializedView>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a view. A view with the same definition id is replaced **in
    /// place**, keeping its [`ViewId`] (catalog position) stable for
    /// cached plans and DAG edges.
    pub fn add(&mut self, view: MaterializedView) {
        let id = view.def.id();
        match self.views.iter().position(|v| v.def.id() == id) {
            Some(i) => self.views[i] = view,
            None => self.views.push(view),
        }
    }

    /// Looks up a view by its definition id.
    pub fn get(&self, id: &str) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.def.id() == id)
    }

    /// Looks up a view by its typed handle.
    pub fn get_by_id(&self, id: ViewId) -> Option<&MaterializedView> {
        self.views.get(id.index())
    }

    /// Resolves a definition id to its typed handle and view.
    pub fn lookup(&self, id: &str) -> Option<(ViewId, &MaterializedView)> {
        self.views
            .iter()
            .position(|v| v.def.id() == id)
            .map(|i| (ViewId(i as u32), &self.views[i]))
    }

    /// Iterates over all views with their typed handles.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (ViewId, &MaterializedView)> {
        self.views
            .iter()
            .enumerate()
            .map(|(i, v)| (ViewId(i as u32), v))
    }

    /// Iterates over all materialized views.
    pub fn iter(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.iter()
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Total size of all materialized views, in edges.
    pub fn total_edges(&self) -> usize {
        self.views.iter().map(MaterializedView::size_edges).sum()
    }

    /// Removes a view by id, returning whether it existed.
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.views.len();
        self.views.retain(|v| v.def.id() != id);
        self.views.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use crate::views::{ConnectorDef, ViewDef};
    use kaskade_graph::GraphBuilder;

    fn toy_view() -> MaterializedView {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.add_edge(j1, f, "WRITES_TO");
        b.add_edge(f, j2, "IS_READ_BY");
        let g = b.finish();
        let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let graph = materialize(&g, &def);
        MaterializedView::new(def, graph)
    }

    #[test]
    fn add_get_remove() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let v = toy_view();
        let id = v.def.id();
        c.add(v);
        assert_eq!(c.len(), 1);
        assert!(c.get(&id).is_some());
        assert!(c.get("nope").is_none());
        assert!(c.remove(&id));
        assert!(!c.remove(&id));
        assert!(c.is_empty());
    }

    #[test]
    fn add_replaces_same_id() {
        let mut c = Catalog::new();
        c.add(toy_view());
        c.add(toy_view());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn view_ids_are_stable_positions() {
        let mut c = Catalog::new();
        let v = toy_view();
        let name = v.def.id();
        c.add(v);
        let other = MaterializedView::new(
            ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4)),
            GraphBuilder::new().finish(),
        );
        c.add(other);
        let (id, _) = c.lookup(&name).unwrap();
        assert_eq!(id, ViewId(0));
        assert_eq!(id.to_string(), "view#0");
        // replacing in place keeps the position
        c.add(toy_view());
        assert_eq!(c.lookup(&name).unwrap().0, ViewId(0));
        assert!(c.get_by_id(ViewId(1)).unwrap().def.id().contains("4_HOP"));
        assert!(c.get_by_id(ViewId(9)).is_none());
        assert_eq!(c.iter_with_ids().count(), 2);
    }

    #[test]
    fn total_edges_sums_views() {
        let mut c = Catalog::new();
        let v = toy_view();
        let e = v.size_edges();
        assert_eq!(e, 1); // one job-to-job connector edge
        c.add(v);
        assert_eq!(c.total_edges(), 1);
    }

    #[test]
    fn stats_computed_on_materialization() {
        let v = toy_view();
        assert_eq!(v.stats.edge_count, 1);
        assert_eq!(v.stats.for_type("Job").unwrap().cardinality, 2);
    }
}
