//! The catalog of materialized views.

use std::fmt;

use kaskade_graph::{Graph, GraphStats};

use crate::views::ViewDef;

/// A typed handle to a materialized view: the view's stable slot in
/// the [`Catalog`]. Plans, the refresh DAG, and shard routing reference
/// views through `ViewId` instead of display strings — slots are
/// stable because the serving write path refreshes entries in place
/// ([`crate::Snapshot::with_delta`]), compaction carries the catalog
/// over verbatim, and dropping a view **tombstones** its slot instead
/// of shifting its successors: a `ViewId` is never reused for a
/// different view, so a stale handle resolves to `None` rather than to
/// an unrelated view. The human-readable name is still [`ViewDef::id`];
/// resolve one to the other with [`Catalog::lookup`] /
/// [`Catalog::get_by_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u32);

impl ViewId {
    /// The catalog slot index this id denotes.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

/// A live catalog-mutation operation (DDL): create a view from its
/// definition, or drop one by its typed handle. The serving runtime
/// queues these through the same write path as deltas, publishes each
/// as its own epoch, and logs them to the WAL (`KIND_DDL`) so recovery
/// replays catalog changes in epoch order.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlOp {
    /// Materialize `ViewDef` over the base graph and register it.
    CreateView(ViewDef),
    /// Tombstone the slot of an existing view (stale handles miss; the
    /// slot is never reused).
    DropView(ViewId),
}

/// A materialized view: its definition, the physical graph, and the
/// statistics the cost model needs when costing rewritten queries.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The view definition.
    pub def: ViewDef,
    /// The physical view graph.
    pub graph: Graph,
    /// Statistics of the view graph.
    pub stats: GraphStats,
}

impl MaterializedView {
    /// Wraps a freshly materialized graph.
    pub fn new(def: ViewDef, graph: Graph) -> Self {
        let stats = GraphStats::compute(&graph);
        MaterializedView { def, graph, stats }
    }

    /// Size in edges (the budget unit of §V-B).
    pub fn size_edges(&self) -> usize {
        self.graph.edge_count()
    }
}

/// All currently materialized views, in tombstoned slots: dropping a
/// view leaves a `None` hole so every surviving [`ViewId`] keeps
/// meaning the same view forever.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    views: Vec<Option<MaterializedView>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a view. A live view with the same definition id is replaced
    /// **in place**, keeping its [`ViewId`] (catalog slot) stable for
    /// cached plans and DAG edges; otherwise a fresh slot is appended —
    /// tombstoned slots are never reused, so re-creating a dropped view
    /// mints a new `ViewId`.
    pub fn add(&mut self, view: MaterializedView) {
        let id = view.def.id();
        match self
            .views
            .iter()
            .position(|v| v.as_ref().is_some_and(|v| v.def.id() == id))
        {
            Some(i) => self.views[i] = Some(view),
            None => self.views.push(Some(view)),
        }
    }

    /// Looks up a view by its definition id.
    pub fn get(&self, id: &str) -> Option<&MaterializedView> {
        self.iter().find(|v| v.def.id() == id)
    }

    /// Looks up a view by its typed handle. A dropped (tombstoned) or
    /// out-of-range slot resolves to `None`.
    pub fn get_by_id(&self, id: ViewId) -> Option<&MaterializedView> {
        self.views.get(id.index()).and_then(Option::as_ref)
    }

    /// Resolves a definition id to its typed handle and view.
    pub fn lookup(&self, id: &str) -> Option<(ViewId, &MaterializedView)> {
        self.iter_with_ids().find(|(_, v)| v.def.id() == id)
    }

    /// Iterates over all live views with their typed handles (true slot
    /// indices — with tombstones present these are not contiguous).
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (ViewId, &MaterializedView)> {
        self.views
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ViewId(i as u32), v)))
    }

    /// Iterates over all live materialized views.
    pub fn iter(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.iter().filter_map(Option::as_ref)
    }

    /// Number of live materialized views.
    pub fn len(&self) -> usize {
        self.views.iter().filter(|v| v.is_some()).count()
    }

    /// Whether the catalog holds no live views.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of all live materialized views, in edges.
    pub fn total_edges(&self) -> usize {
        self.iter().map(MaterializedView::size_edges).sum()
    }

    /// Tombstones the slot of view `id`, returning whether a live view
    /// was there. The slot stays allocated forever: later
    /// [`Catalog::get_by_id`] calls miss instead of resolving the id to
    /// a different view.
    pub fn drop_view(&mut self, id: ViewId) -> bool {
        match self.views.get_mut(id.index()) {
            Some(slot) => slot.take().is_some(),
            None => false,
        }
    }

    /// Replaces the live view in slot `id` (used by the refresh DAG to
    /// swap in a refreshed graph without disturbing slot layout).
    ///
    /// # Panics
    /// Panics if the slot is tombstoned or out of range — callers
    /// replace only ids they just iterated from this catalog.
    pub fn replace(&mut self, id: ViewId, view: MaterializedView) {
        let slot = self
            .views
            .get_mut(id.index())
            .expect("replace of an out-of-range catalog slot");
        assert!(slot.is_some(), "replace of a tombstoned catalog slot");
        *slot = Some(view);
    }

    /// Number of slots ever allocated, tombstones included (the
    /// exclusive upper bound of live `ViewId`s).
    pub fn slot_count(&self) -> usize {
        self.views.len()
    }

    /// Iterates every slot in order, tombstones as `None` — the
    /// checkpoint codec serializes this layout so `ViewId`s survive
    /// restarts.
    pub fn slots(&self) -> impl Iterator<Item = Option<&MaterializedView>> {
        self.views.iter().map(Option::as_ref)
    }

    /// Appends a slot verbatim (live or tombstoned) — the checkpoint
    /// codec's decode primitive.
    pub(crate) fn push_slot(&mut self, slot: Option<MaterializedView>) {
        self.views.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use crate::views::{ConnectorDef, ViewDef};
    use kaskade_graph::GraphBuilder;

    fn toy_view() -> MaterializedView {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.add_edge(j1, f, "WRITES_TO");
        b.add_edge(f, j2, "IS_READ_BY");
        let g = b.finish();
        let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let graph = materialize(&g, &def);
        MaterializedView::new(def, graph)
    }

    #[test]
    fn add_get_drop() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let v = toy_view();
        let id = v.def.id();
        c.add(v);
        assert_eq!(c.len(), 1);
        assert!(c.get(&id).is_some());
        assert!(c.get("nope").is_none());
        let (vid, _) = c.lookup(&id).unwrap();
        assert!(c.drop_view(vid));
        assert!(!c.drop_view(vid), "second drop of the same slot misses");
        assert!(c.is_empty());
        assert!(c.get(&id).is_none());
    }

    #[test]
    fn add_replaces_same_id() {
        let mut c = Catalog::new();
        c.add(toy_view());
        c.add(toy_view());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn view_ids_are_stable_positions() {
        let mut c = Catalog::new();
        let v = toy_view();
        let name = v.def.id();
        c.add(v);
        let other = MaterializedView::new(
            ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4)),
            GraphBuilder::new().finish(),
        );
        c.add(other);
        let (id, _) = c.lookup(&name).unwrap();
        assert_eq!(id, ViewId(0));
        assert_eq!(id.to_string(), "view#0");
        // replacing in place keeps the position
        c.add(toy_view());
        assert_eq!(c.lookup(&name).unwrap().0, ViewId(0));
        assert!(c.get_by_id(ViewId(1)).unwrap().def.id().contains("4_HOP"));
        assert!(c.get_by_id(ViewId(9)).is_none());
        assert_eq!(c.iter_with_ids().count(), 2);
    }

    #[test]
    fn dropped_slots_are_never_reused() {
        let mut c = Catalog::new();
        let v = toy_view();
        let name = v.def.id();
        c.add(v);
        let other = MaterializedView::new(
            ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4)),
            GraphBuilder::new().finish(),
        );
        c.add(other);
        assert!(c.drop_view(ViewId(0)));
        // the survivor keeps its original slot
        assert_eq!(c.len(), 1);
        assert!(c.get_by_id(ViewId(0)).is_none());
        assert!(c.get_by_id(ViewId(1)).is_some());
        // re-creating the dropped view mints a NEW id past the tombstone
        c.add(toy_view());
        let (vid, _) = c.lookup(&name).unwrap();
        assert_eq!(vid, ViewId(2));
        assert_eq!(c.slot_count(), 3);
        assert_eq!(c.len(), 2);
        // slots() exposes the tombstone for the checkpoint codec
        let live: Vec<bool> = c.slots().map(|s| s.is_some()).collect();
        assert_eq!(live, vec![false, true, true]);
        // iter_with_ids yields true slot indices, skipping the hole
        let ids: Vec<ViewId> = c.iter_with_ids().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ViewId(1), ViewId(2)]);
    }

    #[test]
    fn replace_keeps_slot_and_panics_on_tombstone() {
        let mut c = Catalog::new();
        c.add(toy_view());
        c.replace(ViewId(0), toy_view());
        assert_eq!(c.len(), 1);
        c.drop_view(ViewId(0));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.replace(ViewId(0), toy_view())
        }));
        assert!(r.is_err(), "replacing a tombstone must panic");
    }

    #[test]
    fn total_edges_sums_views() {
        let mut c = Catalog::new();
        let v = toy_view();
        let e = v.size_edges();
        assert_eq!(e, 1); // one job-to-job connector edge
        c.add(v);
        assert_eq!(c.total_edges(), 1);
    }

    #[test]
    fn stats_computed_on_materialization() {
        let v = toy_view();
        assert_eq!(v.stats.edge_count, 1);
        assert_eq!(v.stats.for_type("Job").unwrap().cardinality, 2);
    }
}
