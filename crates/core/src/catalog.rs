//! The catalog of materialized views.

use kaskade_graph::{Graph, GraphStats};

use crate::views::ViewDef;

/// A materialized view: its definition, the physical graph, and the
/// statistics the cost model needs when costing rewritten queries.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The view definition.
    pub def: ViewDef,
    /// The physical view graph.
    pub graph: Graph,
    /// Statistics of the view graph.
    pub stats: GraphStats,
}

impl MaterializedView {
    /// Wraps a freshly materialized graph.
    pub fn new(def: ViewDef, graph: Graph) -> Self {
        let stats = GraphStats::compute(&graph);
        MaterializedView { def, graph, stats }
    }

    /// Size in edges (the budget unit of §V-B).
    pub fn size_edges(&self) -> usize {
        self.graph.edge_count()
    }
}

/// All currently materialized views.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    views: Vec<MaterializedView>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a view, replacing any previous view with the same id.
    pub fn add(&mut self, view: MaterializedView) {
        let id = view.def.id();
        self.views.retain(|v| v.def.id() != id);
        self.views.push(view);
    }

    /// Looks up a view by its definition id.
    pub fn get(&self, id: &str) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.def.id() == id)
    }

    /// Iterates over all materialized views.
    pub fn iter(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.iter()
    }

    /// Number of materialized views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Total size of all materialized views, in edges.
    pub fn total_edges(&self) -> usize {
        self.views.iter().map(MaterializedView::size_edges).sum()
    }

    /// Removes a view by id, returning whether it existed.
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.views.len();
        self.views.retain(|v| v.def.id() != id);
        self.views.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize;
    use crate::views::{ConnectorDef, ViewDef};
    use kaskade_graph::GraphBuilder;

    fn toy_view() -> MaterializedView {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.add_edge(j1, f, "WRITES_TO");
        b.add_edge(f, j2, "IS_READ_BY");
        let g = b.finish();
        let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let graph = materialize(&g, &def);
        MaterializedView::new(def, graph)
    }

    #[test]
    fn add_get_remove() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let v = toy_view();
        let id = v.def.id();
        c.add(v);
        assert_eq!(c.len(), 1);
        assert!(c.get(&id).is_some());
        assert!(c.get("nope").is_none());
        assert!(c.remove(&id));
        assert!(!c.remove(&id));
        assert!(c.is_empty());
    }

    #[test]
    fn add_replaces_same_id() {
        let mut c = Catalog::new();
        c.add(toy_view());
        c.add(toy_view());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn total_edges_sums_views() {
        let mut c = Catalog::new();
        let v = toy_view();
        let e = v.size_edges();
        assert_eq!(e, 1); // one job-to-job connector edge
        c.add(v);
        assert_eq!(c.total_edges(), 1);
    }

    #[test]
    fn stats_computed_on_materialization() {
        let v = toy_view();
        assert_eq!(v.stats.edge_count, 1);
        assert_eq!(v.stats.for_type("Job").unwrap().cardinality, 2);
    }
}
