//! View size estimation and the view cost model (§V-A).
//!
//! Three estimators for the number of k-length paths (= edges of a
//! k-hop connector before deduplication):
//!
//! * [`erdos_renyi_estimate`] — Eq. (1), the uniform-random-graph
//!   baseline the paper rejects (it underestimates real graphs by
//!   orders of magnitude because degrees are not uniform);
//! * [`homogeneous_estimate`] — Eq. (2), `n · deg_α^k` using the α-th
//!   percentile out-degree;
//! * [`heterogeneous_estimate`] — Eq. (3), `Σ_t n_t · deg_α(t)^k` over
//!   vertex types `t` that are edge sources.
//!
//! [`estimate_view_size`] routes a [`ViewDef`] to the right estimator;
//! [`creation_cost`] is proportional to the estimate (I/O dominates,
//! §V-A); [`synthetic_view_stats`] fabricates the [`GraphStats`] a
//! rewritten query would see, so the selector can cost rewritings
//! against views that are not materialized yet.

use kaskade_graph::{DegreeSummary, Graph, GraphStats, Schema};
use kaskade_query::{GraphPattern, Query};

use crate::views::{ConnectorDef, SummarizerDef, ViewDef};

/// Eq. (1): expected number of k-length simple paths in an
/// Erdős–Rényi graph with `n` vertices and `m` edges:
/// `C(n, k+1) · (m / C(n,2))^k`.
///
/// Kept as the baseline the paper compares against; it drastically
/// underestimates real-world graphs.
pub fn erdos_renyi_estimate(n: usize, m: usize, k: usize) -> f64 {
    if n < k + 1 || n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    // C(n, k+1) computed incrementally in log space to avoid overflow
    let mut ln_choose = 0.0f64;
    for i in 0..(k + 1) {
        ln_choose += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    let pairs = nf * (nf - 1.0) / 2.0;
    let p = (m as f64 / pairs).max(f64::MIN_POSITIVE);
    (ln_choose + k as f64 * p.ln()).exp()
}

/// Eq. (2): `n · deg_α^k` for a homogeneous graph.
pub fn homogeneous_estimate(stats: &GraphStats, k: usize, alpha: u8) -> f64 {
    let n = stats.vertex_count as f64;
    let deg = stats.overall.degree_at(alpha) as f64;
    n * deg.powi(k as i32)
}

/// Eq. (3): `Σ_t n_t · deg_α(t)^k` over vertex types that are edge
/// sources in the schema.
pub fn heterogeneous_estimate(stats: &GraphStats, schema: &Schema, k: usize, alpha: u8) -> f64 {
    schema
        .source_types()
        .iter()
        .filter_map(|t| stats.for_type(t))
        .map(|s| s.cardinality as f64 * (s.degree_at(alpha) as f64).powi(k as i32))
        .sum()
}

/// Auto-routing version of Eq. (2)/(3): heterogeneous graphs (more than
/// one vertex type) use Eq. (3), homogeneous ones Eq. (2).
pub fn path_count_estimate(stats: &GraphStats, schema: &Schema, k: usize, alpha: u8) -> f64 {
    if stats.type_count() > 1 {
        heterogeneous_estimate(stats, schema, k, alpha)
    } else {
        homogeneous_estimate(stats, k, alpha)
    }
}

/// Estimated size (in edges) of a specific view.
///
/// Connectors use the per-source-type form of Eq. (3): `n_src ·
/// deg_α(src)^k`. Summarizers are estimated from the exact per-type
/// counts the graph already maintains (the paper defers these to
/// standard relational selectivity estimation, which is exact for
/// type-level predicates).
pub fn estimate_view_size(g: &Graph, stats: &GraphStats, def: &ViewDef, alpha: u8) -> f64 {
    match def {
        ViewDef::Connector(c) => connector_size_estimate(stats, c, alpha),
        // sources × sinks upper-bounds source-to-sink pair count
        ViewDef::SourceSink(_) => {
            let sources = g.vertices().filter(|&v| g.in_degree(v) == 0).count();
            let sinks = g.vertices().filter(|&v| g.out_degree(v) == 0).count();
            (sources * sinks) as f64
        }
        ViewDef::Summarizer(s) => summarizer_size(g, s),
        // the summarizer only shrinks the connector's output
        ViewDef::Composed(c) => connector_size_estimate(stats, &c.connector, alpha),
    }
}

/// `n_src · deg_α(src)^k` — the Eq. (3) term for the connector's source
/// type.
pub fn connector_size_estimate(stats: &GraphStats, def: &ConnectorDef, alpha: u8) -> f64 {
    match stats.for_type(&def.src_type) {
        Some(s) => s.cardinality as f64 * (s.degree_at(alpha) as f64).powi(def.k as i32),
        None => 0.0,
    }
}

/// Exact edge count a summarizer view would have (type-level filters
/// are computable without materialization).
pub fn summarizer_size(g: &Graph, def: &SummarizerDef) -> f64 {
    let keep_vertex = |t: &str| -> bool {
        match def {
            SummarizerDef::VertexInclusion { keep } => keep.iter().any(|k| k == t),
            SummarizerDef::VertexRemoval { remove } => !remove.iter().any(|k| k == t),
            _ => true,
        }
    };
    let keep_edge = |t: &str| -> bool {
        match def {
            SummarizerDef::EdgeRemoval { remove } => !remove.iter().any(|k| k == t),
            SummarizerDef::EdgeInclusion { keep } => keep.iter().any(|k| k == t),
            _ => true,
        }
    };
    let mut count = 0usize;
    for e in g.edges() {
        if keep_edge(g.edge_type(e))
            && keep_vertex(g.vertex_type(g.edge_src(e)))
            && keep_vertex(g.vertex_type(g.edge_dst(e)))
        {
            count += 1;
        }
    }
    count as f64
}

/// View creation cost: I/O-dominated, hence directly proportional to
/// the estimated materialized size (§V-A).
pub fn creation_cost(estimated_edges: f64) -> f64 {
    estimated_edges.max(1.0)
}

/// Total worst-case hops a pattern traverses: variable-length edges
/// contribute their upper bound, fixed edges one hop each.
pub fn pattern_hops(pattern: &GraphPattern) -> usize {
    pattern
        .edges
        .iter()
        .map(|e| e.hops.map_or(1, |(_, hi)| hi))
        .sum()
}

/// Traversal-oriented evaluation cost proxy: `edges × hops`.
///
/// The effective data a traversal query touches scales with the size of
/// the graph it runs on and the number of hops it expands — the two
/// levers the paper's views pull (summarizers shrink `edges`,
/// connectors halve `hops` while changing `edges` to the view size).
/// Comparing `EvalCost(q, raw)` against `EvalCost(q', view)` under this
/// proxy reproduces the paper's qualitative selection behaviour,
/// including *not* materializing 2-hop connectors on homogeneous
/// power-law graphs where the view is larger than the input (§VII-F).
pub fn traversal_cost(edge_count: f64, query: &Query) -> f64 {
    let hops = query.pattern().map_or(1, pattern_hops).max(1);
    edge_count.max(1.0) * hops as f64
}

/// Fabricates the statistics of a connector view from its estimate so
/// [`kaskade_query::CostModel`] can cost a rewritten query before the
/// view exists. The view has `n_src + n_dst` vertices and an estimated
/// `est` edges distributed over source-type vertices.
pub fn synthetic_view_stats(stats: &GraphStats, def: &ConnectorDef, alpha: u8) -> GraphStats {
    let n_src = stats.for_type(&def.src_type).map_or(0, |s| s.cardinality);
    let n_dst = if def.is_same_vertex_type() {
        0
    } else {
        stats.for_type(&def.dst_type).map_or(0, |s| s.cardinality)
    };
    let est = connector_size_estimate(stats, def, alpha);
    let mean = if n_src == 0 { 0.0 } else { est / n_src as f64 };
    let deg = mean.round() as usize;
    let summary = |card: usize, d: usize| DegreeSummary {
        cardinality: card,
        p50: d,
        p90: d,
        p95: d,
        max: d,
        mean: d as f64,
    };
    let mut per_type = vec![(def.src_type.clone(), summary(n_src, deg))];
    if n_dst > 0 {
        per_type.push((def.dst_type.clone(), summary(n_dst, 0)));
    }
    GraphStats::from_parts(
        per_type,
        n_src + n_dst,
        est as usize,
        summary(n_src + n_dst, deg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::GraphBuilder;

    fn hetero_graph() -> Graph {
        // 3 jobs each writing 4 files; each file read by 1 job
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            let j = b.add_vertex("Job");
            for _ in 0..4 {
                let f = b.add_vertex("File");
                b.add_edge(j, f, "WRITES_TO");
                let r = b.add_vertex("Job");
                b.add_edge(f, r, "IS_READ_BY");
            }
        }
        b.finish()
    }

    #[test]
    fn erdos_renyi_matches_closed_form_small() {
        // n=4, m=3, k=1: C(4,2) * (3/6)^1 = 6 * 0.5 = 3
        let e = erdos_renyi_estimate(4, 3, 1);
        assert!((e - 3.0).abs() < 1e-9, "e={e}");
        // degenerate cases
        assert_eq!(erdos_renyi_estimate(1, 0, 2), 0.0);
        assert_eq!(erdos_renyi_estimate(3, 3, 5), 0.0);
    }

    #[test]
    fn erdos_renyi_underestimates_skewed_graphs() {
        // a "bowtie" hub: 50 sources -> hub -> 50 targets has 2500
        // directed 2-length paths; ER at n=101, m=100 expects ~65 —
        // the orders-of-magnitude underestimate §V-A describes
        let n = 101;
        let m = 100;
        let actual_2_paths = 2500.0;
        let er = erdos_renyi_estimate(n, m, 2);
        assert!(er < actual_2_paths / 10.0, "er={er}");
    }

    #[test]
    fn homogeneous_estimate_formula() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4).map(|_| b.add_vertex("V")).collect();
        // ring: every vertex out-degree 1
        for i in 0..4 {
            b.add_edge(vs[i], vs[(i + 1) % 4], "E");
        }
        let stats = GraphStats::compute(&b.finish());
        // n=4, deg=1 at any alpha => 4 * 1^k = 4
        assert_eq!(homogeneous_estimate(&stats, 2, 50), 4.0);
        assert_eq!(homogeneous_estimate(&stats, 5, 95), 4.0);
    }

    #[test]
    fn heterogeneous_estimate_sums_source_types() {
        let g = hetero_graph();
        let stats = GraphStats::compute(&g);
        let schema = Schema::provenance();
        // Jobs: 15 total (3 writers deg 4, 12 readers deg 0) → p95 deg 4
        // Files: 12, deg 1
        let est = heterogeneous_estimate(&stats, &schema, 2, 95);
        let jobs = stats.for_type("Job").unwrap();
        let files = stats.for_type("File").unwrap();
        let expect = jobs.cardinality as f64 * (jobs.degree_at(95) as f64).powi(2)
            + files.cardinality as f64 * (files.degree_at(95) as f64).powi(2);
        assert_eq!(est, expect);
    }

    #[test]
    fn path_count_routes_by_type_count() {
        let g = hetero_graph();
        let stats = GraphStats::compute(&g);
        let schema = Schema::provenance();
        assert_eq!(
            path_count_estimate(&stats, &schema, 2, 95),
            heterogeneous_estimate(&stats, &schema, 2, 95)
        );
    }

    #[test]
    fn alpha_monotonicity() {
        let g = hetero_graph();
        let stats = GraphStats::compute(&g);
        let schema = Schema::provenance();
        let e50 = heterogeneous_estimate(&stats, &schema, 2, 50);
        let e95 = heterogeneous_estimate(&stats, &schema, 2, 95);
        let e100 = heterogeneous_estimate(&stats, &schema, 2, 100);
        assert!(e50 <= e95 && e95 <= e100);
    }

    #[test]
    fn alpha_100_upper_bounds_actual_connector() {
        // the α=100 estimator upper-bounds the number of k-length paths,
        // which upper-bounds deduplicated connector edges
        let g = hetero_graph();
        let stats = GraphStats::compute(&g);
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let est = connector_size_estimate(&stats, &def, 100);
        let actual = crate::materialize::connector_view(&g, &def).edge_count();
        assert!(est >= actual as f64, "est={est} actual={actual}");
    }

    #[test]
    fn summarizer_size_matches_materialization() {
        let g = hetero_graph();
        let s = SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        };
        let est = summarizer_size(&g, &s);
        let actual = crate::materialize::summarizer_view(&g, &s).edge_count();
        assert_eq!(est, actual as f64);
    }

    #[test]
    fn creation_cost_proportional_and_positive() {
        assert_eq!(creation_cost(100.0), 100.0);
        assert_eq!(creation_cost(0.0), 1.0);
    }

    #[test]
    fn synthetic_stats_shape() {
        let g = hetero_graph();
        let stats = GraphStats::compute(&g);
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let syn = synthetic_view_stats(&stats, &def, 95);
        assert_eq!(
            syn.for_type("Job").unwrap().cardinality,
            stats.for_type("Job").unwrap().cardinality
        );
        assert!(syn.edge_count > 0);
    }
}
