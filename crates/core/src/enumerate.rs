//! Constraint-based view enumeration (§IV).
//!
//! Given a query and a graph schema, mines explicit constraints (facts,
//! [`crate::facts`]), injects the constraint mining rules and view
//! templates ([`crate::rules`]), and evaluates each template on the
//! inference engine. The output is a set of instantiated view
//! candidates, later lowered to [`ViewDef`]s for selection and
//! rewriting.
//!
//! [`procedural`] contains the transcription of the paper's Alg. 1 —
//! the procedural baseline that enumerates schema k-hop paths without
//! query constraints — used by the enumeration ablation benchmark.

use std::collections::BTreeSet;

use kaskade_graph::Schema;
use kaskade_prolog::{PrologError, Solution};
use kaskade_query::Query;

use crate::facts::database_for;
use crate::views::{ConnectorDef, SummarizerDef, ViewDef};

/// An instantiated view template (a unification the inference engine
/// found). Candidates carry the query variables they bind so the
/// rewriter can locate the pattern fragment they cover.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Candidate {
    /// `kHopConnector(X, Y, XTYPE, YTYPE, K)`.
    KHopConnector {
        /// Query variable at the path source.
        x: String,
        /// Query variable at the path destination.
        y: String,
        /// Vertex type of `x`.
        src_type: String,
        /// Vertex type of `y`.
        dst_type: String,
        /// Contracted path length.
        k: usize,
    },
    /// `sameEdgeTypeConnector(X, Y, XTYPE, YTYPE, ETYPE, K)`.
    SameEdgeTypeConnector {
        /// Source query variable.
        x: String,
        /// Destination query variable.
        y: String,
        /// Vertex type of `x`.
        src_type: String,
        /// Vertex type of `y`.
        dst_type: String,
        /// The single edge type every hop uses.
        etype: String,
        /// Contracted path length.
        k: usize,
    },
    /// `connectorSameVertexType(X, Y, VTYPE)`.
    SameVertexTypeConnector {
        /// Source query variable.
        x: String,
        /// Destination query variable.
        y: String,
        /// Common vertex type.
        vtype: String,
    },
    /// `sourceToSinkConnector(X, Y)`.
    SourceToSinkConnector {
        /// Source query variable (no incoming pattern edges).
        x: String,
        /// Sink query variable (no outgoing pattern edges).
        y: String,
    },
    /// Vertex types the query never touches can be summarized away.
    VertexRemovalSummarizer {
        /// Removable vertex types.
        remove: Vec<String>,
        /// Types the query needs (the inclusion complement).
        keep: Vec<String>,
    },
    /// Edge types the query never touches.
    EdgeRemovalSummarizer {
        /// Removable edge types.
        remove: Vec<String>,
    },
}

impl Candidate {
    /// Lowers the candidate to a materializable view definition.
    /// Source-to-sink connectors are query-shape specific and have no
    /// graph-level lowering here (returns `None`).
    pub fn to_view_def(&self) -> Option<ViewDef> {
        match self {
            Candidate::KHopConnector {
                src_type,
                dst_type,
                k,
                ..
            } => Some(ViewDef::Connector(ConnectorDef::k_hop(
                src_type, dst_type, *k,
            ))),
            Candidate::SameEdgeTypeConnector {
                src_type,
                dst_type,
                etype,
                k,
                ..
            } => Some(ViewDef::Connector(ConnectorDef::same_edge_type(
                src_type, dst_type, *k, etype,
            ))),
            Candidate::SameVertexTypeConnector { vtype, .. } => {
                // a variable-length same-type connector materializes as
                // the smallest same-type k-hop connector (k=2 in
                // bipartite schemas, k=1 in homogeneous ones); the
                // enumerator emits explicit k-hop candidates alongside,
                // so this lowering is only used standalone.
                Some(ViewDef::Connector(ConnectorDef::k_hop(vtype, vtype, 2)))
            }
            Candidate::SourceToSinkConnector { .. } => None,
            Candidate::VertexRemovalSummarizer { keep, .. } => {
                Some(ViewDef::Summarizer(SummarizerDef::VertexInclusion {
                    keep: keep.clone(),
                }))
            }
            Candidate::EdgeRemovalSummarizer { remove } => {
                Some(ViewDef::Summarizer(SummarizerDef::EdgeRemoval {
                    remove: remove.clone(),
                }))
            }
        }
    }
}

/// Result of enumerating one query: candidates plus the inference steps
/// spent (the §VII-A "few milliseconds" overhead measurement).
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Distinct candidates found.
    pub candidates: Vec<Candidate>,
    /// Total inference steps across all template evaluations.
    pub inference_steps: u64,
}

fn atom(sol: &Solution, var: &str) -> Option<String> {
    sol.iter()
        .find(|(n, _)| n == var)
        .and_then(|(_, t)| t.atom_name().map(str::to_string))
}

fn int(sol: &Solution, var: &str) -> Option<i64> {
    sol.iter()
        .find(|(n, _)| n == var)
        .and_then(|(_, t)| t.int_value())
}

/// Enumerates view candidates for `query` over `schema` by evaluating
/// every view template on the inference engine (§IV-B).
pub fn enumerate_views(query: &Query, schema: &Schema) -> Result<Enumeration, PrologError> {
    let db = database_for(query, schema);
    let mut steps = 0u64;
    let mut candidates: BTreeSet<Candidate> = BTreeSet::new();

    // kHopConnector(X, Y, XTYPE, YTYPE, K)
    let (sols, s) = db.query_with_stats("kHopConnector(X, Y, XT, YT, K)")?;
    steps += s;
    for sol in &sols {
        if let (Some(x), Some(y), Some(xt), Some(yt), Some(k)) = (
            atom(sol, "X"),
            atom(sol, "Y"),
            atom(sol, "XT"),
            atom(sol, "YT"),
            int(sol, "K"),
        ) {
            if k > 0 {
                candidates.insert(Candidate::KHopConnector {
                    x,
                    y,
                    src_type: xt,
                    dst_type: yt,
                    k: k as usize,
                });
            }
        }
    }

    // sameEdgeTypeConnector(X, Y, XTYPE, YTYPE, ETYPE, K)
    let (sols, s) = db.query_with_stats("sameEdgeTypeConnector(X, Y, XT, YT, ET, K)")?;
    steps += s;
    for sol in &sols {
        if let (Some(x), Some(y), Some(xt), Some(yt), Some(et), Some(k)) = (
            atom(sol, "X"),
            atom(sol, "Y"),
            atom(sol, "XT"),
            atom(sol, "YT"),
            atom(sol, "ET"),
            int(sol, "K"),
        ) {
            if k > 0 {
                candidates.insert(Candidate::SameEdgeTypeConnector {
                    x,
                    y,
                    src_type: xt,
                    dst_type: yt,
                    etype: et,
                    k: k as usize,
                });
            }
        }
    }

    // connectorSameVertexType(X, Y, VTYPE)
    let (sols, s) = db.query_with_stats("connectorSameVertexType(X, Y, VT)")?;
    steps += s;
    for sol in &sols {
        if let (Some(x), Some(y), Some(vtype)) = (atom(sol, "X"), atom(sol, "Y"), atom(sol, "VT")) {
            if x != y {
                candidates.insert(Candidate::SameVertexTypeConnector { x, y, vtype });
            }
        }
    }

    // sourceToSinkConnector(X, Y)
    let (sols, s) = db.query_with_stats("sourceToSinkConnector(X, Y)")?;
    steps += s;
    for sol in &sols {
        if let (Some(x), Some(y)) = (atom(sol, "X"), atom(sol, "Y")) {
            if x != y {
                candidates.insert(Candidate::SourceToSinkConnector { x, y });
            }
        }
    }

    // summarizers: removable vertex/edge types
    let (rem_v, s) = db.query_with_stats("removableVertexType(T)")?;
    steps += s;
    let (kept_v, s) = db.query_with_stats("keptVertexType(T)")?;
    steps += s;
    let remove: Vec<String> = dedup_atoms(&rem_v);
    let keep: Vec<String> = dedup_atoms(&kept_v);
    if !remove.is_empty() && !keep.is_empty() {
        candidates.insert(Candidate::VertexRemovalSummarizer { remove, keep });
    }
    let (rem_e, s) = db.query_with_stats("removableEdgeType(T)")?;
    steps += s;
    let remove_e = dedup_atoms(&rem_e);
    if !remove_e.is_empty() {
        candidates.insert(Candidate::EdgeRemovalSummarizer { remove: remove_e });
    }

    Ok(Enumeration {
        candidates: candidates.into_iter().collect(),
        inference_steps: steps,
    })
}

fn dedup_atoms(sols: &[Solution]) -> Vec<String> {
    let set: BTreeSet<String> = sols
        .iter()
        .filter_map(|s| {
            s.first()
                .and_then(|(_, t)| t.atom_name().map(str::to_string))
        })
        .collect();
    set.into_iter().collect()
}

/// The paper's Alg. 1: the **procedural** version of the
/// `schemaKHopPath` constraint-mining rule, used as the enumeration
/// baseline. It enumerates every k-length schema path without any
/// query constraints, exploring a strictly larger search space than the
/// constraint-injected declarative rule.
pub mod procedural {
    use kaskade_graph::{EdgeRule, Schema};

    /// All k-length schema paths (as edge-rule sequences), by direct
    /// transcription of Alg. 1.
    pub fn k_hop_schema_paths(schema: &Schema, k: usize) -> Vec<Vec<EdgeRule>> {
        let edges: Vec<EdgeRule> = schema.edge_rules().to_vec();
        if k == 0 {
            return vec![];
        }
        rec(&edges, Vec::new(), k, k)
    }

    fn rec(
        schema_edges: &[EdgeRule],
        paths: Vec<Vec<EdgeRule>>,
        k: usize,
        curr_k: usize,
    ) -> Vec<Vec<EdgeRule>> {
        if curr_k == 0 {
            return paths.into_iter().filter(|p| p.len() == k).collect();
        }
        if k == curr_k {
            let new_paths: Vec<Vec<EdgeRule>> =
                schema_edges.iter().map(|e| vec![e.clone()]).collect();
            return rec(schema_edges, new_paths, k, k - 1);
        }
        let mut new_paths = Vec::new();
        for path in &paths {
            let src = &path[0].src;
            let dst = &path[path.len() - 1].dst;
            for edge in schema_edges {
                // Add edge to the end of the path.
                if *dst == edge.src {
                    let mut p = path.clone();
                    p.push(edge.clone());
                    new_paths.push(p);
                }
                // Add edge to the front of the path.
                if *src == edge.dst {
                    let mut p = vec![edge.clone()];
                    p.extend(path.iter().cloned());
                    new_paths.push(p);
                }
            }
        }
        // Step: duplicate paths removal.
        new_paths.sort();
        new_paths.dedup();
        // Fix-point: only include paths that grew this round.
        let target = k - curr_k + 1;
        let paths: Vec<Vec<EdgeRule>> = new_paths
            .into_iter()
            .filter(|p| p.len() == target)
            .collect();
        rec(schema_edges, paths, k, curr_k - 1)
    }

    /// The number of (src type, dst type, k) connector combinations the
    /// procedural enumeration considers up to `k_max` — the baseline
    /// search-space size for the ablation.
    pub fn search_space_size(schema: &Schema, k_max: usize) -> usize {
        (1..=k_max)
            .map(|k| k_hop_schema_paths(schema, k).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_query::{listings::LISTING_1, parse};

    fn listing1_enum() -> Enumeration {
        let q = parse(LISTING_1).unwrap();
        enumerate_views(&q, &Schema::provenance()).unwrap()
    }

    #[test]
    fn listing_1_yields_even_k_connectors_2_to_10() {
        let e = listing1_enum();
        let mut ks: Vec<usize> = e
            .candidates
            .iter()
            .filter_map(|c| match c {
                Candidate::KHopConnector {
                    x,
                    y,
                    src_type,
                    dst_type,
                    k,
                } if x == "q_j1" && y == "q_j2" && src_type == "Job" && dst_type == "Job" => {
                    Some(*k)
                }
                _ => None,
            })
            .collect();
        ks.sort_unstable();
        // exactly the §IV-B instantiations
        assert_eq!(ks, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn listing_1_yields_file_to_file_connectors() {
        let e = listing1_enum();
        let ks: Vec<usize> = e
            .candidates
            .iter()
            .filter_map(|c| match c {
                Candidate::KHopConnector {
                    x, y, src_type, k, ..
                } if x == "q_f1" && y == "q_f2" && src_type == "File" => Some(*k),
                _ => None,
            })
            .collect();
        // 0-hop is infeasible; even k up to 8 from the var-length window
        assert_eq!(
            {
                let mut v = ks.clone();
                v.sort_unstable();
                v
            },
            vec![2, 4, 6, 8]
        );
    }

    #[test]
    fn listing_1_source_to_sink() {
        let e = listing1_enum();
        assert!(e.candidates.iter().any(|c| matches!(
            c,
            Candidate::SourceToSinkConnector { x, y } if x == "q_j1" && y == "q_j2"
        )));
    }

    #[test]
    fn no_infeasible_odd_connectors() {
        let e = listing1_enum();
        for c in &e.candidates {
            if let Candidate::KHopConnector {
                src_type,
                dst_type,
                k,
                ..
            } = c
            {
                if src_type == dst_type {
                    assert_eq!(k % 2, 0, "odd same-type connector {c:?} is infeasible");
                }
            }
        }
    }

    #[test]
    fn summarizer_candidates_on_wider_schema() {
        // query touches Job/File only; schema also has Task/Machine/User
        let q = parse(LISTING_1).unwrap();
        let schema = kaskade_datasets::Dataset::Prov.schema();
        let e = enumerate_views(&q, &schema).unwrap();
        let vr = e.candidates.iter().find_map(|c| match c {
            Candidate::VertexRemovalSummarizer { remove, keep } => Some((remove, keep)),
            _ => None,
        });
        let (remove, keep) = vr.expect("vertex removal candidate");
        assert_eq!(
            remove,
            &vec![
                "Machine".to_string(),
                "Task".to_string(),
                "User".to_string()
            ]
        );
        assert_eq!(keep, &vec!["File".to_string(), "Job".to_string()]);
        let er = e.candidates.iter().find_map(|c| match c {
            Candidate::EdgeRemovalSummarizer { remove } => Some(remove),
            _ => None,
        });
        assert_eq!(
            er.unwrap(),
            &vec![
                "RUNS_ON".to_string(),
                "SPAWNS".to_string(),
                "SUBMITTED".to_string(),
                "TRANSFERS_TO".to_string()
            ]
        );
    }

    #[test]
    fn no_summarizer_when_query_uses_everything() {
        let q = parse(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        )
        .unwrap();
        let e = enumerate_views(&q, &Schema::provenance()).unwrap();
        assert!(!e
            .candidates
            .iter()
            .any(|c| matches!(c, Candidate::VertexRemovalSummarizer { .. })));
    }

    #[test]
    fn homogeneous_schema_all_k_feasible() {
        let q = parse("MATCH (a:User)-[:FOLLOWS*1..4]->(b:User) RETURN a, b").unwrap();
        let e = enumerate_views(&q, &Schema::homogeneous("User", "FOLLOWS")).unwrap();
        let mut ks: Vec<usize> = e
            .candidates
            .iter()
            .filter_map(|c| match c {
                Candidate::KHopConnector { k, .. } => Some(*k),
                _ => None,
            })
            .collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn same_edge_type_connector_enumerated_for_typed_paths() {
        let q = parse("MATCH (a:User)-[:FOLLOWS*1..3]->(b:User) RETURN a, b").unwrap();
        let e = enumerate_views(&q, &Schema::homogeneous("User", "FOLLOWS")).unwrap();
        let mut ks: Vec<usize> = e
            .candidates
            .iter()
            .filter_map(|c| match c {
                Candidate::SameEdgeTypeConnector { etype, k, .. } if etype == "FOLLOWS" => Some(*k),
                _ => None,
            })
            .collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![1, 2, 3]);
        // lowering produces the typed connector
        let c = e
            .candidates
            .iter()
            .find(|c| matches!(c, Candidate::SameEdgeTypeConnector { k: 2, .. }))
            .unwrap();
        let ViewDef::Connector(def) = c.to_view_def().unwrap() else {
            panic!()
        };
        assert_eq!(def.etype.as_deref(), Some("FOLLOWS"));
    }

    #[test]
    fn no_same_edge_type_candidates_for_untyped_paths() {
        let q = parse(LISTING_1).unwrap();
        let e = enumerate_views(&q, &Schema::provenance()).unwrap();
        assert!(!e
            .candidates
            .iter()
            .any(|c| matches!(c, Candidate::SameEdgeTypeConnector { .. })));
    }

    #[test]
    fn inference_steps_reported() {
        let e = listing1_enum();
        assert!(e.inference_steps > 0);
    }

    #[test]
    fn lowering_candidates_to_view_defs() {
        let c = Candidate::KHopConnector {
            x: "a".into(),
            y: "b".into(),
            src_type: "Job".into(),
            dst_type: "Job".into(),
            k: 2,
        };
        let ViewDef::Connector(def) = c.to_view_def().unwrap() else {
            panic!()
        };
        assert_eq!(def.edge_label(), "JOB_TO_JOB_2_HOP");
        assert!(Candidate::SourceToSinkConnector {
            x: "a".into(),
            y: "b".into()
        }
        .to_view_def()
        .is_none());
    }

    #[test]
    fn procedural_alg1_matches_declarative_on_path_existence() {
        let schema = Schema::provenance();
        for k in 1..=6 {
            let paths = procedural::k_hop_schema_paths(&schema, k);
            // in the bipartite provenance schema every path alternates;
            // paths of length k exist for all k >= 1 (walks repeat types)
            assert!(!paths.is_empty(), "k={k}");
            for p in &paths {
                assert_eq!(p.len(), k);
                for w in p.windows(2) {
                    assert_eq!(w[0].dst, w[1].src, "path not connected");
                }
            }
        }
    }

    #[test]
    fn procedural_search_space_grows_with_k() {
        let schema = kaskade_datasets::Dataset::Prov.schema();
        let s3 = procedural::search_space_size(&schema, 3);
        let s6 = procedural::search_space_size(&schema, 6);
        assert!(s6 > s3);
    }

    #[test]
    fn procedural_zero_k() {
        assert!(procedural::k_hop_schema_paths(&Schema::provenance(), 0).is_empty());
    }
}
