//! The constraint miner: explicit-constraint (fact) extraction.
//!
//! Transforms a query's `MATCH` clause and a graph schema into the
//! Prolog facts of §IV-A1 (`queryVertex/1`, `queryVertexType/2`,
//! `queryEdge/2`, `queryEdgeType/3`, `queryVariableLengthPath/4`,
//! `schemaVertex/1`, `schemaEdge/3`). The facts feed the inference-based
//! view enumeration together with the constraint mining rules.

use kaskade_graph::Schema;
use kaskade_prolog::{Database, Term};
use kaskade_query::{GraphPattern, Query};

use crate::rules::{
    CONNECTOR_TEMPLATES, FACT_PREDICATES, QUERY_MINING_RULES, SCHEMA_MINING_RULES,
    SUMMARIZER_TEMPLATES,
};

/// Builds the inference database: prelude + mining rules + view
/// templates, with all fact predicates declared dynamic.
pub fn base_database() -> Database {
    let mut db = Database::with_prelude();
    db.consult(SCHEMA_MINING_RULES).expect("schema rules parse");
    db.consult(QUERY_MINING_RULES).expect("query rules parse");
    db.consult(CONNECTOR_TEMPLATES).expect("templates parse");
    db.consult(SUMMARIZER_TEMPLATES).expect("templates parse");
    for (f, a) in FACT_PREDICATES {
        db.declare_dynamic(f, *a);
    }
    db
}

/// Emits `schemaVertex/1` and `schemaEdge/3` facts for `schema`.
pub fn assert_schema_facts(db: &mut Database, schema: &Schema) {
    for t in schema.vertex_types() {
        db.add_fact("schemaVertex", vec![Term::atom(t)]);
    }
    for r in schema.edge_rules() {
        db.add_fact(
            "schemaEdge",
            vec![Term::atom(&r.src), Term::atom(&r.dst), Term::atom(&r.name)],
        );
    }
}

/// Emits the query facts of §IV-A1 for the innermost graph pattern of
/// `query`. Returns the number of facts asserted (0 when the query has
/// no pattern).
pub fn assert_query_facts(db: &mut Database, query: &Query) -> usize {
    match query.pattern() {
        Some(p) => assert_pattern_facts(db, p),
        None => 0,
    }
}

/// Emits query facts for a bare pattern.
pub fn assert_pattern_facts(db: &mut Database, pattern: &GraphPattern) -> usize {
    let mut n = 0;
    for node in &pattern.nodes {
        db.add_fact("queryVertex", vec![Term::atom(&node.var)]);
        n += 1;
        if let Some(label) = &node.label {
            db.add_fact(
                "queryVertexType",
                vec![Term::atom(&node.var), Term::atom(label)],
            );
            n += 1;
        }
    }
    for edge in &pattern.edges {
        match edge.hops {
            None => {
                db.add_fact(
                    "queryEdge",
                    vec![Term::atom(&edge.src), Term::atom(&edge.dst)],
                );
                n += 1;
                if let Some(et) = &edge.etype {
                    db.add_fact(
                        "queryEdgeType",
                        vec![Term::atom(&edge.src), Term::atom(&edge.dst), Term::atom(et)],
                    );
                    n += 1;
                }
            }
            Some((lo, hi)) => {
                db.add_fact(
                    "queryVariableLengthPath",
                    vec![
                        Term::atom(&edge.src),
                        Term::atom(&edge.dst),
                        Term::int(lo as i64),
                        Term::int(hi as i64),
                    ],
                );
                n += 1;
                // a typed variable-length path uses its edge type on
                // every hop; record it both as a used edge type (so it
                // is never "removable") and as a typed-path marker (so
                // the untyped-path relevance rules skip this pair)
                if let Some(et) = &edge.etype {
                    db.add_fact(
                        "queryEdgeType",
                        vec![Term::atom(&edge.src), Term::atom(&edge.dst), Term::atom(et)],
                    );
                    db.add_fact(
                        "queryPathEdgeType",
                        vec![Term::atom(&edge.src), Term::atom(&edge.dst), Term::atom(et)],
                    );
                    n += 2;
                }
            }
        }
    }
    n
}

/// One-call convenience: a database loaded with rules, schema facts and
/// query facts — ready for view enumeration.
pub fn database_for(query: &Query, schema: &Schema) -> Database {
    let mut db = base_database();
    assert_schema_facts(&mut db, schema);
    assert_query_facts(&mut db, query);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_query::{listings::LISTING_1, parse};

    #[test]
    fn listing_1_facts_match_paper_section_iv_a1() {
        let q = parse(LISTING_1).unwrap();
        let mut db = base_database();
        let n = assert_query_facts(&mut db, &q);
        // 4 vertices + 4 types + 2 edges + 2 edge types + 1 var path
        assert_eq!(n, 13);
        assert!(db.has_solution("queryVertex(q_f1)").unwrap());
        assert!(db.has_solution("queryVertexType(q_j1, 'Job')").unwrap());
        assert!(db.has_solution("queryVertexType(q_f2, 'File')").unwrap());
        assert!(db
            .has_solution("queryEdgeType(q_j1, q_f1, 'WRITES_TO')")
            .unwrap());
        assert!(db
            .has_solution("queryEdgeType(q_f2, q_j2, 'IS_READ_BY')")
            .unwrap());
        assert!(db
            .has_solution("queryVariableLengthPath(q_f1, q_f2, 0, 8)")
            .unwrap());
        assert!(!db.has_solution("queryEdge(q_f1, q_f2)").unwrap());
    }

    #[test]
    fn schema_facts_for_provenance() {
        let mut db = base_database();
        assert_schema_facts(&mut db, &Schema::provenance());
        assert!(db.has_solution("schemaVertex('Job')").unwrap());
        assert!(db.has_solution("schemaVertex('File')").unwrap());
        assert!(db
            .has_solution("schemaEdge('Job', 'File', 'WRITES_TO')")
            .unwrap());
        assert!(db
            .has_solution("schemaEdge('File', 'Job', 'IS_READ_BY')")
            .unwrap());
        assert!(!db.has_solution("schemaEdge('File', 'File', T)").unwrap());
    }

    #[test]
    fn database_for_supports_template_queries() {
        let q = parse(LISTING_1).unwrap();
        let db = database_for(&q, &Schema::provenance());
        // the famous instantiation from §IV-B
        assert!(db
            .has_solution("kHopConnector(q_j1, q_j2, 'Job', 'Job', 2)")
            .unwrap());
    }

    #[test]
    fn no_pattern_no_facts() {
        // a query can in principle have no pattern only if constructed
        // by hand; parse always yields one, so build the AST directly
        let q = parse("MATCH (a) RETURN a").unwrap();
        let mut db = base_database();
        assert!(assert_query_facts(&mut db, &q) > 0);
    }

    #[test]
    fn unlabeled_vertices_get_no_type_fact() {
        let q = parse("MATCH (a)-[:E]->(b:File) RETURN a, b").unwrap();
        let mut db = base_database();
        assert_query_facts(&mut db, &q);
        assert!(!db.has_solution("queryVertexType(a, T)").unwrap());
        assert!(db.has_solution("queryVertexType(b, 'File')").unwrap());
    }
}
