//! # kaskade-core
//!
//! The Kaskade graph query optimization framework (ICDE 2020): graph
//! views, constraint-based view enumeration, a view cost model,
//! knapsack view selection, and view-based query rewriting.
//!
//! The [`Kaskade`] struct wires the components of the paper's Fig. 2
//! together: it owns the raw graph, its schema and statistics, and a
//! catalog of materialized views. The two headline operations are
//! [`Kaskade::select_and_materialize`] (workload analyzer + view
//! enumerator + knapsack selector + materializer, §V-B) and
//! [`Kaskade::execute`] (query rewriter + execution engine, §V-C):
//!
//! ```
//! use kaskade_core::{Kaskade, SelectionConfig};
//! use kaskade_datasets::{generate_provenance, ProvenanceConfig};
//! use kaskade_graph::Schema;
//! use kaskade_query::{listings::LISTING_1, parse};
//!
//! let g = generate_provenance(&ProvenanceConfig::tiny(7).core_only());
//! let mut kaskade = Kaskade::new(g, Schema::provenance());
//!
//! let workload = vec![parse(LISTING_1).unwrap()];
//! let report = kaskade.select_and_materialize(&workload, &SelectionConfig::default());
//! assert!(!report.materialized.is_empty());
//!
//! // the same query now automatically runs over the connector view
//! let planned = kaskade.plan(&workload[0]).unwrap();
//! assert!(planned.view_id.is_some());
//! let table = kaskade.execute(&workload[0]).unwrap();
//! assert!(!table.is_empty());
//! ```

#![warn(missing_docs)]

mod catalog;
pub mod cost;
mod enumerate;
mod facts;
pub mod maintain;
mod materialize;
pub mod persist;
mod refresh;
mod rewrite;
mod rules;
mod selection;
mod snapshot;
mod views;

pub use catalog::{Catalog, DdlOp, MaterializedView, ViewId};
pub use enumerate::{enumerate_views, procedural, Candidate, Enumeration};
pub use facts::{
    assert_pattern_facts, assert_query_facts, assert_schema_facts, base_database, database_for,
};
pub use maintain::{
    apply_delta, stage_delta, stat_changes, AppliedDelta, DelEdge, DeltaError, GraphDelta, NewEdge,
    NewVertex, StagedDelta, VRef,
};
pub use materialize::materialize;
pub use refresh::{
    ComposedMaintainer, ConnectorMaintainer, Partition, RefreshCtx, RefreshDag, RefreshOptions,
    RefreshReport, Refreshed, SourceSinkMaintainer, SummarizerMaintainer, Upstream, ViewDelta,
    ViewMaintainer, ViewRefreshStat,
};
pub use rewrite::{connector_hop_window, find_chain, rewrite_over_connector, Chain};
pub use rules::{
    CONNECTOR_TEMPLATES, FACT_PREDICATES, QUERY_MINING_RULES, SCHEMA_MINING_RULES,
    SUMMARIZER_TEMPLATES,
};
pub use selection::{
    knapsack, select_views, KnapsackItem, ScoredView, SelectionConfig, SelectionResult,
};
pub use snapshot::Snapshot;
pub use views::{
    AggOp, ComposedDef, ConnectorDef, PropPredicate, SourceSinkDef, SummarizerDef, ViewDef,
};

use kaskade_graph::{Graph, GraphStats, Schema};
use kaskade_query::{ExecError, Query, Table};

/// A planned query: where it will run and at what estimated cost.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The (possibly rewritten) query.
    pub query: Query,
    /// The typed handle of the catalog view it runs on (`None` = raw
    /// graph). Resolve to the view (or its display name) with
    /// [`Catalog::get_by_id`].
    pub view_id: Option<ViewId>,
    /// Estimated evaluation cost under the cost model.
    pub estimated_cost: f64,
}

/// Report of a [`Kaskade::select_and_materialize`] run.
#[derive(Debug, Clone)]
pub struct SelectionReport {
    /// Scores of every candidate (selected ones flagged).
    pub scored: Vec<ScoredView>,
    /// Ids of the views actually materialized.
    pub materialized: Vec<String>,
}

/// The Kaskade framework instance (Fig. 2).
///
/// `Kaskade` owns a read-only [`Snapshot`] (graph, schema, statistics,
/// and view catalog, with all the read ops) and layers the `&mut`
/// operations on top: [`Kaskade::materialize_view`],
/// [`Kaskade::select_and_materialize`], and [`Kaskade::apply_delta`].
/// Callers that only read can take a cheap [`Kaskade::snapshot`] and
/// drop the borrow — the basis of the `kaskade-service` serving runtime.
#[derive(Debug, Clone)]
pub struct Kaskade {
    snap: Snapshot,
}

impl Kaskade {
    /// Wraps a graph and its schema; computes the degree statistics the
    /// cost model maintains (§V-A "graph data properties").
    pub fn new(graph: Graph, schema: Schema) -> Self {
        Kaskade {
            snap: Snapshot::new(graph, schema),
        }
    }

    /// Wraps an existing snapshot (e.g. one produced by
    /// [`Snapshot::with_delta`]) back into a mutable instance.
    pub fn from_snapshot(snap: Snapshot) -> Self {
        Kaskade { snap }
    }

    /// A cheap, immutable copy of the current state. O(#views): the
    /// underlying graphs are shared, not duplicated.
    pub fn snapshot(&self) -> Snapshot {
        self.snap.clone()
    }

    /// The raw graph.
    pub fn graph(&self) -> &Graph {
        self.snap.graph()
    }

    /// The graph schema.
    pub fn schema(&self) -> &Schema {
        self.snap.schema()
    }

    /// Raw-graph statistics.
    pub fn stats(&self) -> &GraphStats {
        self.snap.stats()
    }

    /// The materialized-view catalog.
    pub fn catalog(&self) -> &Catalog {
        self.snap.catalog()
    }

    /// Enumerates view candidates for one query (§IV).
    pub fn enumerate(&self, query: &Query) -> Result<Enumeration, kaskade_prolog::PrologError> {
        self.snap.enumerate(query)
    }

    /// Materializes a view directly (bypassing selection) and registers
    /// it in the catalog. Returns its catalog id.
    pub fn materialize_view(&mut self, def: ViewDef) -> String {
        let graph = materialize(&self.snap.graph, &def);
        let id = def.id();
        self.snap.catalog.add(MaterializedView::new(def, graph));
        id
    }

    /// §V-B: enumerate candidates for the workload, score them, solve
    /// the knapsack under the budget, and materialize the winners.
    pub fn select_and_materialize(
        &mut self,
        workload: &[Query],
        cfg: &SelectionConfig,
    ) -> SelectionReport {
        let result = select_views(
            &self.snap.graph,
            &self.snap.stats,
            &self.snap.schema,
            workload,
            cfg,
        );
        let mut materialized = Vec::new();
        for def in result.chosen() {
            materialized.push(self.materialize_view(def.clone()));
        }
        SelectionReport {
            scored: result.scored,
            materialized,
        }
    }

    /// §V-C view-based query rewriting; see [`Snapshot::plan`].
    pub fn plan(&self, query: &Query) -> Result<PlannedQuery, kaskade_prolog::PrologError> {
        self.snap.plan(query)
    }

    /// Applies a [`GraphDelta`] — insertions and retractions — to the
    /// base graph and refreshes every materialized view delta-
    /// incrementally through the [`RefreshDag`] (each view's
    /// [`ViewMaintainer`] touches only what the delta affects; see
    /// [`refresh`](crate::ViewMaintainer)). Statistics update
    /// incrementally.
    pub fn apply_delta(&mut self, delta: &GraphDelta) {
        self.snap = self.snap.with_delta(delta);
    }

    /// Plans and executes a query, automatically routing it to the best
    /// materialized view (or the raw graph); see [`Snapshot::execute`].
    pub fn execute(&self, query: &Query) -> Result<Table, KaskadeError> {
        self.snap.execute(query)
    }
}

/// Errors surfaced by the framework facade.
#[derive(Debug)]
pub enum KaskadeError {
    /// View enumeration failed in the inference engine.
    Inference(kaskade_prolog::PrologError),
    /// Query execution failed.
    Execution(ExecError),
    /// A plan referenced a view id that is not in the catalog (e.g. a
    /// cached plan executed against a snapshot that dropped the view).
    UnknownView(ViewId),
}

impl std::fmt::Display for KaskadeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KaskadeError::Inference(e) => write!(f, "inference error: {e}"),
            KaskadeError::Execution(e) => write!(f, "execution error: {e}"),
            KaskadeError::UnknownView(id) => write!(f, "unknown view in plan: {id}"),
        }
    }
}

impl std::error::Error for KaskadeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_query::{listings::LISTING_1, parse};

    fn instance(seed: u64) -> Kaskade {
        let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
        Kaskade::new(g, Schema::provenance())
    }

    #[test]
    fn plan_falls_back_to_raw_graph_without_views() {
        let k = instance(1);
        let q = parse(LISTING_1).unwrap();
        let p = k.plan(&q).unwrap();
        assert!(p.view_id.is_none());
        assert_eq!(p.query, q);
    }

    #[test]
    fn plan_uses_materialized_connector() {
        let mut k = instance(2);
        let q = parse(LISTING_1).unwrap();
        let id = k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let p = k.plan(&q).unwrap();
        let (vid, view) = k.catalog().lookup(&id).unwrap();
        assert_eq!(p.view_id, Some(vid));
        assert_eq!(view.def.id(), id);
        assert_eq!(p.query.pattern().unwrap().edges.len(), 1);
    }

    #[test]
    fn execute_equivalence_raw_vs_view() {
        // THE core correctness property: the rewritten query over the
        // materialized connector returns the same table as the raw query.
        let mut k = instance(3);
        let q = parse(LISTING_1).unwrap();
        let raw = k.execute(&q).unwrap();
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let viewed = k.execute(&q).unwrap();
        // same groups, same aggregates (order may differ)
        let norm = |t: &Table| {
            let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&raw), norm(&viewed));
        assert!(!raw.is_empty());
    }

    #[test]
    fn select_and_materialize_end_to_end() {
        let mut k = instance(4);
        let workload = vec![parse(LISTING_1).unwrap()];
        let report = k.select_and_materialize(
            &workload,
            &SelectionConfig {
                budget_edges: 1_000_000,
                alpha: 95,
            },
        );
        assert!(report
            .materialized
            .contains(&"connector:JOB_TO_JOB_2_HOP".to_string()));
        assert_eq!(k.catalog().len(), report.materialized.len());
        // execution now routes through a view
        let p = k.plan(&workload[0]).unwrap();
        assert!(p.view_id.is_some());
    }

    #[test]
    fn catalog_view_smaller_than_raw_graph() {
        let mut k = instance(5);
        k.materialize_view(ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        }));
        // core-only graph: summarizer equals raw here, so use connector
        let id = k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let v = k.catalog().get(&id).unwrap();
        assert!(v.graph.vertex_count() <= k.graph().vertex_count());
    }

    #[test]
    fn homogeneous_connector_rewrites_are_refused_for_soundness() {
        // on a one-type schema every distance is feasible, so shortest-
        // distance windows with lo > 1 cannot be expressed over a k>=2
        // connector (triangle pairs at distance 1 also have 2-walks);
        // plan() must fall back to the raw graph even with the view
        // materialized
        use kaskade_datasets::{generate_social, SocialConfig};
        let g = generate_social(&SocialConfig::tiny(9));
        let mut k = Kaskade::new(g, Schema::homogeneous("User", "FOLLOWS"));
        let q =
            parse("SELECT COUNT(*) FROM (MATCH (a:User)-[:FOLLOWS*2..2]->(b:User) RETURN a, b)")
                .unwrap();
        let raw = k.execute(&q).unwrap();
        k.materialize_view(ViewDef::Connector(ConnectorDef::same_edge_type(
            "User", "User", 2, "FOLLOWS",
        )));
        let p = k.plan(&q).unwrap();
        assert!(p.view_id.is_none());
        let after = k.execute(&q).unwrap();
        assert_eq!(
            raw.scalar().unwrap().as_int(),
            after.scalar().unwrap().as_int()
        );
    }

    #[test]
    fn apply_delta_keeps_views_fresh() {
        let mut k = instance(6);
        let q = parse(LISTING_1).unwrap();
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let before = k.execute(&q).unwrap();

        // append a fresh pipeline: new job reads an existing file
        let mut d = GraphDelta::new();
        let j = d.add_vertex(
            "Job",
            vec![
                ("CPU".into(), kaskade_graph::Value::Int(500)),
                (
                    "pipelineName".into(),
                    kaskade_graph::Value::Str("pipelineX".into()),
                ),
            ],
        );
        let f = k.graph().vertices_of_type("File").next().unwrap();
        d.add_edge(VRef::Existing(f), j, "IS_READ_BY", vec![]);
        k.apply_delta(&d);

        // the view stays consistent with a from-scratch Kaskade
        let after_view = k.execute(&q).unwrap();
        let fresh = Kaskade::new(k.graph().clone(), Schema::provenance());
        let after_raw = fresh.execute(&q).unwrap();
        let norm = |t: &Table| {
            let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&after_view), norm(&after_raw));
        // and the result actually changed (the new job is downstream)
        assert_ne!(norm(&before), norm(&after_view));
    }

    #[test]
    fn error_display() {
        let e = KaskadeError::Execution(ExecError::UnknownColumn("x".into()));
        assert!(e.to_string().contains("execution error"));
    }
}
