//! Incremental view maintenance for insert-only workloads.
//!
//! The paper traces graph views back to Zhuge & Garcia-Molina's work on
//! graph-structured views *and their incremental maintenance* (§VIII);
//! provenance graphs in particular only ever grow (new jobs, files and
//! reads are appended — history is immutable). This module implements
//! that natural extension: a [`GraphDelta`] of new vertices and edges is
//! applied to the base graph, and materialized connector views are
//! refreshed by recomputing **only the affected sources** — vertices
//! within `k-1` hops upstream of any new edge — instead of
//! re-materializing from scratch.
//!
//! Deletion support would require per-edge provenance counts on
//! connector edges and is left out, mirroring the insert-only growth of
//! the paper's motivating workload.

use std::collections::{HashMap, HashSet, VecDeque};

use kaskade_graph::{Graph, GraphBuilder, Value, VertexId};

use crate::views::ConnectorDef;

/// A reference to a vertex in a delta: either an existing base-graph
/// vertex or the i-th new vertex of the same delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VRef {
    /// An existing base-graph vertex (ids are stable under
    /// [`apply_delta`]).
    Existing(VertexId),
    /// The i-th vertex of [`GraphDelta::vertices`].
    New(usize),
}

/// A vertex to insert.
#[derive(Debug, Clone, PartialEq)]
pub struct NewVertex {
    /// Vertex type name.
    pub vtype: String,
    /// Initial properties.
    pub props: Vec<(String, Value)>,
}

/// An edge to insert.
#[derive(Debug, Clone, PartialEq)]
pub struct NewEdge {
    /// Source vertex.
    pub src: VRef,
    /// Destination vertex.
    pub dst: VRef,
    /// Edge type name.
    pub etype: String,
    /// Initial properties.
    pub props: Vec<(String, Value)>,
}

/// A batch of insertions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    /// Vertices to add.
    pub vertices: Vec<NewVertex>,
    /// Edges to add (may reference both existing and new vertices).
    pub edges: Vec<NewEdge>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a vertex insertion, returning its [`VRef`].
    pub fn add_vertex(&mut self, vtype: &str, props: Vec<(String, Value)>) -> VRef {
        self.vertices.push(NewVertex {
            vtype: vtype.to_string(),
            props,
        });
        VRef::New(self.vertices.len() - 1)
    }

    /// Queues an edge insertion.
    pub fn add_edge(&mut self, src: VRef, dst: VRef, etype: &str, props: Vec<(String, Value)>) {
        self.edges.push(NewEdge {
            src,
            dst,
            etype: etype.to_string(),
            props,
        });
    }

    /// Whether the delta contains nothing.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges.is_empty()
    }

    /// Checks that every edge reference resolves: [`VRef::New`] indices
    /// must point into this delta's vertex list, and [`VRef::Existing`]
    /// ids must be below `vertex_count` (the base graph's size at apply
    /// time). [`apply_delta`] panics on dangling references; callers
    /// that accept deltas from untrusted sources (the serving runtime)
    /// validate first and reject instead.
    pub fn validate(&self, vertex_count: usize) -> Result<(), DeltaError> {
        for (i, e) in self.edges.iter().enumerate() {
            for r in [e.src, e.dst] {
                match r {
                    VRef::Existing(v) if v.index() >= vertex_count => {
                        return Err(DeltaError::DanglingExisting {
                            edge: i,
                            vertex: v,
                            vertex_count,
                        });
                    }
                    VRef::New(n) if n >= self.vertices.len() => {
                        return Err(DeltaError::DanglingNew {
                            edge: i,
                            index: n,
                            new_vertices: self.vertices.len(),
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Appends `other` onto this delta, re-indexing `other`'s
    /// [`VRef::New`] references past this delta's vertices. Applying the
    /// merged delta once is equivalent to applying the two deltas in
    /// sequence — the primitive behind write batching in the serving
    /// runtime (one view refresh per batch instead of per delta).
    pub fn merge(&mut self, other: &GraphDelta) {
        let base = self.vertices.len();
        let shift = |r: VRef| match r {
            VRef::New(i) => VRef::New(i + base),
            existing => existing,
        };
        self.vertices.extend(other.vertices.iter().cloned());
        for e in &other.edges {
            self.edges.push(NewEdge {
                src: shift(e.src),
                dst: shift(e.dst),
                etype: e.etype.clone(),
                props: e.props.clone(),
            });
        }
    }
}

/// A structurally invalid [`GraphDelta`], reported by
/// [`GraphDelta::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge referenced a base-graph vertex id past the graph's end.
    DanglingExisting {
        /// Index of the offending edge in [`GraphDelta::edges`].
        edge: usize,
        /// The out-of-range vertex reference.
        vertex: VertexId,
        /// The base graph's vertex count the delta was checked against.
        vertex_count: usize,
    },
    /// An edge referenced a new-vertex index past the delta's own list.
    DanglingNew {
        /// Index of the offending edge in [`GraphDelta::edges`].
        edge: usize,
        /// The out-of-range [`VRef::New`] index.
        index: usize,
        /// Number of vertices the delta actually declares.
        new_vertices: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::DanglingExisting {
                edge,
                vertex,
                vertex_count,
            } => write!(
                f,
                "delta edge {edge} references base vertex {vertex} but the graph has only {vertex_count} vertices"
            ),
            DeltaError::DanglingNew {
                edge,
                index,
                new_vertices,
            } => write!(
                f,
                "delta edge {edge} references new vertex {index} but the delta declares only {new_vertices}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of applying a delta: the new base graph plus the resolved
/// ids of the inserted vertices and edge endpoints.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The new base graph. Existing vertex and edge ids are unchanged;
    /// new vertices/edges are appended.
    pub graph: Graph,
    /// Ids of the newly inserted vertices, in delta order.
    pub new_vertices: Vec<VertexId>,
    /// Resolved `(src, dst)` endpoints of the newly inserted edges.
    pub new_edges: Vec<(VertexId, VertexId)>,
}

/// Applies an insert-only delta to a graph. Existing ids are preserved
/// (new elements are appended), so [`VRef::Existing`] references remain
/// valid across repeated applications.
///
/// # Panics
/// Panics if a [`VRef::New`] index is out of range of the delta.
pub fn apply_delta(g: &Graph, delta: &GraphDelta) -> AppliedDelta {
    let mut b = GraphBuilder::with_capacity(
        g.vertex_count() + delta.vertices.len(),
        g.edge_count() + delta.edges.len(),
    );
    for v in g.vertices() {
        let nv = b.add_vertex(g.vertex_type(v));
        debug_assert_eq!(nv, v);
        for (k, val) in g.vertex_props(v).iter() {
            b.set_vertex_prop(nv, g.resolve(k), val.clone());
        }
    }
    for e in g.edges() {
        let ne = b.add_edge(g.edge_src(e), g.edge_dst(e), g.edge_type(e));
        for (k, val) in g.edge_props(e).iter() {
            b.set_edge_prop(ne, g.resolve(k), val.clone());
        }
    }
    let mut new_vertices = Vec::with_capacity(delta.vertices.len());
    for nv in &delta.vertices {
        let id = b.add_vertex(&nv.vtype);
        for (k, val) in &nv.props {
            b.set_vertex_prop(id, k, val.clone());
        }
        new_vertices.push(id);
    }
    let resolve = |r: VRef| -> VertexId {
        match r {
            VRef::Existing(v) => v,
            VRef::New(i) => new_vertices[i],
        }
    };
    let mut new_edges = Vec::with_capacity(delta.edges.len());
    for ne in &delta.edges {
        let (s, d) = (resolve(ne.src), resolve(ne.dst));
        let id = b.add_edge(s, d, &ne.etype);
        for (k, val) in &ne.props {
            b.set_edge_prop(id, k, val.clone());
        }
        new_edges.push((s, d));
    }
    AppliedDelta {
        graph: b.finish(),
        new_vertices,
        new_edges,
    }
}

/// Sources whose exact-`k` frontier can change after the delta: any
/// vertex of the connector's source type within `k-1` **backward** hops
/// of a new edge's source endpoint (over the new base graph), plus any
/// newly inserted source-type vertex.
fn affected_sources(
    base_new: &Graph,
    def: &ConnectorDef,
    applied: &AppliedDelta,
) -> HashSet<VertexId> {
    let mut affected = HashSet::new();
    for &(s, _) in &applied.new_edges {
        // backward BFS up to k-1 hops, including s itself
        let mut visited = HashSet::new();
        visited.insert(s);
        let mut queue = VecDeque::from([(s, 0usize)]);
        while let Some((v, d)) = queue.pop_front() {
            if base_new.vertex_type(v) == def.src_type {
                affected.insert(v);
            }
            if d + 1 > def.k.saturating_sub(1) {
                continue;
            }
            for w in base_new.in_neighbors(v) {
                if visited.insert(w) {
                    queue.push_back((w, d + 1));
                }
            }
        }
    }
    for &v in &applied.new_vertices {
        if base_new.vertex_type(v) == def.src_type {
            affected.insert(v);
        }
    }
    affected
}

/// Incrementally refreshes a k-hop connector view after a delta.
///
/// `old_view` must be the result of
/// [`crate::materialize_connector`]`(base_old, def)` and `applied` the
/// result of applying the delta to `base_old`. Unaffected sources'
/// connector edges are copied from the old view; affected sources are
/// recomputed against the new base. The result is identical to
/// re-materializing from scratch (asserted by tests), but touches only
/// the neighborhood of the change.
pub fn maintain_connector(old_view: &Graph, applied: &AppliedDelta, def: &ConnectorDef) -> Graph {
    let base_new = &applied.graph;
    let affected = affected_sources(base_new, def, applied);

    // Connector views list base vertices of the target types in base-id
    // order; ids are stable under apply_delta, so old view vertex i is
    // the i-th type-filtered vertex of the new base as well.
    let mut b = GraphBuilder::new();
    let mut view_id_of: HashMap<VertexId, VertexId> = HashMap::new();
    for v in base_new.vertices() {
        let t = base_new.vertex_type(v);
        if t == def.src_type || t == def.dst_type {
            let nv = b.add_vertex(t);
            for (k, val) in base_new.vertex_props(v).iter() {
                b.set_vertex_prop(nv, base_new.resolve(k), val.clone());
            }
            view_id_of.insert(v, nv);
        }
    }

    let label = def.edge_label();
    // Copy edges of unaffected sources from the old view. Old view
    // vertex ids coincide with new view vertex ids for the prefix.
    let mut base_of_old_view: Vec<VertexId> = Vec::with_capacity(old_view.vertex_count());
    {
        let mut it = base_new.vertices().filter(|&v| {
            let t = base_new.vertex_type(v);
            t == def.src_type || t == def.dst_type
        });
        for _ in 0..old_view.vertex_count() {
            base_of_old_view.push(it.next().expect("old view is a prefix"));
        }
    }
    for e in old_view.edges() {
        let src_base = base_of_old_view[old_view.edge_src(e).index()];
        if affected.contains(&src_base) {
            continue; // recomputed below
        }
        let dst_base = base_of_old_view[old_view.edge_dst(e).index()];
        let ne = b.add_edge(view_id_of[&src_base], view_id_of[&dst_base], &label);
        for (k, val) in old_view.edge_props(e).iter() {
            b.set_edge_prop(ne, old_view.resolve(k), val.clone());
        }
    }

    // Recompute affected sources against the new base.
    let mut affected: Vec<VertexId> = affected.into_iter().collect();
    affected.sort();
    for u in affected {
        let mut frontier: HashMap<VertexId, i64> = HashMap::new();
        frontier.insert(u, i64::MIN);
        for _ in 0..def.k {
            let mut next: HashMap<VertexId, i64> = HashMap::new();
            for (&v, &acc) in &frontier {
                for (e, w) in base_new.out_edges(v) {
                    if let Some(required) = &def.etype {
                        if base_new.edge_type(e) != required {
                            continue;
                        }
                    }
                    let ts = base_new
                        .edge_prop(e, "ts")
                        .and_then(|p| p.as_int())
                        .unwrap_or(i64::MIN);
                    let cand = acc.max(ts);
                    next.entry(w)
                        .and_modify(|cur| *cur = (*cur).max(cand))
                        .or_insert(cand);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        let mut targets: Vec<(VertexId, i64)> = frontier
            .into_iter()
            .filter(|(v, _)| *v != u && base_new.vertex_type(*v) == def.dst_type)
            .collect();
        targets.sort_by_key(|(v, _)| *v);
        let nu = view_id_of[&u];
        for (v, ts) in targets {
            let e = b.add_edge(nu, view_id_of[&v], &label);
            if ts != i64::MIN {
                b.set_edge_prop(e, "ts", Value::Int(ts));
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::materialize_connector;

    /// Canonical edge multiset for graph comparison (view graphs may
    /// order edges differently between incremental and full builds).
    fn edge_fingerprint(g: &Graph) -> Vec<(u32, u32, String, Option<i64>)> {
        let mut v: Vec<_> = g
            .edges()
            .map(|e| {
                (
                    g.edge_src(e).0,
                    g.edge_dst(e).0,
                    g.edge_type(e).to_string(),
                    g.edge_prop(e, "ts").and_then(|p| p.as_int()),
                )
            })
            .collect();
        v.sort();
        v
    }

    fn lineage_base() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let e = b.add_edge(j0, f0, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(1));
        let e = b.add_edge(f0, j1, "IS_READ_BY");
        b.set_edge_prop(e, "ts", Value::Int(2));
        b.finish()
    }

    #[test]
    fn apply_delta_preserves_existing_ids() {
        let g = lineage_base();
        let mut d = GraphDelta::new();
        let f = d.add_vertex("File", vec![("bytes".into(), Value::Int(7))]);
        d.add_edge(VRef::Existing(VertexId(2)), f, "WRITES_TO", vec![]);
        let applied = apply_delta(&g, &d);
        assert_eq!(applied.graph.vertex_count(), 4);
        assert_eq!(applied.graph.edge_count(), 3);
        assert_eq!(applied.graph.vertex_type(VertexId(0)), "Job");
        assert_eq!(applied.new_vertices, vec![VertexId(3)]);
        assert_eq!(applied.new_edges, vec![(VertexId(2), VertexId(3))]);
        assert_eq!(
            applied.graph.vertex_prop(VertexId(3), "bytes"),
            Some(&Value::Int(7))
        );
    }

    #[test]
    fn merge_equals_sequential_application() {
        let g = lineage_base();
        // delta 1: new file written by the existing downstream job
        let mut d1 = GraphDelta::new();
        let f1 = d1.add_vertex("File", vec![]);
        d1.add_edge(
            VRef::Existing(VertexId(2)),
            f1,
            "WRITES_TO",
            vec![("ts".into(), Value::Int(3))],
        );
        // delta 2: references both an existing vertex and its *own* new
        // vertices, exercising the VRef::New re-indexing
        let mut d2 = GraphDelta::new();
        let j2 = d2.add_vertex("Job", vec![("CPU".into(), Value::Int(9))]);
        d2.add_edge(VRef::Existing(VertexId(1)), j2, "IS_READ_BY", vec![]);
        let f2 = d2.add_vertex("File", vec![]);
        d2.add_edge(j2, f2, "WRITES_TO", vec![("ts".into(), Value::Int(4))]);

        let sequential = apply_delta(&apply_delta(&g, &d1).graph, &d2).graph;
        let mut merged = d1.clone();
        merged.merge(&d2);
        let batched = apply_delta(&g, &merged).graph;
        assert_eq!(edge_fingerprint(&sequential), edge_fingerprint(&batched));
        assert_eq!(sequential.vertex_count(), batched.vertex_count());
        assert_eq!(
            batched.vertex_prop(VertexId(4), "CPU"),
            Some(&Value::Int(9))
        );
    }

    #[test]
    fn validate_catches_dangling_references() {
        let g = lineage_base(); // 3 vertices
        let mut ok = GraphDelta::new();
        let v = ok.add_vertex("File", vec![]);
        ok.add_edge(VRef::Existing(VertexId(2)), v, "WRITES_TO", vec![]);
        assert_eq!(ok.validate(g.vertex_count()), Ok(()));

        let mut dangling_existing = GraphDelta::new();
        let v = dangling_existing.add_vertex("File", vec![]);
        dangling_existing.add_edge(VRef::Existing(VertexId(99)), v, "WRITES_TO", vec![]);
        let err = dangling_existing.validate(g.vertex_count()).unwrap_err();
        assert!(matches!(err, DeltaError::DanglingExisting { .. }));
        assert!(err.to_string().contains("only 3 vertices"));

        let mut dangling_new = GraphDelta::new();
        dangling_new.add_edge(VRef::New(0), VRef::New(1), "WRITES_TO", vec![]);
        let err = dangling_new.validate(g.vertex_count()).unwrap_err();
        assert!(matches!(err, DeltaError::DanglingNew { .. }));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = lineage_base();
        let applied = apply_delta(&g, &GraphDelta::new());
        assert_eq!(applied.graph.vertex_count(), g.vertex_count());
        assert_eq!(applied.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn incremental_equals_full_rematerialization_simple() {
        let g = lineage_base();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let old_view = materialize_connector(&g, &def);
        assert_eq!(old_view.edge_count(), 1); // j0 -> j1

        // extend the pipeline: j1 writes f1, read by a new job j2
        let mut d = GraphDelta::new();
        let f1 = d.add_vertex("File", vec![]);
        let j2 = d.add_vertex("Job", vec![]);
        d.add_edge(
            VRef::Existing(VertexId(2)),
            f1,
            "WRITES_TO",
            vec![("ts".into(), Value::Int(3))],
        );
        d.add_edge(f1, j2, "IS_READ_BY", vec![("ts".into(), Value::Int(4))]);
        let applied = apply_delta(&g, &d);

        let incremental = maintain_connector(&old_view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.vertex_count(), full.vertex_count());
        assert_eq!(incremental.edge_count(), 2);
    }

    #[test]
    fn incremental_handles_edge_into_existing_structure() {
        // new read edge from an existing file to an existing job changes
        // the 2-hop frontier of the file's producer
        let g = lineage_base();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let old_view = materialize_connector(&g, &def);

        let mut d = GraphDelta::new();
        let j2 = d.add_vertex("Job", vec![]);
        d.add_edge(
            VRef::Existing(VertexId(1)), // f0
            j2,
            "IS_READ_BY",
            vec![("ts".into(), Value::Int(9))],
        );
        let applied = apply_delta(&g, &d);
        let incremental = maintain_connector(&old_view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.edge_count(), 2); // j0->j1 and j0->j2
    }

    #[test]
    fn incremental_on_randomized_growth() {
        use kaskade_datasets::{generate_provenance, ProvenanceConfig};
        let g = generate_provenance(&ProvenanceConfig::tiny(71).core_only());
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let mut view = materialize_connector(&g, &def);
        let mut base = g;

        // grow the graph in three waves, maintaining incrementally
        for wave in 0..3u64 {
            let mut d = GraphDelta::new();
            let files: Vec<VertexId> = base.vertices_of_type("File").collect();
            let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(5))]);
            // new job reads two existing files and writes one new file
            for (i, f) in files.iter().rev().take(2).enumerate() {
                d.add_edge(
                    VRef::Existing(*f),
                    j,
                    "IS_READ_BY",
                    vec![("ts".into(), Value::Int(1000 + wave as i64 * 10 + i as i64))],
                );
            }
            let nf = d.add_vertex("File", vec![]);
            d.add_edge(
                j,
                nf,
                "WRITES_TO",
                vec![("ts".into(), Value::Int(1005 + wave as i64 * 10))],
            );
            let applied = apply_delta(&base, &d);
            view = maintain_connector(&view, &applied, &def);
            let full = materialize_connector(&applied.graph, &def);
            assert_eq!(
                edge_fingerprint(&view),
                edge_fingerprint(&full),
                "wave {wave}"
            );
            base = applied.graph;
        }
    }

    #[test]
    fn incremental_respects_same_edge_type_restriction() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        b.add_edge(a, c, "F");
        let g = b.finish();
        let def = ConnectorDef::same_edge_type("V", "V", 2, "F");
        let old_view = materialize_connector(&g, &def);
        assert_eq!(old_view.edge_count(), 0);

        // add c -G-> d (wrong type) and c -F-> e (right type)
        let mut d = GraphDelta::new();
        let vd = d.add_vertex("V", vec![]);
        let ve = d.add_vertex("V", vec![]);
        d.add_edge(VRef::Existing(c), vd, "G", vec![]);
        d.add_edge(VRef::Existing(c), ve, "F", vec![]);
        let applied = apply_delta(&g, &d);
        let incremental = maintain_connector(&old_view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.edge_count(), 1); // a -F-> c -F-> e only
    }
}
