//! Incremental view maintenance for insert **and delete** workloads.
//!
//! The paper traces graph views back to Zhuge & Garcia-Molina's work on
//! graph-structured views *and their incremental maintenance* (§VIII).
//! A [`GraphDelta`] batches vertex/edge insertions *and retractions*;
//! applying it to the base graph preserves every existing id
//! (retraction tombstones a slot, it never renumbers — see
//! `kaskade-graph`'s editor), and materialized connector views are
//! refreshed by recomputing **only the affected sources**: vertices
//! within `k-1` hops upstream of any inserted edge (over the new base)
//! or of any retracted edge (over the old base), instead of
//! re-materializing from scratch.
//!
//! Deletion correctness rests on per-edge **provenance counts**: every
//! connector edge carries a `support` property counting the exact-`k`
//! walks that witness it. A base-edge retraction re-derives the support
//! of the affected sources' edges, so a view edge survives as long as
//! at least one witness walk remains and disappears exactly when the
//! last witness dies — `ts` aggregates simultaneously fall back to the
//! best surviving walk (a plain decrement could not do that).
//!
//! Retractions are **identity-targeted**: a [`DelEdge`] names
//! `(src, dst, etype)` and removes the newest live matching edge
//! (LIFO). Naming edges by identity rather than by edge id is what
//! makes retraction well-defined for clients that only ever see
//! published snapshots — and it gives [`GraphDelta::merge`] a sound
//! cancellation rule: a retraction that matches an insert still pending
//! in the merged batch cancels the pair outright.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use kaskade_graph::{
    DegreeChange, ExternalIdTable, Graph, GraphBuilder, GraphEditor, IdRemap, ParallelExec,
    ScopedExec, Value, VertexId,
};

use crate::views::ConnectorDef;

/// A reference to a vertex in a delta: either an existing base-graph
/// vertex or the i-th new vertex of the same delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VRef {
    /// An existing base-graph vertex (ids are stable under
    /// [`apply_delta`] — even across retractions, which tombstone slots
    /// instead of renumbering).
    Existing(VertexId),
    /// The i-th vertex of [`GraphDelta::vertices`].
    New(usize),
    /// A vertex named by its permanent **external id** (see
    /// [`kaskade_graph::ExternalIdTable`]). External references are
    /// epoch-free: they survive any number of compactions, so a client
    /// addressing vertices this way can never be staleness-rejected.
    /// The serving writer resolves them to [`VRef::Existing`] /
    /// [`VRef::New`] with [`GraphDelta::resolve_external`] before
    /// validation and apply; [`apply_delta`] panics on an unresolved
    /// external reference.
    External(u64),
}

/// A vertex to insert.
#[derive(Debug, Clone, PartialEq)]
pub struct NewVertex {
    /// Vertex type name.
    pub vtype: String,
    /// Initial properties.
    pub props: Vec<(String, Value)>,
    /// Whether the vertex is inserted as a **ghost** — a shard-local
    /// replica of a vertex owned by another shard. Sub-deltas produced
    /// by [`GraphDelta::split`] broadcast every vertex insertion to
    /// every shard (keeping id slots aligned), ghost everywhere except
    /// on the owner. Always `false` for deltas built through
    /// [`GraphDelta::add_vertex`].
    pub ghost: bool,
    /// Permanent external id to bind to the vertex at apply time, if
    /// the client wants a compaction-stable name for it (see
    /// [`GraphDelta::add_vertex_ext`]). Binding a key that is already
    /// live rejects the delta with [`DeltaError::DuplicateExternal`].
    pub ext: Option<u64>,
}

/// An edge to insert.
#[derive(Debug, Clone, PartialEq)]
pub struct NewEdge {
    /// Source vertex.
    pub src: VRef,
    /// Destination vertex.
    pub dst: VRef,
    /// Edge type name.
    pub etype: String,
    /// Initial properties.
    pub props: Vec<(String, Value)>,
}

/// An edge retraction, targeted by identity: removes the **newest**
/// live edge `src -[:etype]-> dst` of the base graph (a no-op if no
/// such edge remains, e.g. because a concurrent earlier batch already
/// retracted it).
#[derive(Debug, Clone, PartialEq)]
pub struct DelEdge {
    /// Source vertex of the edge to retract.
    pub src: VRef,
    /// Destination vertex of the edge to retract.
    pub dst: VRef,
    /// Edge type name of the edge to retract.
    pub etype: String,
    /// How many pending inserts of this delta preceded the retraction —
    /// the cancellation window [`GraphDelta::merge`] uses to replay
    /// operations in their original order.
    pub(crate) pending_seen: usize,
}

/// A batch of insertions and retractions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    /// Vertices to add.
    pub vertices: Vec<NewVertex>,
    /// Edges to add (may reference both existing and new vertices).
    pub edges: Vec<NewEdge>,
    /// Edge retractions (identity-targeted; see [`DelEdge`]).
    pub del_edges: Vec<DelEdge>,
    /// Vertices to retract, with every incident edge (a no-op for
    /// vertices already dead).
    pub del_vertices: Vec<VertexId>,
    /// Vertices to retract by **external id** (see
    /// [`GraphDelta::del_vertex_ext`]). Resolution drains these into
    /// [`GraphDelta::del_vertices`]; an id bound to nothing is a no-op,
    /// matching how slot-addressed retractions tolerate concurrent
    /// death.
    pub del_vertices_ext: Vec<u64>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a vertex insertion, returning its [`VRef`].
    pub fn add_vertex(&mut self, vtype: &str, props: Vec<(String, Value)>) -> VRef {
        self.vertices.push(NewVertex {
            vtype: vtype.to_string(),
            props,
            ghost: false,
            ext: None,
        });
        VRef::New(self.vertices.len() - 1)
    }

    /// Queues a vertex insertion bound to the permanent external id
    /// `ext`, returning its [`VRef`]. Later deltas — arbitrarily far in
    /// the future, across any number of compactions and restarts — can
    /// address the vertex as [`VRef::External`]`(ext)`.
    pub fn add_vertex_ext(&mut self, vtype: &str, ext: u64, props: Vec<(String, Value)>) -> VRef {
        self.vertices.push(NewVertex {
            vtype: vtype.to_string(),
            props,
            ghost: false,
            ext: Some(ext),
        });
        VRef::New(self.vertices.len() - 1)
    }

    /// Queues a vertex retraction by external id (cascades like
    /// [`GraphDelta::del_vertex`]; a no-op if the id is bound to
    /// nothing by apply time).
    pub fn del_vertex_ext(&mut self, ext: u64) {
        self.del_vertices_ext.push(ext);
    }

    /// Queues an edge insertion.
    pub fn add_edge(&mut self, src: VRef, dst: VRef, etype: &str, props: Vec<(String, Value)>) {
        self.edges.push(NewEdge {
            src,
            dst,
            etype: etype.to_string(),
            props,
        });
    }

    /// Queues an edge retraction. If an insert of the very same
    /// `(src, dst, etype)` is still pending in this delta, the newest
    /// such insert is cancelled instead (insert-then-delete pairs net
    /// to nothing); otherwise the retraction targets the newest live
    /// matching edge of the base graph at apply time.
    pub fn del_edge(&mut self, src: VRef, dst: VRef, etype: &str) {
        if let Some(i) = self
            .edges
            .iter()
            .rposition(|e| e.src == src && e.dst == dst && e.etype == etype)
        {
            self.edges.remove(i);
            // recorded retractions count pending inserts before them;
            // removing insert i shifts the later ones down
            for d in &mut self.del_edges {
                if d.pending_seen > i {
                    d.pending_seen -= 1;
                }
            }
            return;
        }
        self.del_edges.push(DelEdge {
            src,
            dst,
            etype: etype.to_string(),
            pending_seen: self.edges.len(),
        });
    }

    /// Queues a vertex retraction (cascades to every incident edge at
    /// apply time, including edges this same batch inserts).
    pub fn del_vertex(&mut self, v: VertexId) {
        self.del_vertices.push(v);
    }

    /// Whether the delta contains nothing.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
            && self.edges.is_empty()
            && self.del_edges.is_empty()
            && self.del_vertices.is_empty()
            && self.del_vertices_ext.is_empty()
    }

    /// Whether any reference in this delta names a base-graph **slot**
    /// ([`VRef::Existing`] endpoints or [`GraphDelta::del_vertices`]
    /// entries). Slot references are epoch-bound — they need rebasing
    /// through compaction remaps — while [`VRef::New`] and
    /// [`VRef::External`] references are not, so a delta without slot
    /// references can never be staleness-rejected.
    pub fn has_slot_refs(&self) -> bool {
        let slot = |r: &VRef| matches!(r, VRef::Existing(_));
        !self.del_vertices.is_empty()
            || self.edges.iter().any(|e| slot(&e.src) || slot(&e.dst))
            || self.del_edges.iter().any(|d| slot(&d.src) || slot(&d.dst))
    }

    /// Resolves every [`VRef::External`] reference (and drains
    /// [`GraphDelta::del_vertices_ext`]) against the writer's
    /// external-id `table`, the current base `graph`, and the
    /// already-merged `batch` delta this delta is about to join:
    ///
    /// - An external id declared by **this delta's own**
    ///   [`NewVertex::ext`] resolves to the matching [`VRef::New`].
    /// - An id declared by a vertex **pending in `batch`** resolves to
    ///   that vertex's predicted slot (`graph.vertex_slots()` + its
    ///   batch index — exactly where apply will put it).
    /// - An id **live in `table`** resolves to its current slot.
    /// - Anything else: edge-insert endpoints reject the delta with
    ///   [`DeltaError::UnknownExternal`]; retractions become no-ops
    ///   (dropped), matching slot-addressed retraction semantics under
    ///   concurrent death.
    ///
    /// Declaring an external id that is already live or already pending
    /// rejects the delta with [`DeltaError::DuplicateExternal`] —
    /// external ids are permanent names, not aliases. After a
    /// successful resolution the delta contains no external references
    /// and validates/applies exactly like a slot-addressed delta.
    pub fn resolve_external(
        &mut self,
        table: &ExternalIdTable,
        graph: &Graph,
        batch: &GraphDelta,
    ) -> Result<(), DeltaError> {
        let slots = graph.vertex_slots();
        let mut batch_pending: HashMap<u64, VertexId> = HashMap::new();
        for (j, nv) in batch.vertices.iter().enumerate() {
            if let Some(x) = nv.ext {
                batch_pending.insert(x, VertexId((slots + j) as u32));
            }
        }
        let mut local: HashMap<u64, usize> = HashMap::new();
        for (i, nv) in self.vertices.iter().enumerate() {
            if let Some(x) = nv.ext {
                if table.get(x).is_some()
                    || batch_pending.contains_key(&x)
                    || local.insert(x, i).is_some()
                {
                    return Err(DeltaError::DuplicateExternal { ext: x });
                }
            }
        }
        let lookup = |x: u64| -> Option<VRef> {
            if let Some(&i) = local.get(&x) {
                Some(VRef::New(i))
            } else if let Some(&v) = batch_pending.get(&x) {
                Some(VRef::Existing(v))
            } else {
                table.get(x).map(VRef::Existing)
            }
        };
        for (i, e) in self.edges.iter_mut().enumerate() {
            for r in [&mut e.src, &mut e.dst] {
                if let VRef::External(x) = *r {
                    *r = lookup(x).ok_or(DeltaError::UnknownExternal { edge: i, ext: x })?;
                }
            }
        }
        self.del_edges.retain_mut(|d| {
            for r in [&mut d.src, &mut d.dst] {
                if let VRef::External(x) = *r {
                    match lookup(x) {
                        Some(resolved) => *r = resolved,
                        None => return false, // nothing to retract: no-op
                    }
                }
            }
            true
        });
        for x in std::mem::take(&mut self.del_vertices_ext) {
            // own-delta declarations are not consulted: creating and
            // deleting the same external id within one delta is not
            // supported (the retraction is a no-op, like retracting an
            // id that never existed)
            if let Some(&v) = batch_pending.get(&x) {
                self.del_vertices.push(v);
            } else if let Some(v) = table.get(x) {
                self.del_vertices.push(v);
            }
        }
        Ok(())
    }

    /// Checks that every reference resolves: [`VRef::New`] indices must
    /// point into this delta's vertex list, and [`VRef::Existing`] ids
    /// (and retracted vertex ids) must be below `vertex_slots` — the
    /// base graph's **slot** count at apply time. [`apply_delta`]
    /// panics on dangling references; callers that accept deltas from
    /// untrusted sources (the serving runtime) validate first and
    /// reject instead. See [`GraphDelta::validate_against`] for the
    /// variant that also rejects references to tombstoned vertices.
    pub fn validate(&self, vertex_slots: usize) -> Result<(), DeltaError> {
        for (i, e) in self.edges.iter().enumerate() {
            for r in [e.src, e.dst] {
                match r {
                    VRef::Existing(v) if v.index() >= vertex_slots => {
                        return Err(DeltaError::DanglingExisting {
                            edge: i,
                            vertex: v,
                            vertex_count: vertex_slots,
                        });
                    }
                    VRef::New(n) if n >= self.vertices.len() => {
                        return Err(DeltaError::DanglingNew {
                            edge: i,
                            index: n,
                            new_vertices: self.vertices.len(),
                        });
                    }
                    _ => {}
                }
            }
        }
        for (i, d) in self.del_edges.iter().enumerate() {
            for r in [d.src, d.dst] {
                match r {
                    VRef::Existing(v) if v.index() >= vertex_slots => {
                        return Err(DeltaError::DanglingRetraction {
                            index: i,
                            vertex: v,
                            vertex_count: vertex_slots,
                        });
                    }
                    // a New reference in a surviving retraction matched
                    // no pending insert: it can never resolve (the base
                    // graph cannot contain a vertex this delta adds)
                    VRef::New(_) => {
                        return Err(DeltaError::UnmatchedNewRetraction { index: i });
                    }
                    _ => {}
                }
            }
        }
        for (i, &v) in self.del_vertices.iter().enumerate() {
            if v.index() >= vertex_slots {
                return Err(DeltaError::DanglingRetraction {
                    index: i,
                    vertex: v,
                    vertex_count: vertex_slots,
                });
            }
        }
        Ok(())
    }

    /// Like [`GraphDelta::validate`], but checked against an actual
    /// graph: edge-insert endpoints must additionally be **live**
    /// (tombstoned targets are rejected — inserting onto a deleted
    /// vertex can never apply). `pending_extra` extends the valid id
    /// range past the graph's slots, for deltas that will apply after
    /// earlier deltas of the same batch appended vertices. Retraction
    /// targets are only bounds-checked: retracting something already
    /// dead is a legitimate no-op under concurrent churn.
    pub fn validate_against(&self, g: &Graph, pending_extra: usize) -> Result<(), DeltaError> {
        let slots = g.vertex_slots();
        self.validate(slots + pending_extra)?;
        for (i, e) in self.edges.iter().enumerate() {
            for r in [e.src, e.dst] {
                if let VRef::Existing(v) = r {
                    if v.index() < slots && !g.is_vertex_live(v) {
                        return Err(DeltaError::DeadExisting { edge: i, vertex: v });
                    }
                }
            }
        }
        Ok(())
    }

    /// Appends `other` onto this delta, re-indexing `other`'s
    /// [`VRef::New`] references past this delta's vertices. Applying
    /// the merged delta once is equivalent to applying the two deltas
    /// in sequence — the primitive behind write batching in the serving
    /// runtime (one view refresh per batch instead of per delta).
    ///
    /// `other`'s edge operations are replayed in their original
    /// interleaved order, so a retraction can cancel pending inserts
    /// that preceded it (anywhere in `self`, or earlier in `other`) but
    /// never an insert recorded after it — that is what keeps
    /// delete-then-reinsert sequences intact while insert-then-delete
    /// pairs cancel.
    ///
    /// # Errors
    /// Sequential equivalence requires that every merged delta could
    /// apply in sequence. If `self` retracts a vertex that an edge of
    /// `other` references, sequential application would *reject*
    /// `other` (edge onto a dead vertex), while the merged delta would
    /// insert the edge and then cascade it away. `merge` therefore
    /// refuses such a pair with [`DeltaError::RetractedInBatch`],
    /// leaving `self` unchanged — the caller drops `other` exactly as
    /// the sequential path would have.
    pub fn merge(&mut self, other: &GraphDelta) -> Result<(), DeltaError> {
        // reject-before-mutate: an edge of `other` onto a vertex this
        // delta retracts can never apply sequentially
        for (i, e) in other.edges.iter().enumerate() {
            for r in [e.src, e.dst] {
                if let VRef::Existing(v) = r {
                    if self.del_vertices.contains(&v) {
                        return Err(DeltaError::RetractedInBatch { edge: i, vertex: v });
                    }
                }
            }
        }
        let base = self.vertices.len();
        let shift = |r: VRef| match r {
            VRef::New(i) => VRef::New(i + base),
            existing => existing,
        };
        self.vertices.extend(other.vertices.iter().cloned());
        let mut dels = other.del_edges.iter().peekable();
        for j in 0..=other.edges.len() {
            while dels.peek().is_some_and(|d| d.pending_seen <= j) {
                let d = dels.next().unwrap();
                self.del_edge(shift(d.src), shift(d.dst), &d.etype);
            }
            if let Some(e) = other.edges.get(j) {
                self.edges.push(NewEdge {
                    src: shift(e.src),
                    dst: shift(e.dst),
                    etype: e.etype.clone(),
                    props: e.props.clone(),
                });
            }
        }
        self.del_vertices.extend(other.del_vertices.iter().copied());
        self.del_vertices_ext
            .extend(other.del_vertices_ext.iter().copied());
        Ok(())
    }

    /// Rebases this delta from the id space an [`IdRemap`] was taken
    /// in to the post-compaction id space, so a delta queued against a
    /// pre-compaction snapshot still applies correctly afterwards:
    ///
    /// - **Edge-insert endpoints** translate through the remap. An
    ///   endpoint whose slot was dropped referenced a vertex that was
    ///   already dead — sequentially the delta would be rejected
    ///   (`DeadExisting`), so the reference is poisoned to an
    ///   out-of-range id and apply-time validation rejects the whole
    ///   delta the same way.
    /// - **Retractions** (edge and vertex) whose target slot was
    ///   dropped are removed outright: retracting something already
    ///   dead is a legitimate no-op under concurrent churn, and it
    ///   must stay a no-op rather than turn into a bounds error.
    /// - [`VRef::New`] references are untouched (they index this
    ///   delta's own vertex list).
    ///
    /// Ids past the remap's [`old_slots`](IdRemap::old_slots) map by
    /// append order, so a remap also rebases deltas built against
    /// states that grew past the compaction point.
    pub fn remap(&mut self, remap: &IdRemap) {
        let map_ref = |r: VRef| -> Option<VRef> {
            match r {
                VRef::Existing(v) => remap.vertex(v).map(VRef::Existing),
                new => Some(new),
            }
        };
        for e in &mut self.edges {
            for r in [&mut e.src, &mut e.dst] {
                *r = map_ref(*r).unwrap_or(VRef::Existing(VertexId(u32::MAX)));
            }
        }
        self.del_edges.retain_mut(|d| {
            let (Some(s), Some(t)) = (map_ref(d.src), map_ref(d.dst)) else {
                return false;
            };
            d.src = s;
            d.dst = t;
            true
        });
        self.del_vertices = self
            .del_vertices
            .iter()
            .filter_map(|&v| remap.vertex(v))
            .collect();
    }

    /// Splits this delta into one sub-delta per shard, for the sharded
    /// serving runtime's router:
    ///
    /// - **Vertex insertions are broadcast**: every sub-delta carries
    ///   the full vertex list in order (so [`VRef::New`] indices — and,
    ///   after apply, id slots — stay aligned across shards), marked
    ///   ghost everywhere except on the shard `owner_new` names.
    /// - **Edge insertions and edge retractions route to the shard
    ///   owning the edge's source vertex** (`owner_existing` for base
    ///   vertices, `owner_new` for vertices this delta adds), the
    ///   shard that stores the edge. Original operation order is
    ///   replayed per shard, preserving delete-then-reinsert semantics.
    /// - **Vertex retractions are broadcast**: each shard cascades the
    ///   removal to its locally stored incident edges; the union of
    ///   those cascades is exactly the global cascade.
    ///
    /// Applying sub-delta `i` to shard `i` of a graph partitioned with
    /// the same ownership is equivalent to applying `self` to the whole
    /// graph and re-partitioning (asserted by tests).
    pub fn split(
        &self,
        shards: usize,
        owner_existing: &dyn Fn(VertexId) -> usize,
        owner_new: &dyn Fn(usize) -> usize,
    ) -> Vec<GraphDelta> {
        let shards = shards.max(1);
        let clamp = |s: usize| s.min(shards - 1);
        let mut subs = vec![GraphDelta::new(); shards];
        for (i, nv) in self.vertices.iter().enumerate() {
            let owner = clamp(owner_new(i));
            for (s, sub) in subs.iter_mut().enumerate() {
                sub.vertices.push(NewVertex {
                    ghost: nv.ghost || s != owner,
                    ..nv.clone()
                });
            }
        }
        let owner_of = |r: VRef| {
            clamp(match r {
                VRef::Existing(v) => owner_existing(v),
                VRef::New(i) => owner_new(i),
                VRef::External(x) => panic!(
                    "split requires a resolved delta, found external reference {x} \
                     (call GraphDelta::resolve_external first)"
                ),
            })
        };
        // replay edge operations in their original interleaved order so
        // each shard records retractions with the right pending window
        let mut dels = self.del_edges.iter().peekable();
        for j in 0..=self.edges.len() {
            while dels.peek().is_some_and(|d| d.pending_seen <= j) {
                let d = dels.next().unwrap();
                let sub = &mut subs[owner_of(d.src)];
                // surviving retractions matched no earlier pending
                // insert globally, so they cannot match one in the
                // (sub)sequence either — push directly, keeping the
                // per-shard pending window
                sub.del_edges.push(DelEdge {
                    src: d.src,
                    dst: d.dst,
                    etype: d.etype.clone(),
                    pending_seen: sub.edges.len(),
                });
            }
            if let Some(e) = self.edges.get(j) {
                subs[owner_of(e.src)].edges.push(e.clone());
            }
        }
        for sub in &mut subs {
            sub.del_vertices.extend(self.del_vertices.iter().copied());
            sub.del_vertices_ext
                .extend(self.del_vertices_ext.iter().copied());
        }
        subs
    }
}

/// A structurally invalid [`GraphDelta`], reported by
/// [`GraphDelta::validate`] / [`GraphDelta::validate_against`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge referenced a base-graph vertex id past the graph's end.
    DanglingExisting {
        /// Index of the offending edge in [`GraphDelta::edges`].
        edge: usize,
        /// The out-of-range vertex reference.
        vertex: VertexId,
        /// The base graph's vertex slot count the delta was checked
        /// against.
        vertex_count: usize,
    },
    /// An edge referenced a new-vertex index past the delta's own list.
    DanglingNew {
        /// Index of the offending edge in [`GraphDelta::edges`].
        edge: usize,
        /// The out-of-range [`VRef::New`] index.
        index: usize,
        /// Number of vertices the delta actually declares.
        new_vertices: usize,
    },
    /// An edge referenced a base-graph vertex that has been retracted.
    DeadExisting {
        /// Index of the offending edge in [`GraphDelta::edges`].
        edge: usize,
        /// The tombstoned vertex reference.
        vertex: VertexId,
    },
    /// A retraction referenced a vertex id past the graph's end.
    DanglingRetraction {
        /// Index in [`GraphDelta::del_edges`] or
        /// [`GraphDelta::del_vertices`].
        index: usize,
        /// The out-of-range vertex reference.
        vertex: VertexId,
        /// The base graph's vertex slot count the delta was checked
        /// against.
        vertex_count: usize,
    },
    /// An edge retraction referenced one of the delta's own new
    /// vertices but matched no pending insert — it can never resolve.
    UnmatchedNewRetraction {
        /// Index of the offending entry in [`GraphDelta::del_edges`].
        index: usize,
    },
    /// [`GraphDelta::merge`] refused the delta: one of its edges
    /// references a vertex an earlier delta of the same batch
    /// retracts, so sequential application could never accept it.
    RetractedInBatch {
        /// Index of the offending edge in the refused delta's
        /// [`GraphDelta::edges`].
        edge: usize,
        /// The vertex retracted earlier in the batch.
        vertex: VertexId,
    },
    /// An edge referenced an external id that is bound to nothing —
    /// neither a live vertex nor a vertex pending in the same batch.
    UnknownExternal {
        /// Index of the offending edge in [`GraphDelta::edges`].
        edge: usize,
        /// The unbound external id.
        ext: u64,
    },
    /// The delta declares an external id that is already bound (to a
    /// live vertex, a batch-pending vertex, or another vertex of the
    /// same delta). External ids are permanent names — rebinding one is
    /// always a client error.
    DuplicateExternal {
        /// The already-bound external id.
        ext: u64,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::DanglingExisting {
                edge,
                vertex,
                vertex_count,
            } => write!(
                f,
                "delta edge {edge} references base vertex {vertex} but the graph has only {vertex_count} vertices"
            ),
            DeltaError::DanglingNew {
                edge,
                index,
                new_vertices,
            } => write!(
                f,
                "delta edge {edge} references new vertex {index} but the delta declares only {new_vertices}"
            ),
            DeltaError::DeadExisting { edge, vertex } => write!(
                f,
                "delta edge {edge} references base vertex {vertex}, which has been retracted"
            ),
            DeltaError::DanglingRetraction {
                index,
                vertex,
                vertex_count,
            } => write!(
                f,
                "delta retraction {index} references base vertex {vertex} but the graph has only {vertex_count} vertex slots"
            ),
            DeltaError::UnmatchedNewRetraction { index } => write!(
                f,
                "delta retraction {index} references a new vertex of the same delta but matches no pending insert"
            ),
            DeltaError::RetractedInBatch { edge, vertex } => write!(
                f,
                "delta edge {edge} references vertex {vertex}, retracted earlier in the same batch"
            ),
            DeltaError::UnknownExternal { edge, ext } => write!(
                f,
                "delta edge {edge} references external id {ext}, which is bound to nothing"
            ),
            DeltaError::DuplicateExternal { ext } => write!(
                f,
                "delta declares external id {ext}, which is already bound"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of applying a delta: the new base graph plus the resolved
/// ids of everything the delta touched — what incremental view and
/// statistics maintenance consume.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The new base graph. Existing vertex and edge ids are unchanged
    /// (retraction tombstones, it never renumbers); new vertices/edges
    /// are appended.
    pub graph: Graph,
    /// The base graph the delta was applied to (an O(1) handle — the
    /// payload is shared). Deletion-side maintenance walks *this* graph
    /// to find sources whose walks died.
    pub base_old: Graph,
    /// Ids of the newly inserted vertices, in delta order.
    pub new_vertices: Vec<VertexId>,
    /// Resolved `(src, dst)` endpoints of the newly inserted edges.
    pub new_edges: Vec<(VertexId, VertexId)>,
    /// Resolved `(src, dst)` endpoints of every retracted edge,
    /// including edges cascaded from vertex retractions.
    pub deleted_edges: Vec<(VertexId, VertexId)>,
    /// Ids of the retracted vertices (those that were actually live).
    pub deleted_vertices: Vec<VertexId>,
}

/// Applies a delta to a graph. Existing ids are preserved — new
/// elements are appended, retracted elements are tombstoned in place —
/// so [`VRef::Existing`] references remain valid across repeated
/// applications.
///
/// Edge retractions remove the newest live matching base edge (LIFO; a
/// retraction with no live match is a no-op). Vertex retractions
/// cascade to every incident edge, including edges inserted by the same
/// delta.
///
/// # Panics
/// Panics if a [`VRef::New`] index is out of range of the delta, or if
/// an inserted edge references an out-of-range or tombstoned vertex.
/// Untrusted deltas should be checked with
/// [`GraphDelta::validate_against`] first.
pub fn apply_delta(g: &Graph, delta: &GraphDelta) -> AppliedDelta {
    let mut ed = g.edit();
    let staged = stage_delta(g, delta, &mut ed);
    staged.into_applied(ed.finish(), g.clone())
}

/// The resolved ids of everything a staged delta touched — the first
/// half of [`apply_delta`], before the editor freezes. Callers that
/// freeze through a different path (the sharded coordinator assembles
/// its global CSR from the shard CSRs instead of
/// [`kaskade_graph::GraphEditor::finish`]) combine this with their own
/// graph via [`StagedDelta::into_applied`].
#[derive(Debug, Clone)]
pub struct StagedDelta {
    /// Ids of the newly inserted vertices, in delta order.
    pub new_vertices: Vec<VertexId>,
    /// Resolved `(src, dst)` endpoints of the newly inserted edges.
    pub new_edges: Vec<(VertexId, VertexId)>,
    /// Resolved `(src, dst)` endpoints of every retracted edge,
    /// including edges cascaded from vertex retractions.
    pub deleted_edges: Vec<(VertexId, VertexId)>,
    /// Ids of the retracted vertices (those that were actually live).
    pub deleted_vertices: Vec<VertexId>,
}

impl StagedDelta {
    /// Pairs this staging record with the frozen `graph` it produced
    /// (and the base it was staged over) into an [`AppliedDelta`].
    pub fn into_applied(self, graph: Graph, base_old: Graph) -> AppliedDelta {
        AppliedDelta {
            graph,
            base_old,
            new_vertices: self.new_vertices,
            new_edges: self.new_edges,
            deleted_edges: self.deleted_edges,
            deleted_vertices: self.deleted_vertices,
        }
    }
}

/// Stages `delta` onto an open editor over `g`: appends the new
/// vertices and edges, tombstones retractions (LIFO edge matching,
/// vertex cascades) — exactly the mutation half of [`apply_delta`],
/// shared between it and the sharded merge publish. `ed` must be a
/// fresh editor over `g`.
///
/// # Panics
/// Same contract as [`apply_delta`].
pub fn stage_delta(g: &Graph, delta: &GraphDelta, ed: &mut GraphEditor) -> StagedDelta {
    let mut new_vertices = Vec::with_capacity(delta.vertices.len());
    for nv in &delta.vertices {
        let id = if nv.ghost {
            ed.add_ghost_vertex(&nv.vtype)
        } else {
            ed.add_vertex(&nv.vtype)
        };
        for (k, val) in &nv.props {
            ed.set_vertex_prop(id, k, val.clone());
        }
        new_vertices.push(id);
    }
    let resolve = |r: VRef| -> VertexId {
        match r {
            VRef::Existing(v) => v,
            VRef::New(i) => new_vertices[i],
            VRef::External(x) => panic!(
                "apply requires a resolved delta, found external reference {x} \
                 (call GraphDelta::resolve_external first)"
            ),
        }
    };
    let mut new_edges = Vec::with_capacity(delta.edges.len());
    for ne in &delta.edges {
        let (s, d) = (resolve(ne.src), resolve(ne.dst));
        let id = ed.add_edge(s, d, &ne.etype);
        for (k, val) in &ne.props {
            ed.set_edge_prop(id, k, val.clone());
        }
        new_edges.push((s, d));
    }
    // Retractions resolve against the *base* graph only: any retraction
    // that should have hit an in-batch insert was already cancelled by
    // del_edge/merge, so remaining ones never target edges added above.
    let mut deleted_edges = Vec::new();
    for de in &delta.del_edges {
        let (s, d) = (resolve(de.src), resolve(de.dst));
        if s.index() >= g.vertex_slots() {
            continue; // staged source: nothing in the base to retract
        }
        let newest = g
            .out_edges(s)
            .filter(|&(e, w)| w == d && g.edge_type(e) == de.etype && ed.is_edge_live(e))
            .map(|(e, _)| e)
            .max();
        if let Some(e) = newest {
            ed.remove_edge(e);
            deleted_edges.push((s, d));
        }
    }
    let mut deleted_vertices = Vec::new();
    for &v in &delta.del_vertices {
        if !ed.is_vertex_live(v) {
            continue; // already dead (possibly retracted twice in-batch)
        }
        let removed = ed.remove_vertex(v);
        deleted_edges.extend(removed.iter().map(|&(_, s, d)| (s, d)));
        deleted_vertices.push(v);
    }
    StagedDelta {
        new_vertices,
        new_edges,
        deleted_edges,
        deleted_vertices,
    }
}

/// Per-vertex out-degree changes implied by an applied delta — the
/// input `GraphStats::with_changes` needs to update statistics without
/// rescanning the graph. Only vertices whose out-degree, existence, or
/// liveness changed are listed (sources of inserted/retracted edges,
/// inserted vertices, retracted vertices).
pub fn stat_changes(applied: &AppliedDelta) -> Vec<DegreeChange> {
    let old = &applied.base_old;
    let new = &applied.graph;
    let mut touched: BTreeSet<VertexId> = BTreeSet::new();
    touched.extend(applied.new_edges.iter().map(|&(s, _)| s));
    touched.extend(applied.deleted_edges.iter().map(|&(s, _)| s));
    touched.extend(applied.new_vertices.iter().copied());
    touched.extend(applied.deleted_vertices.iter().copied());
    touched
        .into_iter()
        // ghosts never contribute to statistics: their degree is
        // tracked on the shard that owns them (a ghost has no local
        // out-edges — edges route to their source's owner), and the
        // flag is immutable, so checking the new graph suffices
        .filter(|&v| !applied.graph.is_vertex_ghost(v))
        .map(|v| {
            let before = (v.index() < old.vertex_slots() && old.is_vertex_live(v))
                .then(|| old.out_degree(v));
            let after = new.is_vertex_live(v).then(|| new.out_degree(v));
            DegreeChange {
                vtype: new.vertex_type(v).to_string(),
                before,
                after,
            }
        })
        .collect()
}

/// Sources whose exact-`k` frontier can change after the delta: any
/// vertex of the connector's source type within `k-1` **backward** hops
/// of an inserted edge's source endpoint (over the new base graph) or
/// of a retracted edge's source endpoint (over the *old* base graph —
/// the walks that died only exist there), plus any newly inserted
/// source-type vertex. Vertices retracted by the delta are excluded:
/// they no longer appear in the view at all.
fn affected_sources(def: &ConnectorDef, applied: &AppliedDelta) -> HashSet<VertexId> {
    let base_new = &applied.graph;
    let base_old = &applied.base_old;
    let mut affected = HashSet::new();
    let mut backward = |g: &Graph, s: VertexId| {
        // backward BFS up to k-1 hops, including s itself
        let mut visited = HashSet::new();
        visited.insert(s);
        let mut queue = VecDeque::from([(s, 0usize)]);
        while let Some((v, d)) = queue.pop_front() {
            if g.vertex_type(v) == def.src_type {
                affected.insert(v);
            }
            if d + 1 > def.k.saturating_sub(1) {
                continue;
            }
            for w in g.in_neighbors(v) {
                if visited.insert(w) {
                    queue.push_back((w, d + 1));
                }
            }
        }
    };
    for &(s, _) in &applied.new_edges {
        backward(base_new, s);
    }
    for &(s, _) in &applied.deleted_edges {
        if s.index() < base_old.vertex_slots() {
            backward(base_old, s);
        }
    }
    for &v in &applied.new_vertices {
        if base_new.is_vertex_live(v) && base_new.vertex_type(v) == def.src_type {
            affected.insert(v);
        }
    }
    affected.retain(|&v| base_new.is_vertex_live(v));
    affected
}

/// The connector refresh engine behind the connector
/// [`crate::refresh::ViewMaintainer`] impl. `old_view` must be the
/// connector materialized over `base_old` and `applied` the result of
/// applying the delta to `base_old`. Unaffected sources' connector
/// edges — including their `ts` and provenance `support` properties —
/// are copied from the old view; affected sources are recomputed
/// against the new base, which re-derives each surviving edge's support
/// and drops edges whose last witnessing walk died. The result is
/// identical to re-materializing from scratch (asserted by tests), but
/// touches only the neighborhood of the change. The expensive half —
/// re-deriving the exact-`k` frontier of every affected source — fans
/// out over `parts` worker threads, one per ownership partition of
/// `part_of` (the sharded serving runtime passes its vertex
/// partitioner); assembly stays serial and emits sources in sorted
/// order, so the result is **identical** for any partitioning (asserted
/// by tests). Returns the refreshed view graph plus the number of
/// sources whose frontier was recomputed.
pub(crate) fn connector_refresh(
    old_view: &Graph,
    applied: &AppliedDelta,
    def: &ConnectorDef,
    part_of: &(dyn Fn(VertexId) -> usize + Sync),
    parts: usize,
    exec: Option<&dyn ParallelExec>,
) -> (Graph, usize) {
    let base_new = &applied.graph;
    let base_old = &applied.base_old;
    let affected = affected_sources(def, applied);

    // frontier recomputation, partitioned: bucket the affected sources
    // by owner and derive each bucket's connector targets on its own
    // thread (reads of the shared frozen graphs only). The serial path
    // (parts <= 1) streams targets straight into the builder below
    // instead, with no intermediate map.
    let mut affected_sorted: Vec<VertexId> = affected.iter().copied().collect();
    affected_sorted.sort();
    type TargetMap = HashMap<VertexId, Vec<crate::materialize::ConnectorTarget>>;
    let targets_of: Option<TargetMap> = if parts <= 1 {
        None
    } else {
        let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); parts];
        for &u in &affected_sorted {
            buckets[part_of(u).min(parts - 1)].push(u);
        }
        buckets.retain(|bucket| !bucket.is_empty());
        let exec = exec.unwrap_or(&ScopedExec);
        type Derived = Vec<(VertexId, Vec<crate::materialize::ConnectorTarget>)>;
        let slots: Vec<std::sync::Mutex<Derived>> = buckets
            .iter()
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        exec.run(buckets.len(), &|b| {
            let derived: Derived = buckets[b]
                .iter()
                .map(|&u| (u, crate::materialize::connector_targets(base_new, def, u)))
                .collect();
            *slots[b].lock().unwrap_or_else(|e| e.into_inner()) = derived;
        });
        Some(
            slots
                .into_iter()
                .flat_map(|s| s.into_inner().unwrap_or_else(|e| e.into_inner()))
                .collect(),
        )
    };

    // Connector views list base vertices of the target types in base-id
    // order; ids are stable under apply_delta, so the mapping between
    // old-view ids and base ids is the old base's type-filtered live
    // vertex sequence.
    let mut b = GraphBuilder::new();
    let mut view_id_of: HashMap<VertexId, VertexId> = HashMap::new();
    for v in base_new.vertices() {
        let t = base_new.vertex_type(v);
        if t == def.src_type || t == def.dst_type {
            let nv = b.add_vertex(t);
            for (k, val) in base_new.vertex_props(v).iter() {
                b.set_vertex_prop(nv, base_new.resolve(k), val.clone());
            }
            view_id_of.insert(v, nv);
        }
    }

    let label = def.edge_label();
    let base_of_old_view: Vec<VertexId> = base_old
        .vertices()
        .filter(|&v| {
            let t = base_old.vertex_type(v);
            t == def.src_type || t == def.dst_type
        })
        .collect();
    debug_assert_eq!(base_of_old_view.len(), old_view.vertex_count());

    // Copy edges of unaffected sources from the old view. A source or
    // destination retracted by this delta always leaves its sources
    // affected (its incident edges were retracted too), so the map
    // lookups only filter dead endpoints defensively.
    for e in old_view.edges() {
        let src_base = base_of_old_view[old_view.edge_src(e).index()];
        if affected.contains(&src_base) {
            continue; // recomputed below
        }
        let dst_base = base_of_old_view[old_view.edge_dst(e).index()];
        let (Some(&ns), Some(&nd)) = (view_id_of.get(&src_base), view_id_of.get(&dst_base)) else {
            continue;
        };
        let ne = b.add_edge(ns, nd, &label);
        for (k, val) in old_view.edge_props(e).iter() {
            b.set_edge_prop(ne, old_view.resolve(k), val.clone());
        }
    }

    // Splice in the recomputed frontiers, in sorted source order —
    // pre-computed on worker threads when partitioned, derived inline
    // on the serial path.
    let recomputed = affected_sorted.len();
    for u in affected_sorted {
        let Some(&nu) = view_id_of.get(&u) else {
            continue;
        };
        match &targets_of {
            Some(map) => {
                crate::materialize::emit_targets(&mut b, &map[&u], &label, nu, &view_id_of)
            }
            None => crate::materialize::emit_connector_edges(
                &mut b,
                base_new,
                def,
                &label,
                u,
                nu,
                &view_id_of,
            ),
        }
    }
    (b.finish(), recomputed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::connector_view as materialize_connector;
    use kaskade_graph::EdgeId;

    // The tests exercise the refresh engine through thin local wrappers
    // (the deprecated public shims would trip `-D warnings`).
    fn maintain_connector(old_view: &Graph, applied: &AppliedDelta, def: &ConnectorDef) -> Graph {
        connector_refresh(old_view, applied, def, &|_| 0, 1, None).0
    }

    fn maintain_connector_partitioned(
        old_view: &Graph,
        applied: &AppliedDelta,
        def: &ConnectorDef,
        part_of: &(dyn Fn(VertexId) -> usize + Sync),
        parts: usize,
    ) -> Graph {
        connector_refresh(old_view, applied, def, part_of, parts, None).0
    }

    /// One canonical edge: endpoints, type, `ts`, provenance `support`.
    type EdgePrint = (u32, u32, String, Option<i64>, Option<i64>);

    /// Canonical edge multiset for graph comparison (view graphs may
    /// order edges differently between incremental and full builds).
    /// Includes `ts` and the provenance `support` count.
    fn edge_fingerprint(g: &Graph) -> Vec<EdgePrint> {
        let mut v: Vec<_> = g
            .edges()
            .map(|e| {
                (
                    g.edge_src(e).0,
                    g.edge_dst(e).0,
                    g.edge_type(e).to_string(),
                    g.edge_prop(e, "ts").and_then(|p| p.as_int()),
                    g.edge_prop(e, "support").and_then(|p| p.as_int()),
                )
            })
            .collect();
        v.sort();
        v
    }

    fn lineage_base() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let e = b.add_edge(j0, f0, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(1));
        let e = b.add_edge(f0, j1, "IS_READ_BY");
        b.set_edge_prop(e, "ts", Value::Int(2));
        b.finish()
    }

    #[test]
    fn apply_delta_preserves_existing_ids() {
        let g = lineage_base();
        let mut d = GraphDelta::new();
        let f = d.add_vertex("File", vec![("bytes".into(), Value::Int(7))]);
        d.add_edge(VRef::Existing(VertexId(2)), f, "WRITES_TO", vec![]);
        let applied = apply_delta(&g, &d);
        assert_eq!(applied.graph.vertex_count(), 4);
        assert_eq!(applied.graph.edge_count(), 3);
        assert_eq!(applied.graph.vertex_type(VertexId(0)), "Job");
        assert_eq!(applied.new_vertices, vec![VertexId(3)]);
        assert_eq!(applied.new_edges, vec![(VertexId(2), VertexId(3))]);
        assert_eq!(
            applied.graph.vertex_prop(VertexId(3), "bytes"),
            Some(&Value::Int(7))
        );
    }

    #[test]
    fn merge_equals_sequential_application() {
        let g = lineage_base();
        // delta 1: new file written by the existing downstream job
        let mut d1 = GraphDelta::new();
        let f1 = d1.add_vertex("File", vec![]);
        d1.add_edge(
            VRef::Existing(VertexId(2)),
            f1,
            "WRITES_TO",
            vec![("ts".into(), Value::Int(3))],
        );
        // delta 2: references both an existing vertex and its *own* new
        // vertices, exercising the VRef::New re-indexing
        let mut d2 = GraphDelta::new();
        let j2 = d2.add_vertex("Job", vec![("CPU".into(), Value::Int(9))]);
        d2.add_edge(VRef::Existing(VertexId(1)), j2, "IS_READ_BY", vec![]);
        let f2 = d2.add_vertex("File", vec![]);
        d2.add_edge(j2, f2, "WRITES_TO", vec![("ts".into(), Value::Int(4))]);

        let sequential = apply_delta(&apply_delta(&g, &d1).graph, &d2).graph;
        let mut merged = d1.clone();
        merged.merge(&d2).unwrap();
        let batched = apply_delta(&g, &merged).graph;
        assert_eq!(edge_fingerprint(&sequential), edge_fingerprint(&batched));
        assert_eq!(sequential.vertex_count(), batched.vertex_count());
        assert_eq!(
            batched.vertex_prop(VertexId(4), "CPU"),
            Some(&Value::Int(9))
        );
    }

    #[test]
    fn retraction_removes_newest_matching_edge() {
        // two parallel j0 -w-> f0 edges; one retraction kills the newer
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(j0, f0, "WRITES_TO");
        let g = b.finish();

        let mut d = GraphDelta::new();
        d.del_edge(VRef::Existing(j0), VRef::Existing(f0), "WRITES_TO");
        let applied = apply_delta(&g, &d);
        assert_eq!(applied.graph.edge_count(), 1);
        assert!(applied.graph.is_edge_live(EdgeId(0)));
        assert!(!applied.graph.is_edge_live(EdgeId(1)));
        assert_eq!(applied.deleted_edges, vec![(j0, f0)]);

        // retracting again kills the older one; a third is a no-op
        let mut d2 = GraphDelta::new();
        d2.del_edge(VRef::Existing(j0), VRef::Existing(f0), "WRITES_TO");
        d2.del_edge(VRef::Existing(j0), VRef::Existing(f0), "WRITES_TO");
        let applied2 = apply_delta(&applied.graph, &d2);
        assert_eq!(applied2.graph.edge_count(), 0);
        assert_eq!(applied2.deleted_edges.len(), 1);
    }

    #[test]
    fn insert_then_delete_cancels_within_a_delta() {
        let g = lineage_base();
        let mut d = GraphDelta::new();
        let f = d.add_vertex("File", vec![]);
        d.add_edge(VRef::Existing(VertexId(2)), f, "WRITES_TO", vec![]);
        d.del_edge(VRef::Existing(VertexId(2)), f, "WRITES_TO");
        assert!(d.edges.is_empty(), "pending insert cancelled");
        assert!(d.del_edges.is_empty(), "retraction consumed");
        let applied = apply_delta(&g, &d);
        assert_eq!(applied.graph.edge_count(), g.edge_count());
        assert!(applied.deleted_edges.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels_across_merge() {
        let g = lineage_base();
        // delta A inserts a fresh edge; delta B retracts the same
        // identity. Sequential application nets to the base graph, and
        // so must the merged batch (via cancellation, since B's target
        // has no id yet at merge time).
        let mut a = GraphDelta::new();
        a.add_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
            vec![("ts".into(), Value::Int(9))],
        );
        let mut b = GraphDelta::new();
        b.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );

        let sequential = apply_delta(&apply_delta(&g, &a).graph, &b).graph;
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        let batched = apply_delta(&g, &merged).graph;
        assert_eq!(edge_fingerprint(&sequential), edge_fingerprint(&batched));
        // the ORIGINAL base edge survives in both (LIFO removed A's)
        assert!(batched.is_edge_live(EdgeId(0)));
        assert_eq!(batched.edge_count(), 2);
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let g = lineage_base();
        // one delta retracts the base edge and re-inserts the same
        // identity with a new ts: the retraction must hit the OLD edge,
        // not the re-insert
        let mut d = GraphDelta::new();
        d.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );
        d.add_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
            vec![("ts".into(), Value::Int(77))],
        );
        let applied = apply_delta(&g, &d);
        assert_eq!(applied.graph.edge_count(), 2);
        assert!(!applied.graph.is_edge_live(EdgeId(0)), "old edge retracted");
        let reinserted = EdgeId(applied.graph.edge_slots() as u32 - 1);
        assert_eq!(
            applied.graph.edge_prop(reinserted, "ts"),
            Some(&Value::Int(77))
        );

        // split across two merged deltas the result is the same
        let mut a = GraphDelta::new();
        a.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );
        let mut b2 = GraphDelta::new();
        b2.add_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
            vec![("ts".into(), Value::Int(77))],
        );
        let sequential = apply_delta(&apply_delta(&g, &a).graph, &b2).graph;
        let mut merged = a.clone();
        merged.merge(&b2).unwrap();
        let batched = apply_delta(&g, &merged).graph;
        assert_eq!(edge_fingerprint(&sequential), edge_fingerprint(&batched));
        assert_eq!(edge_fingerprint(&batched), edge_fingerprint(&applied.graph));
    }

    #[test]
    fn merge_rejects_insert_onto_batch_retracted_vertex() {
        // the doc-comment scenario: delta A retracts a vertex, delta B
        // inserts an edge onto it. Sequential application rejects B
        // (edge onto a dead vertex), so merge must refuse B too — and
        // leave A untouched.
        let mut a = GraphDelta::new();
        a.del_vertex(VertexId(1));
        let before = a.clone();
        let mut b = GraphDelta::new();
        let j = b.add_vertex("Job", vec![]);
        b.add_edge(VRef::Existing(VertexId(1)), j, "IS_READ_BY", vec![]);
        let err = a.merge(&b).unwrap_err();
        assert!(matches!(
            err,
            DeltaError::RetractedInBatch {
                edge: 0,
                vertex: VertexId(1)
            }
        ));
        assert!(err.to_string().contains("retracted earlier"));
        assert_eq!(a, before, "failed merge must not mutate the batch");
        // the equivalent sequential outcome: only A applies
        let g = lineage_base();
        let applied = apply_delta(&g, &a);
        assert_eq!(applied.graph.vertex_count(), 2);
        assert_eq!(applied.graph.edge_count(), 0);
        // a retraction (not an insert) onto the same vertex is fine
        let mut c = GraphDelta::new();
        c.del_vertex(VertexId(1));
        a.merge(&c).unwrap();
    }

    #[test]
    fn remap_rebases_deltas_through_compaction() {
        let g = lineage_base(); // j0, f0, j1
        let mut tomb = GraphDelta::new();
        tomb.del_vertex(VertexId(1)); // kill f0 (and both edges)
        let survivor = apply_delta(&g, &tomb).graph;
        let (compacted, remap) = survivor.compact();
        // old ids: j0 = 0, j1 = 2 → new ids: 0, 1

        // a queued delta in the OLD id space: an edge between the two
        // surviving jobs, a no-op retraction on the dead vertex, and a
        // retraction of a dead-endpoint edge
        let mut d = GraphDelta::new();
        d.add_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(2)),
            "WRITES_TO",
            vec![("ts".into(), Value::Int(9))],
        );
        d.del_vertex(VertexId(1));
        d.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );
        d.remap(&remap);
        // endpoints translated, no-op retractions dropped
        assert_eq!(d.edges[0].src, VRef::Existing(VertexId(0)));
        assert_eq!(d.edges[0].dst, VRef::Existing(VertexId(1)));
        assert!(d.del_vertices.is_empty());
        assert!(d.del_edges.is_empty());
        let applied = apply_delta(&compacted, &d);
        assert_eq!(applied.graph.edge_count(), 1);
        assert_eq!(applied.new_edges, vec![(VertexId(0), VertexId(1))]);

        // an insert onto the dropped slot is poisoned, not silently
        // rewired: validation rejects it like the uncompacted path
        // rejects the DeadExisting original
        let mut bad = GraphDelta::new();
        let f = bad.add_vertex("File", vec![]);
        bad.add_edge(VRef::Existing(VertexId(1)), f, "WRITES_TO", vec![]);
        assert!(bad.validate_against(&survivor, 0).is_err());
        bad.remap(&remap);
        assert!(bad.validate_against(&compacted, 0).is_err());
    }

    #[test]
    fn vertex_retraction_cascades() {
        let g = lineage_base();
        let mut d = GraphDelta::new();
        d.del_vertex(VertexId(1)); // f0: both base edges touch it
        let applied = apply_delta(&g, &d);
        assert_eq!(applied.graph.vertex_count(), 2);
        assert_eq!(applied.graph.edge_count(), 0);
        assert_eq!(applied.deleted_vertices, vec![VertexId(1)]);
        assert_eq!(applied.deleted_edges.len(), 2);
        // retracting the same vertex again is a no-op
        let applied2 = apply_delta(&applied.graph, &d);
        assert!(applied2.deleted_vertices.is_empty());
    }

    #[test]
    fn validate_catches_dangling_references() {
        let g = lineage_base(); // 3 vertices
        let mut ok = GraphDelta::new();
        let v = ok.add_vertex("File", vec![]);
        ok.add_edge(VRef::Existing(VertexId(2)), v, "WRITES_TO", vec![]);
        assert_eq!(ok.validate(g.vertex_count()), Ok(()));

        let mut dangling_existing = GraphDelta::new();
        let v = dangling_existing.add_vertex("File", vec![]);
        dangling_existing.add_edge(VRef::Existing(VertexId(99)), v, "WRITES_TO", vec![]);
        let err = dangling_existing.validate(g.vertex_count()).unwrap_err();
        assert!(matches!(err, DeltaError::DanglingExisting { .. }));
        assert!(err.to_string().contains("only 3 vertices"));

        let mut dangling_new = GraphDelta::new();
        dangling_new.add_edge(VRef::New(0), VRef::New(1), "WRITES_TO", vec![]);
        let err = dangling_new.validate(g.vertex_count()).unwrap_err();
        assert!(matches!(err, DeltaError::DanglingNew { .. }));

        let mut dangling_del = GraphDelta::new();
        dangling_del.del_vertex(VertexId(99));
        let err = dangling_del.validate(g.vertex_count()).unwrap_err();
        assert!(matches!(err, DeltaError::DanglingRetraction { .. }));

        // a New-ref retraction that matched no pending insert
        let mut unmatched = GraphDelta::new();
        let v = unmatched.add_vertex("File", vec![]);
        unmatched.del_edge(VRef::Existing(VertexId(0)), v, "WRITES_TO");
        let err = unmatched.validate(g.vertex_count()).unwrap_err();
        assert!(matches!(err, DeltaError::UnmatchedNewRetraction { .. }));
    }

    #[test]
    fn validate_against_rejects_dead_targets() {
        let g = lineage_base().remove_vertices([VertexId(1)]);
        let mut onto_dead = GraphDelta::new();
        let v = onto_dead.add_vertex("Job", vec![]);
        onto_dead.add_edge(VRef::Existing(VertexId(1)), v, "IS_READ_BY", vec![]);
        let err = onto_dead.validate_against(&g, 0).unwrap_err();
        assert!(matches!(err, DeltaError::DeadExisting { .. }));
        assert!(err.to_string().contains("retracted"));
        // retracting around a dead vertex is tolerated (no-op at apply)
        let mut del_dead = GraphDelta::new();
        del_dead.del_vertex(VertexId(1));
        assert_eq!(del_dead.validate_against(&g, 0), Ok(()));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = lineage_base();
        let applied = apply_delta(&g, &GraphDelta::new());
        assert_eq!(applied.graph.vertex_count(), g.vertex_count());
        assert_eq!(applied.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn incremental_equals_full_rematerialization_simple() {
        let g = lineage_base();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let old_view = materialize_connector(&g, &def);
        assert_eq!(old_view.edge_count(), 1); // j0 -> j1

        // extend the pipeline: j1 writes f1, read by a new job j2
        let mut d = GraphDelta::new();
        let f1 = d.add_vertex("File", vec![]);
        let j2 = d.add_vertex("Job", vec![]);
        d.add_edge(
            VRef::Existing(VertexId(2)),
            f1,
            "WRITES_TO",
            vec![("ts".into(), Value::Int(3))],
        );
        d.add_edge(f1, j2, "IS_READ_BY", vec![("ts".into(), Value::Int(4))]);
        let applied = apply_delta(&g, &d);

        let incremental = maintain_connector(&old_view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.vertex_count(), full.vertex_count());
        assert_eq!(incremental.edge_count(), 2);
    }

    #[test]
    fn incremental_handles_edge_into_existing_structure() {
        // new read edge from an existing file to an existing job changes
        // the 2-hop frontier of the file's producer
        let g = lineage_base();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let old_view = materialize_connector(&g, &def);

        let mut d = GraphDelta::new();
        let j2 = d.add_vertex("Job", vec![]);
        d.add_edge(
            VRef::Existing(VertexId(1)), // f0
            j2,
            "IS_READ_BY",
            vec![("ts".into(), Value::Int(9))],
        );
        let applied = apply_delta(&g, &d);
        let incremental = maintain_connector(&old_view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.edge_count(), 2); // j0->j1 and j0->j2
    }

    #[test]
    fn multi_witness_edge_survives_single_retraction() {
        // two disjoint 2-walks j0 -> f -> j1: the connector edge has
        // support 2 and must survive losing one witness
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let f1 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(j0, f1, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(f1, j1, "IS_READ_BY");
        let g = b.finish();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let view = materialize_connector(&g, &def);
        assert_eq!(view.edge_count(), 1);
        let e = view.edges().next().unwrap();
        assert_eq!(view.edge_prop(e, "support"), Some(&Value::Int(2)));

        // retract one witness: the edge survives with support 1
        let mut d = GraphDelta::new();
        d.del_edge(VRef::Existing(f0), VRef::Existing(j1), "IS_READ_BY");
        let applied = apply_delta(&g, &d);
        let view1 = maintain_connector(&view, &applied, &def);
        assert_eq!(
            edge_fingerprint(&view1),
            edge_fingerprint(&materialize_connector(&applied.graph, &def))
        );
        assert_eq!(view1.edge_count(), 1);
        let e = view1.edges().next().unwrap();
        assert_eq!(view1.edge_prop(e, "support"), Some(&Value::Int(1)));

        // retract the last witness: the edge dies
        let mut d2 = GraphDelta::new();
        d2.del_edge(VRef::Existing(f1), VRef::Existing(j1), "IS_READ_BY");
        let applied2 = apply_delta(&applied.graph, &d2);
        let view2 = maintain_connector(&view1, &applied2, &def);
        assert_eq!(
            edge_fingerprint(&view2),
            edge_fingerprint(&materialize_connector(&applied2.graph, &def))
        );
        assert_eq!(view2.edge_count(), 0);
    }

    #[test]
    fn retraction_recomputes_ts_from_surviving_walks() {
        // two walks with different max ts; retracting the younger one
        // must fall the connector ts back to the older walk's
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let f1 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let e = b.add_edge(j0, f0, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(1));
        let e = b.add_edge(f0, j1, "IS_READ_BY");
        b.set_edge_prop(e, "ts", Value::Int(2));
        let e = b.add_edge(j0, f1, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(3));
        let e = b.add_edge(f1, j1, "IS_READ_BY");
        b.set_edge_prop(e, "ts", Value::Int(9));
        let g = b.finish();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let view = materialize_connector(&g, &def);
        let e = view.edges().next().unwrap();
        assert_eq!(view.edge_prop(e, "ts"), Some(&Value::Int(9)));

        let mut d = GraphDelta::new();
        d.del_edge(VRef::Existing(f1), VRef::Existing(j1), "IS_READ_BY");
        let applied = apply_delta(&g, &d);
        let view1 = maintain_connector(&view, &applied, &def);
        let e = view1.edges().next().unwrap();
        assert_eq!(view1.edge_prop(e, "ts"), Some(&Value::Int(2)));
        assert_eq!(
            edge_fingerprint(&view1),
            edge_fingerprint(&materialize_connector(&applied.graph, &def))
        );
    }

    #[test]
    fn incremental_handles_vertex_retraction() {
        let g = lineage_base();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let view = materialize_connector(&g, &def);
        assert_eq!(view.edge_count(), 1);

        let mut d = GraphDelta::new();
        d.del_vertex(VertexId(1)); // f0: severs the only walk
        let applied = apply_delta(&g, &d);
        let incremental = maintain_connector(&view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.edge_count(), 0);
        assert_eq!(incremental.vertex_count(), 2); // both jobs remain

        // retracting a view-typed vertex drops it from the view too
        let mut d2 = GraphDelta::new();
        d2.del_vertex(VertexId(2)); // j1
        let applied2 = apply_delta(&applied.graph, &d2);
        let incremental2 = maintain_connector(&incremental, &applied2, &def);
        let full2 = materialize_connector(&applied2.graph, &def);
        assert_eq!(edge_fingerprint(&incremental2), edge_fingerprint(&full2));
        assert_eq!(incremental2.vertex_count(), 1);
    }

    #[test]
    fn incremental_on_randomized_churn() {
        use kaskade_datasets::{generate_provenance, ProvenanceConfig};
        let g = generate_provenance(&ProvenanceConfig::tiny(71).core_only());
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let mut view = materialize_connector(&g, &def);
        let mut base = g;

        // grow AND shrink the graph in waves, maintaining incrementally
        for wave in 0..6u64 {
            let mut d = GraphDelta::new();
            let files: Vec<VertexId> = base.vertices_of_type("File").collect();
            let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(5))]);
            // new job reads two existing files and writes one new file
            for (i, f) in files.iter().rev().take(2).enumerate() {
                d.add_edge(
                    VRef::Existing(*f),
                    j,
                    "IS_READ_BY",
                    vec![("ts".into(), Value::Int(1000 + wave as i64 * 10 + i as i64))],
                );
            }
            let nf = d.add_vertex("File", vec![]);
            d.add_edge(
                j,
                nf,
                "WRITES_TO",
                vec![("ts".into(), Value::Int(1005 + wave as i64 * 10))],
            );
            // every other wave also retracts an old read edge and, on
            // wave 4, a whole file vertex
            if wave % 2 == 1 {
                if let Some(e) = base.edges().find(|&e| base.edge_type(e) == "IS_READ_BY") {
                    d.del_edge(
                        VRef::Existing(base.edge_src(e)),
                        VRef::Existing(base.edge_dst(e)),
                        "IS_READ_BY",
                    );
                }
            }
            if wave == 4 {
                if let Some(f) = files.first() {
                    d.del_vertex(*f);
                }
            }
            let applied = apply_delta(&base, &d);
            view = maintain_connector(&view, &applied, &def);
            let full = materialize_connector(&applied.graph, &def);
            assert_eq!(
                edge_fingerprint(&view),
                edge_fingerprint(&full),
                "wave {wave}"
            );
            base = applied.graph;
        }
    }

    #[test]
    fn incremental_respects_same_edge_type_restriction() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        b.add_edge(a, c, "F");
        let g = b.finish();
        let def = ConnectorDef::same_edge_type("V", "V", 2, "F");
        let old_view = materialize_connector(&g, &def);
        assert_eq!(old_view.edge_count(), 0);

        // add c -G-> d (wrong type) and c -F-> e (right type)
        let mut d = GraphDelta::new();
        let vd = d.add_vertex("V", vec![]);
        let ve = d.add_vertex("V", vec![]);
        d.add_edge(VRef::Existing(c), vd, "G", vec![]);
        d.add_edge(VRef::Existing(c), ve, "F", vec![]);
        let applied = apply_delta(&g, &d);
        let incremental = maintain_connector(&old_view, &applied, &def);
        let full = materialize_connector(&applied.graph, &def);
        assert_eq!(edge_fingerprint(&incremental), edge_fingerprint(&full));
        assert_eq!(incremental.edge_count(), 1); // a -F-> c -F-> e only
    }

    /// Canonical live-element picture of a (possibly sharded) graph:
    /// per-vertex (id, type, ghost, props) and the live edge multiset.
    #[allow(clippy::type_complexity)]
    fn shard_fingerprint(g: &Graph) -> (Vec<(u32, String, bool, String)>, Vec<EdgePrint>) {
        let vertices = g
            .vertices()
            .map(|v| {
                (
                    v.0,
                    g.vertex_type(v).to_string(),
                    g.is_vertex_ghost(v),
                    format!("{:?}", g.vertex_props(v)),
                )
            })
            .collect();
        (vertices, edge_fingerprint(g))
    }

    #[test]
    fn split_then_apply_equals_apply_then_shard() {
        use kaskade_datasets::{generate_provenance, ProvenanceConfig};
        let g = generate_provenance(&ProvenanceConfig::tiny(77).core_only());

        // a delta exercising every operation kind: new vertices (with
        // cross-referencing edges), an edge onto an existing vertex, an
        // identity retraction, and a cascading vertex retraction
        let mut d = GraphDelta::new();
        let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(5))]);
        let f = d.add_vertex("File", vec![]);
        let first_file = g.vertices_of_type("File").next().unwrap();
        d.add_edge(
            VRef::Existing(first_file),
            j,
            "IS_READ_BY",
            vec![("ts".into(), Value::Int(100))],
        );
        d.add_edge(j, f, "WRITES_TO", vec![("ts".into(), Value::Int(101))]);
        let e = g.edges().next().unwrap();
        d.del_edge(
            VRef::Existing(g.edge_src(e)),
            VRef::Existing(g.edge_dst(e)),
            g.edge_type(e),
        );
        d.del_vertex(g.vertices_of_type("File").nth(1).unwrap());

        let applied = apply_delta(&g, &d);
        let slots = g.vertex_slots();
        for shards in [1usize, 2, 3] {
            let owner = |v: VertexId| (v.0 as usize) % shards;
            let subs = d.split(shards, &owner, &|i| (slots + i) % shards);
            assert_eq!(subs.len(), shards);
            let mut merged_stats = Vec::new();
            for (s, sub) in subs.iter().enumerate() {
                let shard_before = g.shard(&|v| owner(v) == s);
                let shard_after = apply_delta(&shard_before, sub).graph;
                let expected = applied.graph.shard(&|v| owner(v) == s);
                assert_eq!(
                    shard_fingerprint(&shard_after),
                    shard_fingerprint(&expected),
                    "shard {s}/{shards}"
                );
                merged_stats.push(kaskade_graph::GraphStats::compute(&shard_after));
            }
            // per-shard stats merge exactly into the global stats
            assert_eq!(
                kaskade_graph::GraphStats::merge(merged_stats.iter()).unwrap(),
                kaskade_graph::GraphStats::compute(&applied.graph),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn partitioned_connector_maintenance_matches_serial() {
        use kaskade_datasets::{generate_provenance, ProvenanceConfig};
        let g = generate_provenance(&ProvenanceConfig::tiny(78).core_only());
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let view = materialize_connector(&g, &def);

        let mut d = GraphDelta::new();
        let j = d.add_vertex("Job", vec![]);
        let f0 = g.vertices_of_type("File").next().unwrap();
        d.add_edge(VRef::Existing(f0), j, "IS_READ_BY", vec![]);
        let e = g.edges().find(|&e| g.edge_type(e) == "IS_READ_BY").unwrap();
        d.del_edge(
            VRef::Existing(g.edge_src(e)),
            VRef::Existing(g.edge_dst(e)),
            "IS_READ_BY",
        );
        let applied = apply_delta(&g, &d);

        let serial = maintain_connector(&view, &applied, &def);
        for parts in [2usize, 3, 8] {
            let parallel = maintain_connector_partitioned(
                &view,
                &applied,
                &def,
                &|v| (v.0 as usize) % parts,
                parts,
            );
            assert_eq!(
                edge_fingerprint(&parallel),
                edge_fingerprint(&serial),
                "{parts} parts"
            );
            assert_eq!(parallel.vertex_count(), serial.vertex_count());
        }
    }

    #[test]
    fn split_routes_retraction_order_correctly() {
        // delete-then-reinsert of the same identity must stay intact
        // through a split: both ops route to the source's owner with
        // the retraction ordered before the insert
        let g = lineage_base();
        let mut d = GraphDelta::new();
        d.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );
        d.add_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
            vec![("ts".into(), Value::Int(42))],
        );
        let subs = d.split(2, &|v| (v.0 as usize) % 2, &|_| 0);
        // v0 is owned by shard 0: both operations land there, in order
        assert_eq!(subs[0].del_edges.len(), 1);
        assert_eq!(subs[0].edges.len(), 1);
        assert_eq!(subs[0].del_edges[0].pending_seen, 0);
        assert!(subs[1].del_edges.is_empty() && subs[1].edges.is_empty());
        // applying the shard-0 sub-delta retracts the old edge and
        // keeps the re-insert
        let shard0 = g.shard(&|v| v.0 % 2 == 0);
        let after = apply_delta(&shard0, &subs[0]).graph;
        assert_eq!(after.edge_count(), 1);
        let live = after.edges().next().unwrap();
        assert_eq!(after.edge_prop(live, "ts"), Some(&Value::Int(42)));
    }

    #[test]
    fn ghost_vertices_flow_through_deltas() {
        let g = lineage_base().shard(&|v| v.0 == 0);
        let mut d = GraphDelta::new();
        d.vertices.push(NewVertex {
            vtype: "File".into(),
            props: vec![],
            ghost: true,
            ext: None,
        });
        let applied = apply_delta(&g, &d);
        let nv = applied.new_vertices[0];
        assert!(applied.graph.is_vertex_ghost(nv));
        // ghost insertions leave statistics untouched
        assert!(stat_changes(&applied).is_empty());
    }

    #[test]
    fn stat_changes_track_inserts_and_retractions() {
        let g = lineage_base();
        let stats = kaskade_graph::GraphStats::compute(&g);
        let mut d = GraphDelta::new();
        let f = d.add_vertex("File", vec![]);
        d.add_edge(VRef::Existing(VertexId(2)), f, "WRITES_TO", vec![]);
        d.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );
        let applied = apply_delta(&g, &d);
        let changes = stat_changes(&applied);
        let incremental = stats
            .with_changes(
                &changes,
                applied.graph.vertex_count(),
                applied.graph.edge_count(),
            )
            .unwrap();
        assert_eq!(
            incremental,
            kaskade_graph::GraphStats::compute(&applied.graph)
        );
    }
}
