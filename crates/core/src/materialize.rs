//! View materialization: executing a [`ViewDef`] against a graph to
//! produce the physical view (a new, smaller graph).
//!
//! In the paper the workload analyzer translates selected views to
//! Cypher and runs them on Neo4j (§V-B); here the materializer executes
//! the same graph transformations directly. Views are standalone
//! [`Graph`]s — the base graph is never mutated.

use std::collections::HashMap;

use kaskade_graph::{Graph, GraphBuilder, Value, VertexId};

use crate::views::{
    AggOp, ComposedDef, ConnectorDef, PropPredicate, SourceSinkDef, SummarizerDef, ViewDef,
};

/// Materializes any view definition.
pub fn materialize(g: &Graph, def: &ViewDef) -> Graph {
    match def {
        ViewDef::Connector(c) => connector_view(g, c),
        ViewDef::SourceSink(s) => source_sink_view(g, s),
        ViewDef::Summarizer(s) => summarizer_view(g, s),
        ViewDef::Composed(c) => composed_view(g, c),
    }
}

/// Materializes a composed view: the upstream connector first, then the
/// downstream summarizer over the contracted graph.
pub(crate) fn composed_view(g: &Graph, def: &ComposedDef) -> Graph {
    let upstream = connector_view(g, &def.connector);
    summarizer_view(&upstream, &def.summarizer)
}

/// One connector target of a source vertex: the destination, the max
/// `ts` over the contracted walks, and the walk (witness) count.
pub(crate) type ConnectorTarget = (VertexId, i64, i64);

/// Exact-`k` walk targets of `u` under `def`: for every vertex `v != u`
/// of the destination type reachable by a directed walk of exactly
/// `def.k` (type-filtered) edges, returns `(v, max ts, support)` where
/// `support` counts the distinct walks — the per-edge **provenance
/// count** incremental maintenance decrements on retraction (a
/// connector edge dies only when its last witnessing walk dies).
/// Counts saturate at `i64::MAX`. Targets come back in id order.
///
/// Shared by [`connector_view`] (full builds) and the incremental
/// connector refresh in `crate::maintain`, so the two always agree
/// edge-for-edge and property-for-property.
pub(crate) fn connector_targets(
    g: &Graph,
    def: &ConnectorDef,
    u: VertexId,
) -> Vec<ConnectorTarget> {
    // levels of exactly-d walks: per vertex the max edge ts and the
    // number of distinct walks reaching it
    let mut frontier: HashMap<VertexId, (i64, i64)> = HashMap::new();
    frontier.insert(u, (i64::MIN, 1));
    for _ in 0..def.k {
        let mut next: HashMap<VertexId, (i64, i64)> = HashMap::new();
        for (&v, &(acc, walks)) in &frontier {
            for (e, w) in g.out_edges(v) {
                if let Some(required) = &def.etype {
                    if g.edge_type(e) != required {
                        continue;
                    }
                }
                let ts = g
                    .edge_prop(e, "ts")
                    .and_then(|p| p.as_int())
                    .unwrap_or(i64::MIN);
                let cand = acc.max(ts);
                let entry = next.entry(w).or_insert((i64::MIN, 0));
                entry.0 = entry.0.max(cand);
                entry.1 = entry.1.saturating_add(walks);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut targets: Vec<ConnectorTarget> = frontier
        .into_iter()
        .filter(|(v, _)| *v != u && g.vertex_type(*v) == def.dst_type)
        .map(|(v, (ts, walks))| (v, ts, walks))
        .collect();
    targets.sort_by_key(|&(v, _, _)| v);
    targets
}

/// Adds the connector edges of source `u` to a view under construction.
pub(crate) fn emit_connector_edges(
    b: &mut GraphBuilder,
    g: &Graph,
    def: &ConnectorDef,
    label: &str,
    u: VertexId,
    nu: VertexId,
    remap: &HashMap<VertexId, VertexId>,
) {
    emit_targets(b, &connector_targets(g, def, u), label, nu, remap);
}

/// Adds pre-computed connector targets of one source to a view under
/// construction — the serial assembly half of the partitioned connector
/// refresh, whose target computation runs on worker threads.
pub(crate) fn emit_targets(
    b: &mut GraphBuilder,
    targets: &[ConnectorTarget],
    label: &str,
    nu: VertexId,
    remap: &HashMap<VertexId, VertexId>,
) {
    for &(v, ts, support) in targets {
        let Some(&nv) = remap.get(&v) else { continue };
        let e = b.add_edge(nu, nv, label);
        if ts != i64::MIN {
            b.set_edge_prop(e, "ts", Value::Int(ts));
        }
        b.set_edge_prop(e, "support", Value::Int(support));
    }
}

/// Materializes a k-hop connector (§VI-A, Fig. 3).
///
/// The view contains every vertex of the connector's source and
/// destination types (with their properties), plus one edge `u -> v`
/// labeled [`ConnectorDef::edge_label`] for each **distinct** pair of
/// target vertices `u != v` connected by a directed walk of exactly `k`
/// edges (a connector contracts paths *between* two target vertices, so
/// u -> ... -> u round-trips are excluded — they would add a self-loop
/// per vertex and poison view-side algorithms like label propagation).
/// Each connector edge carries a `ts` property — the maximum `ts` over
/// the edges of the contracted walks (so timestamp aggregations like Q4
/// keep working on the view) — and a `support` property counting the
/// contracted walks, the provenance count that lets incremental
/// maintenance retract a view edge exactly when its last witnessing
/// walk disappears (see `kaskade-core::maintain`).
pub(crate) fn connector_view(g: &Graph, def: &ConnectorDef) -> Graph {
    let mut b = GraphBuilder::new();
    let mut remap: HashMap<VertexId, VertexId> = HashMap::new();

    // copy target-type vertices with properties
    for v in g.vertices() {
        let t = g.vertex_type(v);
        if t == def.src_type || t == def.dst_type {
            let nv = b.add_vertex(t);
            for (key, val) in g.vertex_props(v).iter() {
                b.set_vertex_prop(nv, g.resolve(key), val.clone());
            }
            remap.insert(v, nv);
        }
    }

    let label = def.edge_label();
    for u in g.vertices() {
        if g.vertex_type(u) != def.src_type {
            continue;
        }
        let Some(&nu) = remap.get(&u) else { continue };
        emit_connector_edges(&mut b, g, def, &label, u, nu, &remap);
    }
    b.finish()
}

/// Materializes a source-to-sink connector (Table I row 4): the view
/// contains the graph's source vertices (in-degree 0) and sink vertices
/// (out-degree 0), optionally type-filtered, with one `SOURCE_TO_SINK`
/// edge per (source, sink) pair connected by any directed path.
pub(crate) fn source_sink_view(g: &Graph, def: &SourceSinkDef) -> Graph {
    use std::collections::VecDeque;
    let is_source = |v: VertexId| {
        g.in_degree(v) == 0
            && def
                .src_type
                .as_deref()
                .is_none_or(|t| g.vertex_type(v) == t)
    };
    let is_sink = |v: VertexId| {
        g.out_degree(v) == 0
            && def
                .dst_type
                .as_deref()
                .is_none_or(|t| g.vertex_type(v) == t)
    };

    let mut b = GraphBuilder::new();
    let mut remap: HashMap<VertexId, VertexId> = HashMap::new();
    for v in g.vertices() {
        if is_source(v) || is_sink(v) {
            let nv = b.add_vertex(g.vertex_type(v));
            for (key, val) in g.vertex_props(v).iter() {
                b.set_vertex_prop(nv, g.resolve(key), val.clone());
            }
            remap.insert(v, nv);
        }
    }
    let label = def.edge_label();
    for u in g.vertices() {
        if !is_source(u) {
            continue;
        }
        // full forward reachability from the source
        let mut visited = vec![false; g.vertex_slots()];
        visited[u.index()] = true;
        let mut queue = VecDeque::from([u]);
        let mut reached_sinks = Vec::new();
        while let Some(v) = queue.pop_front() {
            if v != u && is_sink(v) {
                reached_sinks.push(v);
            }
            for w in g.out_neighbors(v) {
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        reached_sinks.sort();
        let nu = remap[&u];
        for v in reached_sinks {
            b.add_edge(nu, remap[&v], &label);
        }
    }
    b.finish()
}

/// Materializes a summarizer (§VI-B, Table II).
pub(crate) fn summarizer_view(g: &Graph, def: &SummarizerDef) -> Graph {
    match def {
        SummarizerDef::VertexInclusion { keep } => filter_graph(
            g,
            |g, v| keep.iter().any(|k| k == g.vertex_type(v)),
            |_, _| true,
            false,
        ),
        SummarizerDef::VertexRemoval { remove } => filter_graph(
            g,
            |g, v| !remove.iter().any(|k| k == g.vertex_type(v)),
            |_, _| true,
            false,
        ),
        SummarizerDef::EdgeRemoval { remove } => filter_graph(
            g,
            |_, _| true,
            |g, e| !remove.iter().any(|k| k == g.edge_type(e)),
            false,
        ),
        SummarizerDef::EdgeInclusion { keep } => filter_graph(
            g,
            |_, _| true,
            |g, e| keep.iter().any(|k| k == g.edge_type(e)),
            true,
        ),
        SummarizerDef::VertexAggregator {
            vtype,
            group_prop,
            agg_prop,
            agg,
        } => vertex_aggregator(g, vtype, group_prop, agg_prop, *agg),
        SummarizerDef::EdgeAggregator => edge_aggregator(g),
        SummarizerDef::VertexPredicate { keep } => {
            filter_graph(g, |g, v| pred_on_vertex(g, v, keep), |_, _| true, false)
        }
        SummarizerDef::EdgePredicate { keep } => {
            filter_graph(g, |_, _| true, |g, e| pred_on_edge(g, e, keep), true)
        }
    }
}

fn pred_on_vertex(g: &Graph, v: VertexId, p: &PropPredicate) -> bool {
    p.eval(|key| g.vertex_prop(v, key).cloned())
}

fn pred_on_edge(g: &Graph, e: kaskade_graph::EdgeId, p: &PropPredicate) -> bool {
    p.eval(|key| g.edge_prop(e, key).cloned())
}

/// Shared filtering core: keeps vertices passing `keep_vertex` and edges
/// passing `keep_edge` whose endpoints survive. With
/// `only_incident_vertices`, drops vertices not incident to any kept
/// edge (edge-inclusion semantics).
fn filter_graph(
    g: &Graph,
    keep_vertex: impl Fn(&Graph, VertexId) -> bool,
    keep_edge: impl Fn(&Graph, kaskade_graph::EdgeId) -> bool,
    only_incident_vertices: bool,
) -> Graph {
    let mut vertex_kept = vec![false; g.vertex_slots()];
    for v in g.vertices() {
        vertex_kept[v.index()] = keep_vertex(g, v);
    }
    let mut edge_kept = vec![false; g.edge_slots()];
    for e in g.edges() {
        edge_kept[e.index()] = keep_edge(g, e)
            && vertex_kept[g.edge_src(e).index()]
            && vertex_kept[g.edge_dst(e).index()];
    }
    if only_incident_vertices {
        let mut incident = vec![false; g.vertex_slots()];
        for e in g.edges() {
            if edge_kept[e.index()] {
                incident[g.edge_src(e).index()] = true;
                incident[g.edge_dst(e).index()] = true;
            }
        }
        for (v, k) in vertex_kept.iter_mut().enumerate() {
            *k = *k && incident[v];
        }
    }

    let mut b = GraphBuilder::new();
    let mut remap = vec![VertexId(u32::MAX); g.vertex_slots()];
    for v in g.vertices() {
        if vertex_kept[v.index()] {
            let nv = b.add_vertex(g.vertex_type(v));
            for (key, val) in g.vertex_props(v).iter() {
                b.set_vertex_prop(nv, g.resolve(key), val.clone());
            }
            remap[v.index()] = nv;
        }
    }
    for e in g.edges() {
        if edge_kept[e.index()] {
            let ne = b.add_edge(
                remap[g.edge_src(e).index()],
                remap[g.edge_dst(e).index()],
                g.edge_type(e),
            );
            for (key, val) in g.edge_props(e).iter() {
                b.set_edge_prop(ne, g.resolve(key), val.clone());
            }
        }
    }
    b.finish()
}

/// Groups vertices of `vtype` sharing `group_prop` into supervertices,
/// aggregating `agg_prop` with `agg`; all other vertices are copied and
/// edges re-target the supervertices.
fn vertex_aggregator(
    g: &Graph,
    vtype: &str,
    group_prop: &str,
    agg_prop: &str,
    agg: AggOp,
) -> Graph {
    let mut b = GraphBuilder::new();
    let mut remap = vec![VertexId(u32::MAX); g.vertex_slots()];
    let mut groups: HashMap<String, (VertexId, i64, i64)> = HashMap::new(); // key -> (super, acc, count)

    // pass 1: copy non-grouped vertices, create supervertices
    let mut grouped: Vec<(VertexId, String, i64)> = Vec::new();
    for v in g.vertices() {
        if g.vertex_type(v) == vtype {
            let key = g
                .vertex_prop(v, group_prop)
                .map(|p| p.to_string())
                .unwrap_or_default();
            let val = g
                .vertex_prop(v, agg_prop)
                .and_then(|p| p.as_int())
                .unwrap_or(0);
            grouped.push((v, key, val));
        } else {
            let nv = b.add_vertex(g.vertex_type(v));
            for (key, val) in g.vertex_props(v).iter() {
                b.set_vertex_prop(nv, g.resolve(key), val.clone());
            }
            remap[v.index()] = nv;
        }
    }
    for (v, key, val) in grouped {
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            let sv = b.add_vertex(vtype);
            b.set_vertex_prop(sv, group_prop, Value::Str(key.clone()));
            (
                sv,
                match agg {
                    AggOp::Sum | AggOp::Count => 0,
                    AggOp::Min => i64::MAX,
                    AggOp::Max => i64::MIN,
                },
                0,
            )
        });
        entry.1 = match agg {
            AggOp::Sum => entry.1 + val,
            AggOp::Count => entry.1 + 1,
            AggOp::Min => entry.1.min(val),
            AggOp::Max => entry.1.max(val),
        };
        entry.2 += 1;
        remap[v.index()] = entry.0;
    }
    for (sv, acc, count) in groups.values() {
        b.set_vertex_prop(*sv, agg_prop, Value::Int(*acc));
        b.set_vertex_prop(*sv, "members", Value::Int(*count));
    }

    // pass 2: edges, dropping those collapsed onto the same supervertex
    for e in g.edges() {
        let s = remap[g.edge_src(e).index()];
        let d = remap[g.edge_dst(e).index()];
        if s == d && g.vertex_type(g.edge_src(e)) == vtype && g.vertex_type(g.edge_dst(e)) == vtype
        {
            continue; // intra-group edge collapsed away
        }
        let ne = b.add_edge(s, d, g.edge_type(e));
        for (key, val) in g.edge_props(e).iter() {
            b.set_edge_prop(ne, g.resolve(key), val.clone());
        }
    }
    b.finish()
}

/// Merges parallel edges (same source, destination and type) into one
/// superedge with a `count` property (Table II edge-aggregator).
fn edge_aggregator(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new();
    for v in g.vertices() {
        let nv = b.add_vertex(g.vertex_type(v));
        for (key, val) in g.vertex_props(v).iter() {
            b.set_vertex_prop(nv, g.resolve(key), val.clone());
        }
        debug_assert_eq!(nv, v);
    }
    let mut seen: HashMap<(u32, u32, String), i64> = HashMap::new();
    let mut order: Vec<(u32, u32, String)> = Vec::new();
    for e in g.edges() {
        let key = (g.edge_src(e).0, g.edge_dst(e).0, g.edge_type(e).to_string());
        match seen.get_mut(&key) {
            Some(c) => *c += 1,
            None => {
                seen.insert(key.clone(), 1);
                order.push(key);
            }
        }
    }
    for key in order {
        let count = seen[&key];
        let ne = b.add_edge(VertexId(key.0), VertexId(key.1), &key.2);
        b.set_edge_prop(ne, "count", Value::Int(count));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::GraphBuilder;

    /// Fig. 3(a): j1 -w-> f1 -r-> j2, j1 -w-> f2 -r-> j3,
    /// j2 -w-> f3, j3 -w-> f4 (extended with extra writes).
    fn fig3_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        let f2 = b.add_vertex("File");
        let j3 = b.add_vertex("Job");
        let f3 = b.add_vertex("File");
        let f4 = b.add_vertex("File");
        for (i, (s, d, t)) in [
            (j1, f1, "WRITES_TO"),
            (f1, j2, "IS_READ_BY"),
            (j1, f2, "WRITES_TO"),
            (f2, j3, "IS_READ_BY"),
            (j2, f3, "WRITES_TO"),
            (j3, f4, "WRITES_TO"),
        ]
        .iter()
        .enumerate()
        {
            let e = b.add_edge(*s, *d, t);
            b.set_edge_prop(e, "ts", Value::Int(i as i64 + 1));
        }
        b.finish()
    }

    #[test]
    fn job_to_job_2_hop_connector_matches_fig3c() {
        let g = fig3_graph();
        let view = connector_view(&g, &ConnectorDef::k_hop("Job", "Job", 2));
        // Fig. 3(c) left: j1->j2, j1->j3
        assert_eq!(view.vertices_of_type("Job").count(), 3);
        assert_eq!(view.edge_count(), 2);
        let pairs: Vec<(String, String)> = view
            .edges()
            .map(|e| {
                (
                    view.vertex_type(view.edge_src(e)).to_string(),
                    view.vertex_type(view.edge_dst(e)).to_string(),
                )
            })
            .collect();
        assert!(pairs.iter().all(|(s, d)| s == "Job" && d == "Job"));
        for e in view.edges() {
            assert_eq!(view.edge_type(e), "JOB_TO_JOB_2_HOP");
        }
    }

    #[test]
    fn file_to_file_2_hop_connector_matches_fig3d() {
        let g = fig3_graph();
        let view = connector_view(&g, &ConnectorDef::k_hop("File", "File", 2));
        // Fig. 3(d): f1->f3, f2->f4
        assert_eq!(view.edge_count(), 2);
        assert!(view.vertices_of_type("Job").next().is_none());
    }

    #[test]
    fn connector_edges_deduplicate_parallel_paths() {
        // two 2-hop paths j1 -> (f1|f2) -> j2 must yield ONE connector edge
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let f2 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.add_edge(j1, f1, "WRITES_TO");
        b.add_edge(j1, f2, "WRITES_TO");
        b.add_edge(f1, j2, "IS_READ_BY");
        b.add_edge(f2, j2, "IS_READ_BY");
        let g = b.finish();
        let view = connector_view(&g, &ConnectorDef::k_hop("Job", "Job", 2));
        assert_eq!(view.edge_count(), 1);
    }

    #[test]
    fn connector_preserves_vertex_props_and_max_ts() {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        b.set_vertex_prop(j1, "CPU", Value::Int(5));
        let f = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        let e1 = b.add_edge(j1, f, "WRITES_TO");
        b.set_edge_prop(e1, "ts", Value::Int(3));
        let e2 = b.add_edge(f, j2, "IS_READ_BY");
        b.set_edge_prop(e2, "ts", Value::Int(9));
        let g = b.finish();
        let view = connector_view(&g, &ConnectorDef::k_hop("Job", "Job", 2));
        let ce = view.edges().next().unwrap();
        assert_eq!(view.edge_prop(ce, "ts"), Some(&Value::Int(9)));
        let vj = view
            .vertices()
            .find(|v| view.vertex_prop(*v, "CPU").is_some())
            .unwrap();
        assert_eq!(view.vertex_prop(vj, "CPU"), Some(&Value::Int(5)));
    }

    #[test]
    fn vertex_inclusion_keeps_only_listed_types() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let t = b.add_vertex("Task");
        b.add_edge(j, f, "WRITES_TO");
        b.add_edge(j, t, "SPAWNS");
        let g = b.finish();
        let view = summarizer_view(
            &g,
            &SummarizerDef::VertexInclusion {
                keep: vec!["Job".into(), "File".into()],
            },
        );
        assert_eq!(view.vertex_count(), 2);
        assert_eq!(view.edge_count(), 1);
        assert_eq!(view.edge_type(view.edges().next().unwrap()), "WRITES_TO");
    }

    #[test]
    fn vertex_removal_is_inclusion_complement() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let t = b.add_vertex("Task");
        b.add_edge(j, f, "WRITES_TO");
        b.add_edge(j, t, "SPAWNS");
        let g = b.finish();
        let inc = summarizer_view(
            &g,
            &SummarizerDef::VertexInclusion {
                keep: vec!["Job".into(), "File".into()],
            },
        );
        let rem = summarizer_view(
            &g,
            &SummarizerDef::VertexRemoval {
                remove: vec!["Task".into()],
            },
        );
        assert_eq!(inc.vertex_count(), rem.vertex_count());
        assert_eq!(inc.edge_count(), rem.edge_count());
    }

    #[test]
    fn edge_removal_keeps_all_vertices() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let t = b.add_vertex("Task");
        b.add_edge(j, t, "SPAWNS");
        let g = b.finish();
        let view = summarizer_view(
            &g,
            &SummarizerDef::EdgeRemoval {
                remove: vec!["SPAWNS".into()],
            },
        );
        assert_eq!(view.vertex_count(), 2);
        assert_eq!(view.edge_count(), 0);
    }

    #[test]
    fn edge_inclusion_drops_non_incident_vertices() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let _lonely = b.add_vertex("Machine");
        b.add_edge(j, f, "WRITES_TO");
        let g = b.finish();
        let view = summarizer_view(
            &g,
            &SummarizerDef::EdgeInclusion {
                keep: vec!["WRITES_TO".into()],
            },
        );
        assert_eq!(view.vertex_count(), 2);
        assert_eq!(view.edge_count(), 1);
    }

    #[test]
    fn vertex_aggregator_groups_by_property() {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let j2 = b.add_vertex("Job");
        let j3 = b.add_vertex("Job");
        for (j, p, cpu) in [(j1, "p0", 1), (j2, "p0", 2), (j3, "p1", 4)] {
            b.set_vertex_prop(j, "pipelineName", Value::Str(p.into()));
            b.set_vertex_prop(j, "CPU", Value::Int(cpu));
        }
        let f = b.add_vertex("File");
        b.add_edge(j1, f, "WRITES_TO");
        b.add_edge(j2, f, "WRITES_TO");
        let g = b.finish();
        let view = summarizer_view(
            &g,
            &SummarizerDef::VertexAggregator {
                vtype: "Job".into(),
                group_prop: "pipelineName".into(),
                agg_prop: "CPU".into(),
                agg: AggOp::Sum,
            },
        );
        // 2 supervertices + 1 file
        assert_eq!(view.vertex_count(), 3);
        let p0 = view
            .vertices_of_type("Job")
            .find(|v| view.vertex_prop(*v, "pipelineName") == Some(&Value::Str("p0".into())))
            .unwrap();
        assert_eq!(view.vertex_prop(p0, "CPU"), Some(&Value::Int(3)));
        assert_eq!(view.vertex_prop(p0, "members"), Some(&Value::Int(2)));
        // both writes re-target the p0 supervertex
        assert_eq!(view.out_degree(p0), 2);
    }

    #[test]
    fn edge_aggregator_merges_parallel_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        b.add_edge(a, c, "E");
        b.add_edge(a, c, "E");
        b.add_edge(a, c, "F");
        let g = b.finish();
        let view = summarizer_view(&g, &SummarizerDef::EdgeAggregator);
        assert_eq!(view.edge_count(), 2);
        let counts: Vec<i64> = view
            .edges()
            .map(|e| view.edge_prop(e, "count").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<i64>(), 3);
    }

    #[test]
    fn same_edge_type_connector_restricts_hops() {
        // a -F-> b -F-> c and a -G-> d -F-> c : only the all-F path counts
        let mut bld = GraphBuilder::new();
        let a = bld.add_vertex("V");
        let b2 = bld.add_vertex("V");
        let c = bld.add_vertex("V");
        let d = bld.add_vertex("V");
        bld.add_edge(a, b2, "F");
        bld.add_edge(b2, c, "F");
        bld.add_edge(a, d, "G");
        bld.add_edge(d, c, "F");
        let g = bld.finish();
        let any = connector_view(&g, &ConnectorDef::k_hop("V", "V", 2));
        let only_f = connector_view(&g, &ConnectorDef::same_edge_type("V", "V", 2, "F"));
        assert_eq!(any.edge_count(), 1); // a->c (dedup of two paths)
        assert_eq!(only_f.edge_count(), 1); // a->c via b only — still exists

        // now remove the F-F path and the typed connector must be empty
        let mut bld = GraphBuilder::new();
        let a = bld.add_vertex("V");
        let d = bld.add_vertex("V");
        let c = bld.add_vertex("V");
        bld.add_edge(a, d, "G");
        bld.add_edge(d, c, "F");
        let g = bld.finish();
        let only_f = connector_view(&g, &ConnectorDef::same_edge_type("V", "V", 2, "F"));
        assert_eq!(only_f.edge_count(), 0);
        let any = connector_view(&g, &ConnectorDef::k_hop("V", "V", 2));
        assert_eq!(any.edge_count(), 1);
    }

    #[test]
    fn source_sink_connector_on_lineage() {
        let g = fig3_graph();
        // sources: j1 (no in-edges); sinks: f3, f4 (no out-edges)
        let view = source_sink_view(&g, &SourceSinkDef::default());
        assert_eq!(view.edge_count(), 2); // j1->f3, j1->f4
        for e in view.edges() {
            assert_eq!(view.edge_type(e), "SOURCE_TO_SINK");
            assert_eq!(view.vertex_type(view.edge_src(e)), "Job");
            assert_eq!(view.vertex_type(view.edge_dst(e)), "File");
        }
        // type-filtered: no Job sinks exist
        let none = source_sink_view(
            &g,
            &SourceSinkDef {
                src_type: Some("Job".into()),
                dst_type: Some("Job".into()),
            },
        );
        assert_eq!(none.edge_count(), 0);
    }

    #[test]
    fn vertex_predicate_summarizer() {
        let mut bld = GraphBuilder::new();
        let j1 = bld.add_vertex("Job");
        bld.set_vertex_prop(j1, "CPU", Value::Int(100));
        let j2 = bld.add_vertex("Job");
        bld.set_vertex_prop(j2, "CPU", Value::Int(5));
        let f = bld.add_vertex("File");
        bld.add_edge(j1, f, "WRITES_TO");
        bld.add_edge(j2, f, "WRITES_TO");
        let g = bld.finish();
        let view = summarizer_view(
            &g,
            &SummarizerDef::VertexPredicate {
                keep: PropPredicate::IntAtLeast("CPU".into(), 50),
            },
        );
        // only j1 survives among jobs; f has no CPU prop so it is
        // dropped too (predicate summarizers filter every vertex)
        assert_eq!(view.vertex_count(), 1);
        assert_eq!(view.edge_count(), 0);
    }

    #[test]
    fn edge_predicate_summarizer() {
        let mut bld = GraphBuilder::new();
        let a = bld.add_vertex("V");
        let c = bld.add_vertex("V");
        let e1 = bld.add_edge(a, c, "E");
        bld.set_edge_prop(e1, "ts", Value::Int(10));
        let e2 = bld.add_edge(a, c, "E");
        bld.set_edge_prop(e2, "ts", Value::Int(99));
        let g = bld.finish();
        let view = summarizer_view(
            &g,
            &SummarizerDef::EdgePredicate {
                keep: PropPredicate::IntBelow("ts".into(), 50),
            },
        );
        assert_eq!(view.edge_count(), 1);
        let e = view.edges().next().unwrap();
        assert_eq!(view.edge_prop(e, "ts"), Some(&Value::Int(10)));
    }

    #[test]
    fn prop_predicate_forms() {
        let p = PropPredicate::StrEquals("pipelineName".into(), "p0".into());
        assert!(p.eval(|k| (k == "pipelineName").then(|| Value::Str("p0".into()))));
        assert!(!p.eval(|_| None));
        assert!(PropPredicate::Exists("x".into()).eval(|_| Some(Value::Bool(true))));
        assert!(!PropPredicate::IntAtLeast("c".into(), 5).eval(|_| Some(Value::Int(4))));
        assert!(PropPredicate::IntBelow("c".into(), 5).eval(|_| Some(Value::Int(4))));
    }

    #[test]
    fn materialize_dispatch() {
        let g = fig3_graph();
        let v1 = materialize(
            &g,
            &ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)),
        );
        assert_eq!(v1.edge_count(), 2);
        let v2 = materialize(
            &g,
            &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
                keep: vec!["Job".into()],
            }),
        );
        assert_eq!(v2.vertex_count(), 3);
        assert_eq!(v2.edge_count(), 0);
    }

    #[test]
    fn connector_on_empty_graph() {
        let g = GraphBuilder::new().finish();
        let view = connector_view(&g, &ConnectorDef::k_hop("Job", "Job", 2));
        assert_eq!(view.vertex_count(), 0);
        assert_eq!(view.edge_count(), 0);
    }

    #[test]
    fn four_hop_connector() {
        let g = fig3_graph();
        // 4-hop job-to-job: j1 -> f1 -> j2 -> f3 -> ? (f3 is a sink file)
        // no job at distance 4, so empty
        let view = connector_view(&g, &ConnectorDef::k_hop("Job", "Job", 4));
        assert_eq!(view.edge_count(), 0);
        // 1-hop job-to-file = the write edges
        let v1 = connector_view(&g, &ConnectorDef::k_hop("Job", "File", 1));
        assert_eq!(v1.edge_count(), 4);
    }
}
