//! Wire codecs for the durability layer.
//!
//! The WAL logs [`GraphDelta`]s (one per published batch) and
//! checkpoints serialize whole [`Snapshot`]s — graph, schema,
//! statistics, and the materialized-view catalog. Everything rides the
//! byte-level [`Enc`]/[`Dec`] codec from `kaskade-graph`; this module
//! adds the structure: tagged enums for [`VRef`] and [`ViewDef`],
//! length-prefixed sequences for delta operations, and a snapshot
//! layout of `graph · schema · stats · catalog`.
//!
//! Decoding is defensive throughout — every tag is range-checked and
//! every count bounded — because checkpoints and WAL tails can be torn
//! by crashes; a corrupt record must surface as [`CodecError`], never
//! as a panic or a bogus graph.

use kaskade_graph::{
    decode_value, encode_value, CodecError, Dec, Enc, Graph, GraphStats, Schema, Value, VertexId,
};

use crate::catalog::{Catalog, MaterializedView};
use crate::maintain::{DelEdge, GraphDelta, NewEdge, NewVertex, VRef};
use crate::snapshot::Snapshot;
use crate::views::{
    AggOp, ComposedDef, ConnectorDef, PropPredicate, SourceSinkDef, SummarizerDef, ViewDef,
};

fn encode_props(props: &[(String, Value)], out: &mut Enc) {
    out.usize(props.len());
    for (k, v) in props {
        out.str(k);
        encode_value(v, out);
    }
}

fn decode_props(d: &mut Dec<'_>) -> Result<Vec<(String, Value)>, CodecError> {
    let n = d.count()?;
    let mut props = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.str()?;
        let v = decode_value(d)?;
        props.push((k, v));
    }
    Ok(props)
}

fn encode_strs(items: &[String], out: &mut Enc) {
    out.usize(items.len());
    for s in items {
        out.str(s);
    }
}

fn decode_strs(d: &mut Dec<'_>) -> Result<Vec<String>, CodecError> {
    let n = d.count()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(d.str()?);
    }
    Ok(items)
}

fn encode_opt_str(s: &Option<String>, out: &mut Enc) {
    match s {
        Some(s) => {
            out.bool(true);
            out.str(s);
        }
        None => out.bool(false),
    }
}

fn decode_opt_str(d: &mut Dec<'_>) -> Result<Option<String>, CodecError> {
    Ok(if d.bool()? { Some(d.str()?) } else { None })
}

fn encode_vref(r: &VRef, out: &mut Enc) {
    match r {
        VRef::Existing(v) => {
            out.u8(0);
            out.u32(v.0);
        }
        VRef::New(i) => {
            out.u8(1);
            out.usize(*i);
        }
        VRef::External(e) => {
            out.u8(2);
            out.u64(*e);
        }
    }
}

fn decode_vref(d: &mut Dec<'_>) -> Result<VRef, CodecError> {
    match d.u8()? {
        0 => Ok(VRef::Existing(VertexId(d.u32()?))),
        1 => Ok(VRef::New(d.usize()?)),
        2 => Ok(VRef::External(d.u64()?)),
        _ => Err(CodecError::Corrupt("vref tag out of range")),
    }
}

impl GraphDelta {
    /// Appends the delta to `out` — the payload of a WAL `Batch`
    /// record. Everything round-trips, including ghost flags, external
    /// ids, and the retraction ordering windows (`pending_seen`), so a
    /// replayed delta publishes the exact snapshot the original did.
    pub fn encode(&self, out: &mut Enc) {
        out.usize(self.vertices.len());
        for nv in &self.vertices {
            out.str(&nv.vtype);
            encode_props(&nv.props, out);
            out.bool(nv.ghost);
            match nv.ext {
                Some(e) => {
                    out.bool(true);
                    out.u64(e);
                }
                None => out.bool(false),
            }
        }
        out.usize(self.edges.len());
        for ne in &self.edges {
            encode_vref(&ne.src, out);
            encode_vref(&ne.dst, out);
            out.str(&ne.etype);
            encode_props(&ne.props, out);
        }
        out.usize(self.del_edges.len());
        for de in &self.del_edges {
            encode_vref(&de.src, out);
            encode_vref(&de.dst, out);
            out.str(&de.etype);
            out.usize(de.pending_seen);
        }
        out.usize(self.del_vertices.len());
        for v in &self.del_vertices {
            out.u32(v.0);
        }
        out.usize(self.del_vertices_ext.len());
        for e in &self.del_vertices_ext {
            out.u64(*e);
        }
    }

    /// Decodes a delta previously written by [`GraphDelta::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let mut delta = GraphDelta::new();
        let nv = d.count()?;
        for _ in 0..nv {
            let vtype = d.str()?;
            let props = decode_props(d)?;
            let ghost = d.bool()?;
            let ext = if d.bool()? { Some(d.u64()?) } else { None };
            delta.vertices.push(NewVertex {
                vtype,
                props,
                ghost,
                ext,
            });
        }
        let ne = d.count()?;
        for _ in 0..ne {
            let src = decode_vref(d)?;
            let dst = decode_vref(d)?;
            let etype = d.str()?;
            let props = decode_props(d)?;
            delta.edges.push(NewEdge {
                src,
                dst,
                etype,
                props,
            });
        }
        let nde = d.count()?;
        for _ in 0..nde {
            let src = decode_vref(d)?;
            let dst = decode_vref(d)?;
            let etype = d.str()?;
            let pending_seen = d.usize()?;
            if pending_seen > delta.edges.len() {
                return Err(CodecError::Corrupt("pending_seen exceeds edge count"));
            }
            delta.del_edges.push(DelEdge {
                src,
                dst,
                etype,
                pending_seen,
            });
        }
        let ndv = d.count()?;
        for _ in 0..ndv {
            delta.del_vertices.push(VertexId(d.u32()?));
        }
        let nde2 = d.count()?;
        for _ in 0..nde2 {
            delta.del_vertices_ext.push(d.u64()?);
        }
        Ok(delta)
    }
}

/// Appends a schema to `out` (vertex types sorted, rules in
/// declaration order — both already deterministic in [`Schema`]).
pub fn encode_schema(s: &Schema, out: &mut Enc) {
    let vtypes: Vec<&str> = s.vertex_types().collect();
    out.usize(vtypes.len());
    for t in vtypes {
        out.str(t);
    }
    out.usize(s.edge_rules().len());
    for r in s.edge_rules() {
        out.str(&r.src);
        out.str(&r.name);
        out.str(&r.dst);
    }
}

/// Decodes a schema previously written by [`encode_schema`].
pub fn decode_schema(d: &mut Dec<'_>) -> Result<Schema, CodecError> {
    let mut s = Schema::new();
    let nv = d.count()?;
    for _ in 0..nv {
        let t = d.str()?;
        s.add_vertex_type(&t);
    }
    let nr = d.count()?;
    for _ in 0..nr {
        let src = d.str()?;
        let name = d.str()?;
        let dst = d.str()?;
        s.add_edge_rule(&src, &name, &dst);
    }
    Ok(s)
}

fn encode_predicate(p: &PropPredicate, out: &mut Enc) {
    match p {
        PropPredicate::IntAtLeast(k, b) => {
            out.u8(0);
            out.str(k);
            out.i64(*b);
        }
        PropPredicate::IntBelow(k, b) => {
            out.u8(1);
            out.str(k);
            out.i64(*b);
        }
        PropPredicate::StrEquals(k, s) => {
            out.u8(2);
            out.str(k);
            out.str(s);
        }
        PropPredicate::Exists(k) => {
            out.u8(3);
            out.str(k);
        }
    }
}

fn decode_predicate(d: &mut Dec<'_>) -> Result<PropPredicate, CodecError> {
    match d.u8()? {
        0 => Ok(PropPredicate::IntAtLeast(d.str()?, d.i64()?)),
        1 => Ok(PropPredicate::IntBelow(d.str()?, d.i64()?)),
        2 => Ok(PropPredicate::StrEquals(d.str()?, d.str()?)),
        3 => Ok(PropPredicate::Exists(d.str()?)),
        _ => Err(CodecError::Corrupt("predicate tag out of range")),
    }
}

fn encode_connector(c: &ConnectorDef, out: &mut Enc) {
    out.str(&c.src_type);
    out.str(&c.dst_type);
    out.usize(c.k);
    encode_opt_str(&c.etype, out);
}

fn decode_connector(d: &mut Dec<'_>) -> Result<ConnectorDef, CodecError> {
    Ok(ConnectorDef {
        src_type: d.str()?,
        dst_type: d.str()?,
        k: d.usize()?,
        etype: decode_opt_str(d)?,
    })
}

fn encode_summarizer(s: &SummarizerDef, out: &mut Enc) {
    match s {
        SummarizerDef::VertexRemoval { remove } => {
            out.u8(0);
            encode_strs(remove, out);
        }
        SummarizerDef::EdgeRemoval { remove } => {
            out.u8(1);
            encode_strs(remove, out);
        }
        SummarizerDef::VertexInclusion { keep } => {
            out.u8(2);
            encode_strs(keep, out);
        }
        SummarizerDef::EdgeInclusion { keep } => {
            out.u8(3);
            encode_strs(keep, out);
        }
        SummarizerDef::VertexAggregator {
            vtype,
            group_prop,
            agg_prop,
            agg,
        } => {
            out.u8(4);
            out.str(vtype);
            out.str(group_prop);
            out.str(agg_prop);
            out.u8(match agg {
                AggOp::Sum => 0,
                AggOp::Count => 1,
                AggOp::Min => 2,
                AggOp::Max => 3,
            });
        }
        SummarizerDef::EdgeAggregator => out.u8(5),
        SummarizerDef::VertexPredicate { keep } => {
            out.u8(6);
            encode_predicate(keep, out);
        }
        SummarizerDef::EdgePredicate { keep } => {
            out.u8(7);
            encode_predicate(keep, out);
        }
    }
}

fn decode_summarizer(d: &mut Dec<'_>) -> Result<SummarizerDef, CodecError> {
    Ok(match d.u8()? {
        0 => SummarizerDef::VertexRemoval {
            remove: decode_strs(d)?,
        },
        1 => SummarizerDef::EdgeRemoval {
            remove: decode_strs(d)?,
        },
        2 => SummarizerDef::VertexInclusion {
            keep: decode_strs(d)?,
        },
        3 => SummarizerDef::EdgeInclusion {
            keep: decode_strs(d)?,
        },
        4 => SummarizerDef::VertexAggregator {
            vtype: d.str()?,
            group_prop: d.str()?,
            agg_prop: d.str()?,
            agg: match d.u8()? {
                0 => AggOp::Sum,
                1 => AggOp::Count,
                2 => AggOp::Min,
                3 => AggOp::Max,
                _ => return Err(CodecError::Corrupt("agg tag out of range")),
            },
        },
        5 => SummarizerDef::EdgeAggregator,
        6 => SummarizerDef::VertexPredicate {
            keep: decode_predicate(d)?,
        },
        7 => SummarizerDef::EdgePredicate {
            keep: decode_predicate(d)?,
        },
        _ => return Err(CodecError::Corrupt("summarizer tag out of range")),
    })
}

/// Appends a view definition to `out` as a tagged enum.
pub fn encode_view_def(v: &ViewDef, out: &mut Enc) {
    match v {
        ViewDef::Connector(c) => {
            out.u8(0);
            encode_connector(c, out);
        }
        ViewDef::SourceSink(s) => {
            out.u8(1);
            encode_opt_str(&s.src_type, out);
            encode_opt_str(&s.dst_type, out);
        }
        ViewDef::Summarizer(s) => {
            out.u8(2);
            encode_summarizer(s, out);
        }
        ViewDef::Composed(c) => {
            out.u8(3);
            encode_connector(&c.connector, out);
            encode_summarizer(&c.summarizer, out);
        }
    }
}

/// Decodes a view definition previously written by [`encode_view_def`].
pub fn decode_view_def(d: &mut Dec<'_>) -> Result<ViewDef, CodecError> {
    Ok(match d.u8()? {
        0 => ViewDef::Connector(decode_connector(d)?),
        1 => ViewDef::SourceSink(SourceSinkDef {
            src_type: decode_opt_str(d)?,
            dst_type: decode_opt_str(d)?,
        }),
        2 => ViewDef::Summarizer(decode_summarizer(d)?),
        3 => ViewDef::Composed(ComposedDef {
            connector: decode_connector(d)?,
            summarizer: decode_summarizer(d)?,
        }),
        _ => return Err(CodecError::Corrupt("view-def tag out of range")),
    })
}

/// Slot-aware: every catalog slot is written in order with a presence
/// flag, tombstones included, so [`crate::ViewId`]s survive a
/// checkpoint/restore round trip and a recovered WAL `DropView` replay
/// still hits the slot it named.
fn encode_catalog(c: &Catalog, out: &mut Enc) {
    out.usize(c.slot_count());
    for slot in c.slots() {
        match slot {
            Some(view) => {
                out.u8(1);
                encode_view_def(&view.def, out);
                view.graph.encode(out);
                view.stats.encode(out);
            }
            None => out.u8(0),
        }
    }
}

fn decode_catalog(d: &mut Dec<'_>) -> Result<Catalog, CodecError> {
    let n = d.count()?;
    let mut c = Catalog::new();
    for _ in 0..n {
        match d.u8()? {
            0 => c.push_slot(None),
            1 => {
                let def = decode_view_def(d)?;
                let graph = Graph::decode(d)?;
                let stats = GraphStats::decode(d)?;
                c.push_slot(Some(MaterializedView { def, graph, stats }));
            }
            _ => return Err(CodecError::Corrupt("catalog slot flag out of range")),
        }
    }
    Ok(c)
}

impl Snapshot {
    /// Appends the full snapshot — graph, schema, statistics, and
    /// every materialized view (definition, graph, and stats) — to
    /// `out`. This is the body of a checkpoint: decoding it restores
    /// serving state without recomputing a single view.
    pub fn encode(&self, out: &mut Enc) {
        self.graph.encode(out);
        encode_schema(&self.schema, out);
        self.stats.encode(out);
        encode_catalog(&self.catalog, out);
    }

    /// Decodes a snapshot previously written by [`Snapshot::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let graph = Graph::decode(d)?;
        let schema = decode_schema(d)?;
        let stats = GraphStats::decode(d)?;
        let catalog = decode_catalog(d)?;
        Ok(Snapshot::assemble(graph, schema, stats, catalog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::same_dense_graph;

    fn sample_delta() -> GraphDelta {
        let mut d = GraphDelta::new();
        let j = d.add_vertex(
            "Job",
            vec![
                ("cpu".into(), Value::Int(10)),
                ("name".into(), Value::Str("pipelineX".into())),
            ],
        );
        let f = d.add_vertex_ext("File", 77, vec![("size".into(), Value::Float(1.5))]);
        d.add_edge(j, f, "WRITES_TO", vec![("latency".into(), Value::Int(3))]);
        d.add_edge(VRef::Existing(VertexId(2)), j, "IS_READ_BY", vec![]);
        d.del_edge(
            VRef::Existing(VertexId(0)),
            VRef::Existing(VertexId(1)),
            "WRITES_TO",
        );
        d.add_edge(VRef::External(42), f, "IS_READ_BY", vec![]);
        d.del_vertex(VertexId(5));
        d.del_vertex_ext(99);
        d
    }

    #[test]
    fn delta_round_trips_exactly() {
        let delta = sample_delta();
        let mut e = Enc::new();
        delta.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = GraphDelta::decode(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back, delta);
        // pending_seen (private ordering window) survives the trip
        assert_eq!(
            back.del_edges[0].pending_seen,
            delta.del_edges[0].pending_seen
        );
    }

    #[test]
    fn delta_decode_rejects_bad_tags() {
        let mut e = Enc::new();
        e.usize(0); // vertices
        e.usize(1); // one edge
        e.u8(9); // bogus vref tag
        let bytes = e.into_bytes();
        assert!(GraphDelta::decode(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn schema_round_trips() {
        let s = Schema::provenance();
        let mut e = Enc::new();
        encode_schema(&s, &mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = decode_schema(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back, s);
    }

    #[test]
    fn view_defs_round_trip() {
        let defs = vec![
            ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)),
            ViewDef::Connector(ConnectorDef::same_edge_type("User", "User", 3, "FOLLOWS")),
            ViewDef::SourceSink(SourceSinkDef {
                src_type: Some("Job".into()),
                dst_type: None,
            }),
            ViewDef::Summarizer(SummarizerDef::VertexRemoval {
                remove: vec!["Task".into(), "Machine".into()],
            }),
            ViewDef::Summarizer(SummarizerDef::VertexAggregator {
                vtype: "Job".into(),
                group_prop: "pipelineName".into(),
                agg_prop: "CPU".into(),
                agg: AggOp::Sum,
            }),
            ViewDef::Summarizer(SummarizerDef::EdgeAggregator),
            ViewDef::Summarizer(SummarizerDef::VertexPredicate {
                keep: PropPredicate::IntAtLeast("CPU".into(), 100),
            }),
            ViewDef::Summarizer(SummarizerDef::EdgePredicate {
                keep: PropPredicate::StrEquals("kind".into(), "hot".into()),
            }),
            ViewDef::Composed(ComposedDef {
                connector: ConnectorDef::k_hop("Job", "Job", 2),
                summarizer: SummarizerDef::EdgePredicate {
                    keep: PropPredicate::Exists("support".into()),
                },
            }),
        ];
        for def in defs {
            let mut e = Enc::new();
            encode_view_def(&def, &mut e);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(decode_view_def(&mut d).unwrap(), def);
            assert!(d.is_done());
        }
    }

    #[test]
    fn snapshot_round_trips_with_views() {
        let g = generate_provenance(&ProvenanceConfig::tiny(11).core_only());
        let mut k = crate::Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        k.materialize_view(ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        }));
        let snap = k.snapshot();

        let mut e = Enc::new();
        snap.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = Snapshot::decode(&mut d).unwrap();
        assert!(d.is_done());

        same_dense_graph(snap.graph(), back.graph()).unwrap();
        assert_eq!(back.schema(), snap.schema());
        assert_eq!(back.stats(), snap.stats());
        assert_eq!(back.catalog().len(), snap.catalog().len());
        for (orig, rest) in snap.catalog().iter().zip(back.catalog().iter()) {
            assert_eq!(orig.def, rest.def);
            same_dense_graph(&orig.graph, &rest.graph).unwrap();
            assert_eq!(orig.stats, rest.stats);
        }
    }

    #[test]
    fn catalog_tombstones_round_trip() {
        let g = generate_provenance(&ProvenanceConfig::tiny(11).core_only());
        let mut k = crate::Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        k.materialize_view(ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        }));
        let snap = k
            .snapshot()
            .apply_ddl(&crate::DdlOp::DropView(crate::ViewId(0)));
        assert_eq!(snap.catalog().slot_count(), 2);

        let mut e = Enc::new();
        snap.encode(&mut e);
        let bytes = e.into_bytes();
        let back = Snapshot::decode(&mut Dec::new(&bytes)).unwrap();
        // the tombstoned slot survives, so ViewIds keep their meaning
        assert_eq!(back.catalog().slot_count(), 2);
        assert_eq!(back.catalog().len(), 1);
        assert!(back.catalog().get_by_id(crate::ViewId(0)).is_none());
        assert!(back.catalog().get_by_id(crate::ViewId(1)).is_some());
    }

    #[test]
    fn snapshot_decode_rejects_truncation() {
        let g = generate_provenance(&ProvenanceConfig::tiny(3).core_only());
        let snap = Snapshot::new(g, Schema::provenance());
        let mut e = Enc::new();
        snap.encode(&mut e);
        let bytes = e.into_bytes();
        assert!(Snapshot::decode(&mut Dec::new(&bytes[..bytes.len() / 2])).is_err());
    }
}
