//! The refresh DAG: universal incremental view maintenance behind the
//! [`ViewMaintainer`] trait.
//!
//! Every [`ViewDef`] variant knows how to build itself from scratch
//! (`materialize`) *and* how to refresh itself from a [`AppliedDelta`]
//! (`refresh`), so per-publish work never falls back to blanket
//! re-materialization:
//!
//! - **Connectors** recompute only the affected sources' exact-`k`
//!   frontiers, with per-edge provenance counts deciding which view
//!   edges die (see [`crate::maintain`]).
//! - **Source-sink connectors** re-run reachability only for sources
//!   upstream of a changed edge or vertex; every other (source, sink)
//!   pair is copied from the old view.
//! - **Aggregator summarizers** carry per-group aggregate state:
//!   COUNT/SUM are exact under insert *and* retract (the same
//!   provenance-count discipline connectors use); MIN/MAX fall back to
//!   a member re-scan of the one affected group when the retracted
//!   value was the group's current extremum (witness death).
//! - **Filter summarizers** are stateless projections: their refresh is
//!   the single linear pass any rebuild of an immutable view graph must
//!   pay, so it is delta-driven by construction.
//! - **Composed views** (a summarizer *of* a connector) consume the
//!   upstream view's refreshed graph and [`ViewDelta`] instead of
//!   re-contracting paths from the base graph.
//!
//! [`RefreshDag`] topo-sorts the catalog by input dependencies (base
//! graph or another view) into an [`RefreshDag::execution_order`] of
//! parallelizable levels; [`RefreshDag::refresh`] runs each level on a
//! scoped worker pool. The serving writer and the sharded coordinator
//! both publish through this path.
//!
//! Every refresh is validated against a scratch-rebuild oracle: the
//! refreshed graph must match `materialize(new_base, def)` — vertices
//! byte-identical in id order, edges as a multiset (asserted by the
//! consistency oracle in `kaskade-service` and the property tests).

use std::collections::{HashMap, HashSet, VecDeque};

use kaskade_graph::{Graph, GraphBuilder, ParallelExec, ScopedExec, Value, VertexId};

use crate::catalog::{Catalog, MaterializedView, ViewId};
use crate::maintain::{connector_refresh, AppliedDelta};
use crate::materialize::{composed_view, connector_view, source_sink_view, summarizer_view};
use crate::views::{AggOp, ComposedDef, ConnectorDef, SourceSinkDef, SummarizerDef, ViewDef};

/// What an upstream view's refresh tells its downstream consumers.
///
/// View graphs are rebuilt per publish (immutable storage), so the
/// delta is deliberately structural rather than id-based: it says
/// whether anything changed at all and how much derived work was
/// redone, which is what downstream nodes need to decide between
/// reusing their old graph outright and re-deriving from the refreshed
/// upstream graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewDelta {
    /// The refresh provably produced a graph identical to the old view
    /// (e.g. the delta touched nothing the view depends on). Downstream
    /// consumers may reuse their own old graph unchanged.
    pub unchanged: bool,
    /// How many derived units were recomputed: connector sources whose
    /// frontier was re-derived, sources re-BFS'd, aggregate groups
    /// re-scanned. Zero for stateless projections.
    pub recomputed: usize,
}

/// The result of a delta-driven view refresh.
#[derive(Debug, Clone)]
pub struct Refreshed {
    /// The refreshed view graph — identical to re-materializing over
    /// the new base (vertices in id order; edges as a multiset).
    pub graph: Graph,
    /// Change summary for downstream composed views.
    pub delta: ViewDelta,
    /// Whether the maintainer had to fall back to a full scratch
    /// re-materialization (e.g. a composed view refreshed without its
    /// upstream connector in the catalog). The serving runtime counts
    /// these in its `views_rematerialized` metric, which stays 0 on
    /// incremental-safe workloads.
    pub rematerialized: bool,
}

/// Partitioned execution context for connector refresh: the sharded
/// coordinator passes its vertex partitioner so each shard's worker
/// recomputes exactly the view edges that shard owns.
#[derive(Clone, Copy)]
pub struct Partition<'a> {
    /// Maps a base vertex to its owning partition.
    pub part_of: &'a (dyn Fn(VertexId) -> usize + Sync),
    /// Number of partitions (worker threads).
    pub parts: usize,
}

impl std::fmt::Debug for Partition<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("parts", &self.parts)
            .finish()
    }
}

/// Upstream context for a composed view's refresh: the consumed view's
/// graph before and after this publish, plus its change summary.
#[derive(Debug, Clone, Copy)]
pub struct Upstream<'a> {
    /// The upstream view graph before the delta.
    pub old: &'a Graph,
    /// The upstream view graph after its own refresh.
    pub new: &'a Graph,
    /// The upstream refresh's change summary.
    pub delta: &'a ViewDelta,
}

/// Execution context handed to [`ViewDef::maintainer_in`] by the
/// [`RefreshDag`] executor.
#[derive(Clone, Copy, Default)]
pub struct RefreshCtx<'a> {
    /// Worker partitioning for connector frontier recomputation.
    pub partition: Option<Partition<'a>>,
    /// The refreshed upstream view, for composed views.
    pub upstream: Option<Upstream<'a>>,
    /// Where partitioned frontier recomputation runs. `None` falls back
    /// to spawn-per-call [`ScopedExec`]; the serving runtime passes its
    /// persistent worker pool.
    pub exec: Option<&'a dyn ParallelExec>,
}

impl std::fmt::Debug for RefreshCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshCtx")
            .field("partition", &self.partition)
            .field("upstream", &self.upstream)
            .field("exec", &self.exec.map(|_| "dyn ParallelExec"))
            .finish()
    }
}

/// Uniform maintenance interface over every view variant: a full build
/// from the base graph, and a delta-driven refresh of an existing view.
///
/// This replaces the old grab-bag of free functions
/// (`materialize_connector`, `maintain_connector`,
/// `maintain_connector_partitioned`, the per-type materializers), whose
/// deprecated shims have since been removed. Obtain an implementation
/// with [`ViewDef::maintainer`] (no context) or
/// [`ViewDef::maintainer_in`] (partitioned / composed execution).
pub trait ViewMaintainer {
    /// Builds the view from scratch over `base`.
    fn materialize(&self, base: &Graph) -> Graph;

    /// Refreshes `old_view` after `applied`, touching only what the
    /// delta affects. The result is identical to
    /// [`ViewMaintainer::materialize`] over the new base graph.
    fn refresh(&self, old_view: &Graph, applied: &AppliedDelta) -> Refreshed;
}

/// Whether the delta changed the base graph structurally at all.
fn structurally_empty(applied: &AppliedDelta) -> bool {
    applied.new_vertices.is_empty()
        && applied.new_edges.is_empty()
        && applied.deleted_edges.is_empty()
        && applied.deleted_vertices.is_empty()
}

/// [`ViewMaintainer`] for k-hop connectors (wraps the provenance-count
/// refresh engine of [`crate::maintain`]).
pub struct ConnectorMaintainer<'a> {
    def: &'a ConnectorDef,
    partition: Option<Partition<'a>>,
    exec: Option<&'a dyn ParallelExec>,
}

impl ViewMaintainer for ConnectorMaintainer<'_> {
    fn materialize(&self, base: &Graph) -> Graph {
        connector_view(base, self.def)
    }

    fn refresh(&self, old_view: &Graph, applied: &AppliedDelta) -> Refreshed {
        let (part_of, parts): (&(dyn Fn(VertexId) -> usize + Sync), usize) = match self.partition {
            Some(p) => (p.part_of, p.parts),
            None => (&|_| 0, 1),
        };
        let (graph, recomputed) =
            connector_refresh(old_view, applied, self.def, part_of, parts, self.exec);
        // the vertex set changes whenever a target-type vertex is born
        // or dies, even with no affected source
        let touches_types = applied.new_vertices.iter().any(|&v| {
            let t = applied.graph.vertex_type(v);
            t == self.def.src_type || t == self.def.dst_type
        }) || applied.deleted_vertices.iter().any(|&v| {
            let t = applied.base_old.vertex_type(v);
            t == self.def.src_type || t == self.def.dst_type
        });
        Refreshed {
            graph,
            delta: ViewDelta {
                unchanged: recomputed == 0 && !touches_types,
                recomputed,
            },
            rematerialized: false,
        }
    }
}

/// [`ViewMaintainer`] for source-to-sink connectors.
pub struct SourceSinkMaintainer<'a> {
    def: &'a SourceSinkDef,
}

impl ViewMaintainer for SourceSinkMaintainer<'_> {
    fn materialize(&self, base: &Graph) -> Graph {
        source_sink_view(base, self.def)
    }

    fn refresh(&self, old_view: &Graph, applied: &AppliedDelta) -> Refreshed {
        let (graph, recomputed) = source_sink_refresh(old_view, applied, self.def);
        Refreshed {
            graph,
            delta: ViewDelta {
                unchanged: structurally_empty(applied),
                recomputed,
            },
            rematerialized: false,
        }
    }
}

/// [`ViewMaintainer`] for summarizers.
pub struct SummarizerMaintainer<'a> {
    def: &'a SummarizerDef,
}

impl ViewMaintainer for SummarizerMaintainer<'_> {
    fn materialize(&self, base: &Graph) -> Graph {
        summarizer_view(base, self.def)
    }

    fn refresh(&self, old_view: &Graph, applied: &AppliedDelta) -> Refreshed {
        if structurally_empty(applied) {
            return Refreshed {
                graph: old_view.clone(),
                delta: ViewDelta {
                    unchanged: true,
                    recomputed: 0,
                },
                rematerialized: false,
            };
        }
        let (graph, recomputed) = match self.def {
            SummarizerDef::VertexAggregator {
                vtype,
                group_prop,
                agg_prop,
                agg,
            } => vertex_aggregator_refresh(old_view, applied, vtype, group_prop, agg_prop, *agg),
            // Filter summarizers and the edge aggregator are stateless
            // projections: properties are immutable and every per-
            // element decision is local, so the delta-driven refresh
            // *is* the single linear pass any rebuild of an immutable
            // view graph must pay. No derived state is recomputed.
            other => (summarizer_view(&applied.graph, other), 0),
        };
        Refreshed {
            graph,
            delta: ViewDelta {
                unchanged: false,
                recomputed,
            },
            rematerialized: false,
        }
    }
}

/// [`ViewMaintainer`] for composed views (a summarizer of a connector).
///
/// With an [`Upstream`] context — the normal case, supplied by the
/// [`RefreshDag`] when the upstream connector is also in the catalog —
/// the refresh never touches the base graph: it reuses the upstream's
/// refreshed graph, or even the composed view's own old graph when the
/// upstream reports [`ViewDelta::unchanged`]. Without the context it
/// must re-contract paths from scratch, which is counted as a full
/// re-materialization.
pub struct ComposedMaintainer<'a> {
    def: &'a ComposedDef,
    upstream: Option<Upstream<'a>>,
}

impl ViewMaintainer for ComposedMaintainer<'_> {
    fn materialize(&self, base: &Graph) -> Graph {
        composed_view(base, self.def)
    }

    fn refresh(&self, old_view: &Graph, applied: &AppliedDelta) -> Refreshed {
        match self.upstream {
            Some(up) if up.delta.unchanged => Refreshed {
                graph: old_view.clone(),
                delta: ViewDelta {
                    unchanged: true,
                    recomputed: 0,
                },
                rematerialized: false,
            },
            Some(up) => Refreshed {
                graph: summarizer_view(up.new, &self.def.summarizer),
                delta: ViewDelta {
                    unchanged: false,
                    recomputed: up.delta.recomputed,
                },
                rematerialized: false,
            },
            None => Refreshed {
                graph: composed_view(&applied.graph, self.def),
                delta: ViewDelta {
                    unchanged: false,
                    recomputed: 0,
                },
                rematerialized: true,
            },
        }
    }
}

impl ViewDef {
    /// The maintainer for this view, with no execution context (serial
    /// connector refresh; composed views fall back to scratch).
    pub fn maintainer(&self) -> Box<dyn ViewMaintainer + '_> {
        self.maintainer_in(RefreshCtx::default())
    }

    /// The maintainer for this view under an execution context — worker
    /// partitioning for connectors, the refreshed upstream view for
    /// composed views. Context irrelevant to the variant is ignored.
    pub fn maintainer_in<'a>(&'a self, ctx: RefreshCtx<'a>) -> Box<dyn ViewMaintainer + 'a> {
        match self {
            ViewDef::Connector(def) => Box::new(ConnectorMaintainer {
                def,
                partition: ctx.partition,
                exec: ctx.exec,
            }),
            ViewDef::SourceSink(def) => Box::new(SourceSinkMaintainer { def }),
            ViewDef::Summarizer(def) => Box::new(SummarizerMaintainer { def }),
            ViewDef::Composed(def) => Box::new(ComposedMaintainer {
                def,
                upstream: ctx.upstream,
            }),
        }
    }
}

/// Incremental source-sink refresh: re-runs forward reachability only
/// for sources inside the changed region — sources that can reach (over
/// the old or new base) a vertex whose edges or existence changed —
/// and copies every other source's (source, sink) pairs from the old
/// view. Returns the refreshed graph and the number of re-BFS'd
/// sources.
fn source_sink_refresh(
    old_view: &Graph,
    applied: &AppliedDelta,
    def: &SourceSinkDef,
) -> (Graph, usize) {
    let base_new = &applied.graph;
    let base_old = &applied.base_old;
    let is_source = |g: &Graph, v: VertexId| {
        g.in_degree(v) == 0
            && def
                .src_type
                .as_deref()
                .is_none_or(|t| g.vertex_type(v) == t)
    };
    let is_sink = |g: &Graph, v: VertexId| {
        g.out_degree(v) == 0
            && def
                .dst_type
                .as_deref()
                .is_none_or(|t| g.vertex_type(v) == t)
    };

    // seeds: every vertex whose incident edges, existence, or
    // source/sink status can have changed
    let mut seeds: HashSet<VertexId> = HashSet::new();
    for &(s, d) in applied.new_edges.iter().chain(applied.deleted_edges.iter()) {
        seeds.insert(s);
        seeds.insert(d);
    }
    seeds.extend(applied.new_vertices.iter().copied());
    seeds.extend(applied.deleted_vertices.iter().copied());

    // the changed region: everything that can reach a seed, over the
    // old base (paths that died) and the new base (paths that appeared)
    let mut affected: HashSet<VertexId> = HashSet::new();
    for g in [base_old, base_new] {
        let mut visited: HashSet<VertexId> = HashSet::new();
        let mut queue: VecDeque<VertexId> = seeds
            .iter()
            .copied()
            .filter(|&v| v.index() < g.vertex_slots() && g.is_vertex_live(v))
            .collect();
        visited.extend(queue.iter().copied());
        while let Some(v) = queue.pop_front() {
            for w in g.in_neighbors(v) {
                if visited.insert(w) {
                    queue.push_back(w);
                }
            }
        }
        affected.extend(visited);
    }

    // view vertices: (source | sink) vertices of the new base, id order
    let mut b = GraphBuilder::new();
    let mut new_id: HashMap<VertexId, VertexId> = HashMap::new();
    for v in base_new.vertices() {
        if is_source(base_new, v) || is_sink(base_new, v) {
            let nv = b.add_vertex(base_new.vertex_type(v));
            for (key, val) in base_new.vertex_props(v).iter() {
                b.set_vertex_prop(nv, base_new.resolve(key), val.clone());
            }
            new_id.insert(v, nv);
        }
    }

    // the old view's positional mapping back to base ids
    let base_of_old_view: Vec<VertexId> = base_old
        .vertices()
        .filter(|&v| is_source(base_old, v) || is_sink(base_old, v))
        .collect();
    debug_assert_eq!(base_of_old_view.len(), old_view.vertex_count());
    let old_id: HashMap<VertexId, VertexId> = base_of_old_view
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, VertexId(i as u32)))
        .collect();

    let label = def.edge_label();
    let mut recomputed = 0usize;
    for u in base_new.vertices() {
        if !is_source(base_new, u) {
            continue;
        }
        let nu = new_id[&u];
        let was_source = u.index() < base_old.vertex_slots()
            && base_old.is_vertex_live(u)
            && is_source(base_old, u);
        if was_source && !affected.contains(&u) {
            // outside the changed region: reachable sinks are exactly
            // the old view's (and still sinks — a sink whose status
            // changed is a seed, putting every source reaching it
            // inside the region)
            let ou = old_id[&u];
            for (_, od) in old_view.out_edges(ou) {
                let dst_base = base_of_old_view[od.index()];
                if let Some(&nd) = new_id.get(&dst_base) {
                    b.add_edge(nu, nd, &label);
                }
            }
        } else {
            recomputed += 1;
            let mut visited = vec![false; base_new.vertex_slots()];
            visited[u.index()] = true;
            let mut queue = VecDeque::from([u]);
            let mut reached_sinks = Vec::new();
            while let Some(v) = queue.pop_front() {
                if v != u && is_sink(base_new, v) {
                    reached_sinks.push(v);
                }
                for w in base_new.out_neighbors(v) {
                    if !visited[w.index()] {
                        visited[w.index()] = true;
                        queue.push_back(w);
                    }
                }
            }
            reached_sinks.sort();
            for v in reached_sinks {
                b.add_edge(nu, new_id[&v], &label);
            }
        }
    }
    (b.finish(), recomputed)
}

/// Incremental vertex-aggregator refresh: per-group aggregate state —
/// (accumulator, member count) per group key — is recovered from the
/// old view's supervertices and updated from the delta alone.
///
/// COUNT/SUM are exact under insert and retract (add/subtract the
/// member's contribution). MIN/MAX retract exactly like provenance
/// counts retire connector edges: while a *witness* (a member holding
/// the extremum) survives, the aggregate stands; when the retracted
/// value equals the current extremum the witness may have died, and
/// only that one group's members are re-scanned. Returns the refreshed
/// graph and the number of groups re-scanned.
fn vertex_aggregator_refresh(
    old_view: &Graph,
    applied: &AppliedDelta,
    vtype: &str,
    group_prop: &str,
    agg_prop: &str,
    agg: AggOp,
) -> (Graph, usize) {
    let base_new = &applied.graph;
    let base_old = &applied.base_old;
    let key_of = |g: &Graph, v: VertexId| {
        g.vertex_prop(v, group_prop)
            .map(|p| p.to_string())
            .unwrap_or_default()
    };
    let val_of = |g: &Graph, v: VertexId| {
        g.vertex_prop(v, agg_prop)
            .and_then(|p| p.as_int())
            .unwrap_or(0)
    };

    // recover per-group state from the old view: every old-view vertex
    // of the grouped type is a supervertex (the originals collapsed)
    let mut keys_in_order: Vec<String> = Vec::new();
    let mut state: HashMap<String, (i64, i64)> = HashMap::new(); // key -> (acc, members)
    for sv in old_view.vertices() {
        if old_view.vertex_type(sv) != vtype {
            continue;
        }
        let key = old_view
            .vertex_prop(sv, group_prop)
            .and_then(|p| p.as_str().map(str::to_string))
            .unwrap_or_default();
        let acc = old_view
            .vertex_prop(sv, agg_prop)
            .and_then(|p| p.as_int())
            .unwrap_or(0);
        let members = old_view
            .vertex_prop(sv, "members")
            .and_then(|p| p.as_int())
            .unwrap_or(0);
        keys_in_order.push(key.clone());
        state.insert(key, (acc, members));
    }

    // retractions: subtract the member's contribution; a MIN/MAX
    // retraction of the current extremum kills a witness — flag the
    // group for a member re-scan
    let mut rescan: HashSet<String> = HashSet::new();
    let deleted: Vec<(String, i64)> = applied
        .deleted_vertices
        .iter()
        .filter(|&&v| base_old.vertex_type(v) == vtype)
        .map(|&v| (key_of(base_old, v), val_of(base_old, v)))
        .collect();
    for (key, val) in &deleted {
        if let Some(e) = state.get_mut(key) {
            e.1 -= 1;
            match agg {
                AggOp::Sum => e.0 -= val,
                AggOp::Count => e.0 -= 1,
                AggOp::Min | AggOp::Max => {
                    if *val == e.0 {
                        rescan.insert(key.clone());
                    }
                }
            }
        }
    }

    // insertions: fold the new member in; a first member creates its
    // group (appended — new vertices carry the highest base ids, so
    // first-member order puts new groups last)
    for &v in &applied.new_vertices {
        if !base_new.is_vertex_live(v) || base_new.vertex_type(v) != vtype {
            continue;
        }
        let key = key_of(base_new, v);
        let val = val_of(base_new, v);
        match state.get_mut(&key) {
            Some(e) => {
                e.1 += 1;
                e.0 = match agg {
                    AggOp::Sum => e.0 + val,
                    AggOp::Count => e.0 + 1,
                    AggOp::Min => e.0.min(val),
                    AggOp::Max => e.0.max(val),
                };
            }
            None => {
                let acc = match agg {
                    AggOp::Sum => val,
                    AggOp::Count => 1,
                    AggOp::Min | AggOp::Max => val,
                };
                state.insert(key.clone(), (acc, 1));
                keys_in_order.push(key);
            }
        }
    }

    // a retraction can evict a group's *first* member, reordering the
    // supervertices (first-member order over the new base) or killing
    // the group outright — re-derive order and membership by scanning
    // the grouped type's keys; aggregate values stay incremental
    let mut members_of: HashMap<String, Vec<VertexId>> = HashMap::new();
    if !deleted.is_empty() {
        keys_in_order.clear();
        let mut counts: HashMap<String, i64> = HashMap::new();
        for v in base_new.vertices() {
            if base_new.vertex_type(v) != vtype {
                continue;
            }
            let key = key_of(base_new, v);
            let c = counts.entry(key.clone()).or_insert(0);
            if *c == 0 {
                keys_in_order.push(key.clone());
            }
            *c += 1;
            members_of.entry(key).or_default().push(v);
        }
        for (key, count) in counts {
            if let Some(e) = state.get_mut(&key) {
                e.1 = count;
            }
        }
        for key in &rescan {
            let Some(members) = members_of.get(key) else {
                continue; // group died with its last witness
            };
            let acc = members.iter().map(|&v| val_of(base_new, v)).fold(
                match agg {
                    AggOp::Sum | AggOp::Count => 0,
                    AggOp::Min => i64::MAX,
                    AggOp::Max => i64::MIN,
                },
                |acc, v| match agg {
                    AggOp::Sum => acc + v,
                    AggOp::Count => acc + 1,
                    AggOp::Min => acc.min(v),
                    AggOp::Max => acc.max(v),
                },
            );
            if let Some(e) = state.get_mut(key) {
                e.0 = acc;
            }
        }
    }

    // rebuild: non-grouped vertices in base order, then supervertices
    // in first-member order — exactly the scratch layout
    let mut b = GraphBuilder::new();
    let mut copy_id: HashMap<VertexId, VertexId> = HashMap::new();
    for v in base_new.vertices() {
        if base_new.vertex_type(v) == vtype {
            continue;
        }
        let nv = b.add_vertex(base_new.vertex_type(v));
        for (key, val) in base_new.vertex_props(v).iter() {
            b.set_vertex_prop(nv, base_new.resolve(key), val.clone());
        }
        copy_id.insert(v, nv);
    }
    let mut super_of: HashMap<String, VertexId> = HashMap::new();
    for key in &keys_in_order {
        let (acc, members) = state[key];
        let sv = b.add_vertex(vtype);
        b.set_vertex_prop(sv, group_prop, Value::Str(key.clone()));
        b.set_vertex_prop(sv, agg_prop, Value::Int(acc));
        b.set_vertex_prop(sv, "members", Value::Int(members));
        super_of.insert(key.clone(), sv);
    }

    // edges in base order, endpoints re-targeted to supervertices
    // (group keys memoized per grouped endpoint), intra-group edges
    // collapsed away
    let mut grouped_target: HashMap<VertexId, VertexId> = HashMap::new();
    let mut view_id = |v: VertexId, b: &GraphBuilder| -> VertexId {
        let _ = b;
        match copy_id.get(&v) {
            Some(&nv) => nv,
            None => *grouped_target
                .entry(v)
                .or_insert_with(|| super_of[&key_of(base_new, v)]),
        }
    };
    for e in base_new.edges() {
        let (s0, d0) = (base_new.edge_src(e), base_new.edge_dst(e));
        let s = view_id(s0, &b);
        let d = view_id(d0, &b);
        if s == d && base_new.vertex_type(s0) == vtype && base_new.vertex_type(d0) == vtype {
            continue;
        }
        let ne = b.add_edge(s, d, base_new.edge_type(e));
        for (key, val) in base_new.edge_props(e).iter() {
            b.set_edge_prop(ne, base_new.resolve(key), val.clone());
        }
    }
    (b.finish(), rescan.len())
}

/// How a [`RefreshDag`] executes: worker-pool parallelism and connector
/// partitioning.
#[derive(Clone, Copy)]
pub struct RefreshOptions<'a> {
    /// Run each execution level's views on parallel workers (levels
    /// with a single view always run inline).
    pub parallel: bool,
    /// Partitioned connector refresh (the sharded coordinator passes
    /// its vertex partitioner).
    pub partition: Option<Partition<'a>>,
    /// Where level-parallel refresh and partitioned frontier work run.
    /// `None` falls back to spawn-per-call [`ScopedExec`]; serving
    /// runtimes pass their persistent worker pool so steady-state
    /// publishes never spawn a thread.
    pub exec: Option<&'a dyn ParallelExec>,
}

impl std::fmt::Debug for RefreshOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefreshOptions")
            .field("parallel", &self.parallel)
            .field("partition", &self.partition)
            .field("exec", &self.exec.map(|_| "dyn ParallelExec"))
            .finish()
    }
}

impl Default for RefreshOptions<'_> {
    fn default() -> Self {
        RefreshOptions {
            parallel: true,
            partition: None,
            exec: None,
        }
    }
}

/// What one publish did to a single view, for the serving metrics and
/// the flight recorder: which view, at which DAG level, how long its
/// maintainer ran, and how much work it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewRefreshStat {
    /// The refreshed view.
    pub view: ViewId,
    /// The execution-order level the view ran in.
    pub level: usize,
    /// Wall-clock time of this view's maintainer call.
    pub duration: std::time::Duration,
    /// Units of incremental work (delta size): sources / vertices the
    /// maintainer recomputed.
    pub recomputed: usize,
    /// Whether the maintainer fell back to full re-materialization.
    pub rematerialized: bool,
}

/// What one publish's view refresh did, for the serving metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefreshReport {
    /// Views refreshed this publish (the whole catalog).
    pub refreshed: usize,
    /// Of those, how many fell back to full re-materialization.
    pub rematerialized: usize,
    /// Depth of the execution order (1 without composed views).
    pub levels: usize,
    /// Per-view breakdown (one entry per catalog view, in [`ViewId`]
    /// order), the input signal for per-view telemetry.
    pub per_view: Vec<ViewRefreshStat>,
}

/// The per-publish materialization DAG: catalog views topo-sorted by
/// their input dependency (base graph, or another view for composed
/// views), grouped into levels of mutually independent views.
///
/// ```text
///            base graph ──┬────────────┬──────────────┐
///                         ▼            ▼              ▼
/// level 0:         [connector]   [summarizer]   [source-sink]
///                         │
///                         ▼ ViewDelta
/// level 1:      [composed: summarizer over connector]
/// ```
///
/// [`RefreshDag::refresh`] runs every view of a level concurrently on a
/// scoped worker pool, then feeds refreshed graphs (and their
/// [`ViewDelta`]s) to the next level.
#[derive(Debug, Clone)]
pub struct RefreshDag {
    /// True catalog slot ids, grouped into run-order levels. With
    /// tombstoned slots present these are not contiguous.
    levels: Vec<Vec<ViewId>>,
    /// Live slot ids in catalog order: the dense-index → slot-id map
    /// the refresh loop works through.
    ids: Vec<ViewId>,
    /// Upstream edge per live view, as a dense index into `ids`.
    deps: Vec<Option<usize>>,
}

impl RefreshDag {
    /// Topo-sorts `catalog` into parallelizable execution levels. A
    /// composed view depends on the catalog entry materializing its
    /// upstream connector, when present; every other view (and a
    /// composed view whose upstream is not cataloged) reads the base
    /// graph and lands in level 0. Levels carry true catalog slot ids,
    /// so the DAG stays correct over a catalog with tombstoned slots.
    pub fn build(catalog: &Catalog) -> Self {
        let entries: Vec<(ViewId, &ViewDef)> = catalog
            .iter_with_ids()
            .map(|(id, v)| (id, &v.def))
            .collect();
        let n = entries.len();
        let mut deps: Vec<Option<usize>> = vec![None; n];
        for (i, (_, def)) in entries.iter().enumerate() {
            if let Some(up) = def.upstream_id() {
                deps[i] = entries.iter().position(|(_, d)| d.id() == up);
            }
        }
        // dependency chains are acyclic (a composed view's upstream is
        // always a plain connector), so level = chain depth
        let mut level_of = vec![0usize; n];
        for i in 0..n {
            let mut depth = 0;
            let mut cur = deps[i];
            while let Some(j) = cur {
                depth += 1;
                cur = deps[j];
            }
            level_of[i] = depth;
        }
        let max_level = level_of.iter().copied().max().unwrap_or(0);
        let mut levels: Vec<Vec<ViewId>> = vec![Vec::new(); if n == 0 { 0 } else { max_level + 1 }];
        for (i, &l) in level_of.iter().enumerate() {
            levels[l].push(entries[i].0);
        }
        let ids = entries.iter().map(|&(id, _)| id).collect();
        RefreshDag { levels, ids, deps }
    }

    /// The parallelizable execution levels, in run order. Views within
    /// a level are mutually independent.
    pub fn execution_order(&self) -> &[Vec<ViewId>] {
        &self.levels
    }

    /// Refreshes every catalog view after `applied`, level by level —
    /// views within a level run concurrently when `opts.parallel` —
    /// and returns the refreshed catalog (each view replaced in its
    /// own slot, so [`ViewId`]s and tombstones stay stable) plus a
    /// [`RefreshReport`].
    ///
    /// Must be called with the same catalog (same live slots) the DAG
    /// was built from.
    pub fn refresh(
        &self,
        catalog: &Catalog,
        applied: &AppliedDelta,
        opts: &RefreshOptions<'_>,
    ) -> (Catalog, RefreshReport) {
        let views: Vec<&MaterializedView> = self
            .ids
            .iter()
            .map(|&vid| {
                catalog
                    .get_by_id(vid)
                    .expect("refresh over the catalog this DAG was built from")
            })
            .collect();
        // dense position of each slot id, for level → results indexing
        let dense_of = |vid: ViewId| -> usize {
            self.ids
                .iter()
                .position(|&x| x == vid)
                .expect("level ids come from this DAG")
        };
        let mut results: Vec<Option<Refreshed>> = (0..views.len()).map(|_| None).collect();
        let mut timings: Vec<std::time::Duration> = vec![std::time::Duration::ZERO; views.len()];
        let mut level_of: Vec<usize> = vec![0; views.len()];
        for (l, level) in self.levels.iter().enumerate() {
            for &vid in level {
                level_of[dense_of(vid)] = l;
            }
        }
        for level in &self.levels {
            let run = |i: usize, done: &[Option<Refreshed>]| -> (Refreshed, std::time::Duration) {
                let view = views[i];
                let upstream = self.deps[i].map(|j| {
                    let up = done[j]
                        .as_ref()
                        .expect("upstream level scheduled before dependents");
                    Upstream {
                        old: &views[j].graph,
                        new: &up.graph,
                        delta: &up.delta,
                    }
                });
                let ctx = RefreshCtx {
                    partition: opts.partition,
                    upstream,
                    exec: opts.exec,
                };
                let t0 = std::time::Instant::now();
                let refreshed = view.def.maintainer_in(ctx).refresh(&view.graph, applied);
                (refreshed, t0.elapsed())
            };
            let outs: Vec<(usize, Refreshed, std::time::Duration)> = if opts.parallel
                && level.len() > 1
            {
                let exec = opts.exec.unwrap_or(&ScopedExec);
                let run = &run;
                let done: &[Option<Refreshed>] = &results;
                let slots: Vec<std::sync::Mutex<Option<(usize, Refreshed, std::time::Duration)>>> =
                    level.iter().map(|_| std::sync::Mutex::new(None)).collect();
                let dense: Vec<usize> = level.iter().map(|&vid| dense_of(vid)).collect();
                exec.run(level.len(), &|k| {
                    let i = dense[k];
                    let (r, dt) = run(i, done);
                    *slots[k].lock().unwrap_or_else(|e| e.into_inner()) = Some((i, r, dt));
                });
                slots
                    .into_iter()
                    .map(|s| {
                        s.into_inner()
                            .unwrap_or_else(|e| e.into_inner())
                            .expect("every refresh task completed")
                    })
                    .collect()
            } else {
                level
                    .iter()
                    .map(|&vid| {
                        let i = dense_of(vid);
                        let (r, dt) = run(i, &results);
                        (i, r, dt)
                    })
                    .collect()
            };
            for (i, r, dt) in outs {
                results[i] = Some(r);
                timings[i] = dt;
            }
        }
        let mut rematerialized = 0;
        let mut per_view = Vec::with_capacity(views.len());
        // replace each view in its own slot so the refreshed catalog
        // keeps the exact slot layout (ids and tombstones) of the input
        let mut catalog_new = catalog.clone();
        for (i, (view, r)) in views.iter().zip(results).enumerate() {
            let r = r.expect("every view is in exactly one level");
            if r.rematerialized {
                rematerialized += 1;
            }
            per_view.push(ViewRefreshStat {
                view: self.ids[i],
                level: level_of[i],
                duration: timings[i],
                recomputed: r.delta.recomputed,
                rematerialized: r.rematerialized,
            });
            catalog_new.replace(
                self.ids[i],
                MaterializedView::new(view.def.clone(), r.graph),
            );
        }
        (
            catalog_new,
            RefreshReport {
                refreshed: views.len(),
                rematerialized,
                levels: self.levels.len(),
                per_view,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain::{GraphDelta, VRef};
    use crate::materialize::materialize;
    use crate::views::PropPredicate;
    use kaskade_graph::Value;

    /// Canonical fingerprint: vertices in id order (type + sorted
    /// props), edges as a sorted multiset — the same identity the
    /// serving consistency oracle checks.
    type Fingerprint = (Vec<(String, Vec<(String, String)>)>, Vec<String>);
    fn fingerprint(g: &Graph) -> Fingerprint {
        let verts = g
            .vertices()
            .map(|v| {
                let mut props: Vec<(String, String)> = g
                    .vertex_props(v)
                    .iter()
                    .map(|(k, val)| (g.resolve(k).to_string(), format!("{val:?}")))
                    .collect();
                props.sort();
                (g.vertex_type(v).to_string(), props)
            })
            .collect();
        let mut edges: Vec<String> = g
            .edges()
            .map(|e| {
                let mut props: Vec<(String, String)> = g
                    .edge_props(e)
                    .iter()
                    .map(|(k, val)| (g.resolve(k).to_string(), format!("{val:?}")))
                    .collect();
                props.sort();
                format!(
                    "{}->{} {} {props:?}",
                    g.edge_src(e).0,
                    g.edge_dst(e).0,
                    g.edge_type(e)
                )
            })
            .collect();
        edges.sort();
        (verts, edges)
    }

    fn lineage() -> Graph {
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        b.set_vertex_prop(j1, "CPU", Value::Int(4));
        b.set_vertex_prop(j1, "pipelineName", Value::Str("p0".into()));
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.set_vertex_prop(j2, "CPU", Value::Int(9));
        b.set_vertex_prop(j2, "pipelineName", Value::Str("p0".into()));
        let f2 = b.add_vertex("File");
        let j3 = b.add_vertex("Job");
        b.set_vertex_prop(j3, "CPU", Value::Int(2));
        b.set_vertex_prop(j3, "pipelineName", Value::Str("p1".into()));
        for (i, (s, d, t)) in [
            (j1, f1, "WRITES_TO"),
            (f1, j2, "IS_READ_BY"),
            (j2, f2, "WRITES_TO"),
            (f2, j3, "IS_READ_BY"),
        ]
        .iter()
        .enumerate()
        {
            let e = b.add_edge(*s, *d, t);
            b.set_edge_prop(e, "ts", Value::Int(i as i64));
        }
        b.finish()
    }

    fn all_defs() -> Vec<ViewDef> {
        let conn = ConnectorDef::k_hop("Job", "Job", 2);
        vec![
            ViewDef::Connector(conn.clone()),
            ViewDef::SourceSink(SourceSinkDef::default()),
            ViewDef::Summarizer(SummarizerDef::VertexAggregator {
                vtype: "Job".into(),
                group_prop: "pipelineName".into(),
                agg_prop: "CPU".into(),
                agg: AggOp::Sum,
            }),
            ViewDef::Summarizer(SummarizerDef::VertexInclusion {
                keep: vec!["Job".into()],
            }),
            ViewDef::Composed(ComposedDef {
                connector: conn,
                summarizer: SummarizerDef::EdgePredicate {
                    keep: PropPredicate::IntAtLeast("support".into(), 1),
                },
            }),
        ]
    }

    fn catalog_over(g: &Graph) -> Catalog {
        let mut c = Catalog::new();
        for def in all_defs() {
            let graph = materialize(g, &def);
            c.add(MaterializedView::new(def, graph));
        }
        c
    }

    #[test]
    fn execution_order_puts_composed_after_upstream() {
        let g = lineage();
        let catalog = catalog_over(&g);
        let dag = RefreshDag::build(&catalog);
        let order = dag.execution_order();
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].len(), 4);
        assert_eq!(order[1], vec![ViewId(4)]);
    }

    #[test]
    fn dag_refresh_matches_scratch_for_every_variant() {
        let g = lineage();
        let catalog = catalog_over(&g);
        let dag = RefreshDag::build(&catalog);

        // grow: new job joins p1, reads f2; also a brand-new pipeline
        let mut d = GraphDelta::new();
        let j = d.add_vertex(
            "Job",
            vec![
                ("CPU".into(), Value::Int(7)),
                ("pipelineName".into(), Value::Str("p1".into())),
            ],
        );
        d.add_edge(
            VRef::Existing(VertexId(3)),
            j,
            "IS_READ_BY",
            vec![("ts".into(), Value::Int(10))],
        );
        let j4 = d.add_vertex(
            "Job",
            vec![
                ("CPU".into(), Value::Int(1)),
                ("pipelineName".into(), Value::Str("p2".into())),
            ],
        );
        let f = d.add_vertex("File", vec![]);
        d.add_edge(j4, f, "WRITES_TO", vec![("ts".into(), Value::Int(11))]);
        let applied = crate::maintain::apply_delta(&g, &d);
        let (refreshed, report) = dag.refresh(&catalog, &applied, &RefreshOptions::default());
        assert_eq!(report.refreshed, 5);
        assert_eq!(report.rematerialized, 0);
        assert_eq!(report.levels, 2);
        for view in refreshed.iter() {
            let scratch = materialize(&applied.graph, &view.def);
            assert_eq!(
                fingerprint(&view.graph),
                fingerprint(&scratch),
                "view {} diverged from scratch",
                view.def.id()
            );
        }

        // shrink: retract a job (kills a group member and a source path)
        let mut d2 = GraphDelta::new();
        d2.del_vertex(VertexId(2));
        let applied2 = crate::maintain::apply_delta(&applied.graph, &d2);
        let (refreshed2, report2) = dag.refresh(
            &refreshed,
            &applied2,
            &RefreshOptions {
                parallel: false,
                partition: None,
                exec: None,
            },
        );
        assert_eq!(report2.rematerialized, 0);
        for view in refreshed2.iter() {
            let scratch = materialize(&applied2.graph, &view.def);
            assert_eq!(
                fingerprint(&view.graph),
                fingerprint(&scratch),
                "view {} diverged from scratch after retraction",
                view.def.id()
            );
        }
    }

    #[test]
    fn min_max_witness_death_rescans_one_group() {
        let mut b = GraphBuilder::new();
        for (cpu, p) in [(3, "p0"), (8, "p0"), (5, "p1")] {
            let j = b.add_vertex("Job");
            b.set_vertex_prop(j, "CPU", Value::Int(cpu));
            b.set_vertex_prop(j, "pipelineName", Value::Str(p.into()));
        }
        let g = b.finish();
        let def = ViewDef::Summarizer(SummarizerDef::VertexAggregator {
            vtype: "Job".into(),
            group_prop: "pipelineName".into(),
            agg_prop: "CPU".into(),
            agg: AggOp::Max,
        });
        let view = materialize(&g, &def);
        // retract the p0 witness (CPU=8): MAX must fall back to 3
        let mut d = GraphDelta::new();
        d.del_vertex(VertexId(1));
        let applied = crate::maintain::apply_delta(&g, &d);
        let refreshed = def.maintainer().refresh(&view, &applied);
        assert!(!refreshed.rematerialized);
        assert_eq!(
            refreshed.delta.recomputed, 1,
            "exactly one group re-scanned"
        );
        assert_eq!(
            fingerprint(&refreshed.graph),
            fingerprint(&materialize(&applied.graph, &def))
        );
        // retract a non-witness (p1 untouched, p0's max stands): no re-scan
        let mut d2 = GraphDelta::new();
        d2.del_vertex(VertexId(0));
        let applied2 = crate::maintain::apply_delta(&applied.graph, &d2);
        let view2 = refreshed.graph;
        let refreshed2 = def.maintainer().refresh(&view2, &applied2);
        assert_eq!(
            fingerprint(&refreshed2.graph),
            fingerprint(&materialize(&applied2.graph, &def))
        );
    }

    #[test]
    fn composed_without_upstream_counts_as_rematerialization() {
        let g = lineage();
        let def = ViewDef::Composed(ComposedDef {
            connector: ConnectorDef::k_hop("Job", "Job", 2),
            summarizer: SummarizerDef::EdgePredicate {
                keep: PropPredicate::IntAtLeast("support".into(), 1),
            },
        });
        let mut catalog = Catalog::new();
        catalog.add(MaterializedView::new(def.clone(), materialize(&g, &def)));
        let dag = RefreshDag::build(&catalog);
        assert_eq!(dag.execution_order().len(), 1);
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        let applied = crate::maintain::apply_delta(&g, &d);
        let (_, report) = dag.refresh(&catalog, &applied, &RefreshOptions::default());
        assert_eq!(report.rematerialized, 1);
    }

    #[test]
    fn empty_delta_reuses_summarizer_and_composed_graphs() {
        let g = lineage();
        let catalog = catalog_over(&g);
        let dag = RefreshDag::build(&catalog);
        let applied = crate::maintain::apply_delta(&g, &GraphDelta::new());
        let (refreshed, report) = dag.refresh(&catalog, &applied, &RefreshOptions::default());
        assert_eq!(report.rematerialized, 0);
        for (old, new) in catalog.iter().zip(refreshed.iter()) {
            assert_eq!(fingerprint(&old.graph), fingerprint(&new.graph));
        }
    }
}
