//! View-based query rewriting (§V-C).
//!
//! Given a query and a connector view, the rewriter locates the pattern
//! fragment the connector covers — a chain of pattern edges from the
//! candidate's source variable to its destination variable whose
//! interior vertices are used nowhere else — and splices in a single
//! (variable-length) connector-edge pattern with hop bounds scaled by
//! the connector's `k`. This is exactly the Listing 1 → Listing 4
//! transformation of the paper.

use kaskade_graph::Schema;
use kaskade_query::{EdgePattern, GraphPattern, Query};

use crate::views::ConnectorDef;

/// A chain of pattern edges from `x` to `y` with clean interior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Indices (into `pattern.edges`) of the chain's edges, in order.
    pub edge_indices: Vec<usize>,
    /// Interior vertex variables (between `x` and `y`).
    pub interior: Vec<String>,
    /// Minimum total hops of the chain.
    pub lo: usize,
    /// Maximum total hops of the chain.
    pub hi: usize,
}

/// Finds the unique pattern-edge chain from `x` to `y` whose interior
/// vertices (a) are not projected by `RETURN`, (b) have exactly one
/// incoming and one outgoing pattern edge, and (c) appear in no other
/// pattern edge. Returns `None` when no such chain exists — in that
/// case a connector between `x` and `y` cannot replace the fragment
/// without changing query semantics.
pub fn find_chain(pattern: &GraphPattern, x: &str, y: &str) -> Option<Chain> {
    if x == y {
        return None;
    }
    let returned: Vec<&str> = pattern.returns.iter().map(|(v, _)| v.as_str()).collect();
    let mut edge_indices = Vec::new();
    let mut interior = Vec::new();
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut cur = x.to_string();
    loop {
        // the unique outgoing pattern edge from `cur`
        let outs: Vec<(usize, &EdgePattern)> = pattern
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.src == cur)
            .collect();
        if outs.len() != 1 {
            return None;
        }
        let (idx, edge) = outs[0];
        if edge_indices.contains(&idx) {
            return None; // cycle
        }
        edge_indices.push(idx);
        match edge.hops {
            None => {
                lo += 1;
                hi += 1;
            }
            Some((l, h)) => {
                lo += l;
                hi += h;
            }
        }
        if edge.dst == y {
            return Some(Chain {
                edge_indices,
                interior,
                lo,
                hi,
            });
        }
        let node = edge.dst.clone();
        // interior cleanliness
        if returned.contains(&node.as_str()) {
            return None;
        }
        let in_deg = pattern.edges.iter().filter(|e| e.dst == node).count();
        let out_deg = pattern.edges.iter().filter(|e| e.src == node).count();
        if in_deg != 1 || out_deg != 1 {
            return None;
        }
        interior.push(node.clone());
        cur = node;
    }
}

/// Scales a raw-hop window `[lo, hi]` to connector hops for a k-hop
/// connector: realizable raw distances are multiples of `k`, so the
/// connector window is `[ceil(lo/k), floor(hi/k)]`. Returns `None`
/// when the window is empty (the connector cannot express the chain).
pub fn connector_hop_window(lo: usize, hi: usize, k: usize) -> Option<(usize, usize)> {
    if k == 0 {
        return None;
    }
    let clo = lo.div_ceil(k).max(1);
    let chi = hi / k;
    if clo > chi {
        None
    } else {
        Some((clo, chi))
    }
}

/// Attempts to rewrite `query` so that the chain between `x` and `y`
/// runs over `connector` instead of the raw graph (Listing 1 →
/// Listing 4). Returns the rewritten query, which must then be executed
/// against the connector's materialized view graph.
///
/// The rewrite is only emitted when it is **exactly equivalent**: every
/// schema-feasible raw distance in the chain's hop window must be a
/// multiple of the connector's `k` and covered by the scaled window.
/// (E.g. a 4-hop job-to-job connector cannot replace a `[2..10]`-hop
/// chain on the provenance schema — it would lose the distances 2, 6
/// and 10.) A chain whose lower bound is 0 hops cannot be rewritten at
/// all, because no connector edge expresses "zero hops".
pub fn rewrite_over_connector(
    query: &Query,
    x: &str,
    y: &str,
    connector: &ConnectorDef,
    schema: &Schema,
) -> Option<Query> {
    let pattern = query.pattern()?;
    // endpoint types must match the connector
    if pattern.node(x)?.label.as_deref() != Some(connector.src_type.as_str()) {
        return None;
    }
    if pattern.node(y)?.label.as_deref() != Some(connector.dst_type.as_str()) {
        return None;
    }
    let chain = find_chain(pattern, x, y)?;
    if chain.lo == 0 {
        return None;
    }
    // Kaskade rewritings rely on a single view (§V-C): the rewritten
    // query runs entirely on the view graph, so the connector must cover
    // the whole traversal — every pattern edge must belong to the chain.
    if chain.edge_indices.len() != pattern.edges.len() {
        return None;
    }
    // A same-edge-type connector only contracts walks of its edge type:
    // every chain hop must carry exactly that type. (For untyped
    // connectors we rely on the schema constraining which walks exist
    // between the endpoint types — exact for the bipartite/homogeneous
    // schemas considered here; a general regular-language containment
    // check is future work.)
    if let Some(required) = &connector.etype {
        for &idx in &chain.edge_indices {
            if pattern.edges[idx].etype.as_deref() != Some(required.as_str()) {
                return None;
            }
        }
    }
    let (clo, chi) = connector_hop_window(chain.lo, chain.hi, connector.k)?;
    // Equivalence condition. Both the raw window and the view run with
    // shortest-distance semantics, and a pair's connector distance is
    // dist/k exactly when every schema-feasible raw distance is a
    // multiple of k (then the shortest raw walk itself decomposes into
    // k-blocks, and no shorter connector path can exist). Under that
    // premise the scaled window [clo, chi] selects precisely the raw
    // distances in [lo, hi]. If some feasible distance d <= hi is NOT a
    // multiple of k the premise breaks — e.g. FOLLOWS*2..2 on a
    // homogeneous schema, where distance-1 pairs inside triangles also
    // have 2-walks and would wrongly appear in the view — so we refuse.
    for d in 1..=chain.hi {
        if d % connector.k != 0
            && schema.has_k_hop_walk(&connector.src_type, &connector.dst_type, d)
        {
            return None;
        }
    }

    let mut new_query = query.clone();
    let p = new_query.pattern_mut()?;
    // drop chain edges (descending index order keeps indices valid)
    let mut to_drop = chain.edge_indices.clone();
    to_drop.sort_unstable();
    for idx in to_drop.into_iter().rev() {
        p.edges.remove(idx);
    }
    // drop interior nodes
    p.nodes.retain(|n| !chain.interior.contains(&n.var));
    // splice the connector edge
    p.edges.push(EdgePattern::var_length(
        x,
        y,
        Some(&connector.edge_label()),
        clo,
        chi,
    ));
    Some(new_query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_query::{listings::LISTING_1, parse};

    fn prov() -> Schema {
        Schema::provenance()
    }

    #[test]
    fn chain_of_listing_1() {
        let q = parse(LISTING_1).unwrap();
        let p = q.pattern().unwrap();
        let c = find_chain(p, "q_j1", "q_j2").unwrap();
        assert_eq!(c.edge_indices.len(), 3);
        assert_eq!(c.interior, vec!["q_f1".to_string(), "q_f2".to_string()]);
        assert_eq!((c.lo, c.hi), (2, 10)); // 1 + [0..8] + 1
    }

    #[test]
    fn chain_rejects_projected_interior() {
        let q = parse(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job)
             RETURN a, f, b",
        )
        .unwrap();
        assert!(find_chain(q.pattern().unwrap(), "a", "b").is_none());
    }

    #[test]
    fn chain_rejects_branching_interior() {
        let q = parse(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job)
                   (f:File)-[:IS_READ_BY]->(c:Job)
             RETURN a, b, c",
        )
        .unwrap();
        assert!(find_chain(q.pattern().unwrap(), "a", "b").is_none());
    }

    #[test]
    fn chain_simple_two_hop() {
        let q = parse(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        )
        .unwrap();
        let c = find_chain(q.pattern().unwrap(), "a", "b").unwrap();
        assert_eq!((c.lo, c.hi), (2, 2));
    }

    #[test]
    fn hop_window_scaling() {
        assert_eq!(connector_hop_window(2, 10, 2), Some((1, 5)));
        assert_eq!(connector_hop_window(2, 2, 2), Some((1, 1)));
        assert_eq!(connector_hop_window(2, 10, 4), Some((1, 2)));
        assert_eq!(connector_hop_window(3, 3, 2), None); // no multiple of 2 in [3,3]
        assert_eq!(connector_hop_window(2, 3, 2), Some((1, 1)));
        assert_eq!(connector_hop_window(0, 0, 2), None);
        assert_eq!(connector_hop_window(1, 1, 1), Some((1, 1)));
    }

    #[test]
    fn listing_1_rewrites_to_listing_4_shape() {
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let rw = rewrite_over_connector(&q, "q_j1", "q_j2", &def, &prov()).unwrap();
        let p = rw.pattern().unwrap();
        assert_eq!(p.edges.len(), 1);
        let e = &p.edges[0];
        assert_eq!(e.src, "q_j1");
        assert_eq!(e.dst, "q_j2");
        assert_eq!(e.etype.as_deref(), Some("JOB_TO_JOB_2_HOP"));
        assert_eq!(e.hops, Some((1, 5)));
        // interior nodes are gone
        assert!(p.node("q_f1").is_none());
        assert!(p.node("q_f2").is_none());
        // projection untouched
        assert_eq!(p.returns.len(), 2);
    }

    #[test]
    fn rewrite_with_4_hop_connector_is_rejected_as_inexact() {
        // raw window [2,10] contains feasible distances 2, 6, 10 that a
        // 4-hop connector cannot express — rewriting would drop results
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("Job", "Job", 4);
        assert!(rewrite_over_connector(&q, "q_j1", "q_j2", &def, &prov()).is_none());
    }

    #[test]
    fn rewrite_with_4_hop_connector_accepted_when_window_aligns() {
        // a chain of exactly [4..8] hops: feasible distances 4, 6, 8;
        // k=4 still loses 6, so rejected; k=2 covers all of them
        let q = parse(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[e*3..7]->(g:File)
                   (g:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        )
        .unwrap();
        let k4 = ConnectorDef::k_hop("Job", "Job", 4);
        assert!(rewrite_over_connector(&q, "a", "b", &k4, &prov()).is_none());
        let k2 = ConnectorDef::k_hop("Job", "Job", 2);
        let rw = rewrite_over_connector(&q, "a", "b", &k2, &prov()).unwrap();
        assert_eq!(rw.pattern().unwrap().edges[0].hops, Some((3, 4))); // raw 5..9 → even 6, 8
    }

    #[test]
    fn rewrite_rejects_zero_lower_bound_chain() {
        // the chain q_f1 →(*0..8)→ q_f2 alone has lo=0: a connector edge
        // cannot express the zero-hop (f1 = f2) case
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("File", "File", 2);
        assert!(rewrite_over_connector(&q, "q_f1", "q_f2", &def, &prov()).is_none());
    }

    #[test]
    fn typed_connector_requires_matching_chain_types() {
        // a bipartite schema with a single typed edge relation per hop:
        // every Job→Job distance is even, so [2,2] windows are sound
        let mut schema = Schema::new();
        schema.add_edge_rule("Job", "W", "File");
        schema.add_edge_rule("File", "W", "Job");
        let q = parse("MATCH (a:Job)-[:W]->(f:File) (f:File)-[:W]->(b:Job) RETURN a, b").unwrap();
        let right = ConnectorDef::same_edge_type("Job", "Job", 2, "W");
        assert!(rewrite_over_connector(&q, "a", "b", &right, &schema).is_some());
        let wrong = ConnectorDef::same_edge_type("Job", "Job", 2, "X");
        assert!(rewrite_over_connector(&q, "a", "b", &wrong, &schema).is_none());
    }

    #[test]
    fn homogeneous_exact_window_is_rejected_as_unsound() {
        // on a one-type schema, distance-1 pairs are feasible below the
        // window's lower bound 2, so a [2,2] rewrite would overcount
        // (triangles) — the rewriter must refuse
        let schema = Schema::homogeneous("User", "FOLLOWS");
        let q = parse("MATCH (a:User)-[:FOLLOWS*2..2]->(b:User) RETURN a, b").unwrap();
        let def = ConnectorDef::same_edge_type("User", "User", 2, "FOLLOWS");
        assert!(rewrite_over_connector(&q, "a", "b", &def, &schema).is_none());
    }

    #[test]
    fn rewrite_rejects_partial_pattern_coverage() {
        // a 1-hop job-to-file connector would only cover the first edge
        // of Listing 1's pattern; the rewritten query would then need
        // IS_READ_BY edges the view graph does not contain
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("Job", "File", 1);
        assert!(rewrite_over_connector(&q, "q_j1", "q_f1", &def, &prov()).is_none());
    }

    #[test]
    fn rewrite_rejects_type_mismatch() {
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("File", "File", 2);
        assert!(rewrite_over_connector(&q, "q_j1", "q_j2", &def, &prov()).is_none());
    }

    #[test]
    fn rewrite_rejects_unknown_vars() {
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        assert!(rewrite_over_connector(&q, "zz", "q_j2", &def, &prov()).is_none());
    }

    #[test]
    fn rewrite_preserves_outer_select() {
        let q = parse(LISTING_1).unwrap();
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let rw = rewrite_over_connector(&q, "q_j1", "q_j2", &def, &prov()).unwrap();
        // outer SELECT must be structurally identical apart from the pattern
        let kaskade_query::Query::Select(outer) = &rw else {
            panic!()
        };
        assert_eq!(outer.items.len(), 2);
        assert_eq!(outer.group_by.len(), 1);
    }
}
