//! The Prolog rule library: constraint mining rules and view templates.
//!
//! These are the paper's Listings 2, 3, 5 and 6, kept **verbatim** (same
//! predicate names, same clause structure) and run on our own inference
//! engine. Two documented additions:
//!
//! * `schemaKHopWalk/3` — the acyclic-trail rule `schemaKHopPath` of
//!   Lst. 2 only admits paths that never revisit a vertex *type*, which
//!   caps k at the number of schema types; the §IV-B walkthrough,
//!   however, expects `K = 2,4,6,8,10` instantiations for the
//!   provenance schema (2 types). `schemaKHopWalk` is the bounded-walk
//!   variant that matches that expectation; the `kHopConnector` view
//!   template consults it (with `K` already bound by the query
//!   constraints, so evaluation terminates).
//! * `removableVertexType/1` and `removableEdgeType/1` — the driving
//!   queries for summarizer enumeration. Lst. 5's
//!   `summarizerRemoveVertices` checks whether removing a *given* type
//!   is safe per query vertex; these rules quantify over the schema to
//!   produce the removable set directly.

/// Constraint mining rules for the graph schema (paper Lst. 2 plus the
/// bounded-walk variant).
pub const SCHEMA_MINING_RULES: &str = r#"
% Determine whether acyclic directed k-length paths
% between two nodes X and Y are feasible over the input
% graph schema. schemaEdge are explicit constraints
% extracted from the schema.  (Paper Lst. 2, verbatim.)
schemaKHopPath(X,Y,K) :-
    schemaKHopPath(X,Y,K,[]).
schemaKHopPath(X,Y,1,_) :-
    schemaEdge(X,Y,_).
schemaKHopPath(X,Y,K,Trail) :-
    schemaEdge(X,Z,_), not(member(Z,Trail)),
    schemaKHopPath(Z,Y,K1,[X|Trail]), K is K1 + 1.

% Bounded-walk variant: k-length schema walks that may revisit vertex
% types. K must be bound (the view templates bind it from the query
% constraints before consulting this rule).
schemaKHopWalk(X,Y,1) :- schemaEdge(X,Y,_).
schemaKHopWalk(X,Y,K) :- K > 1, K1 is K - 1,
    schemaEdge(X,Z,_), schemaKHopWalk(Z,Y,K1).

% Reachability over the schema graph (acyclic trails).
schemaPath(X,Y) :- schemaEdge(X,Y,_).
schemaPath(X,Y) :- schemaKHopPath(X,Y,_).

% Reflexive-transitive schema reachability.
schemaReach(T, T) :- schemaVertex(T).
schemaReach(X, Y) :- schemaPath(X, Y).
"#;

/// Constraint mining rules for the query (paper Lst. 6, verbatim).
pub const QUERY_MINING_RULES: &str = r#"
% Query k-hop variable length paths
queryKHopVariableLengthPath(X, Y, K) :-
    queryVariableLengthPath(X, Y, LOWER, UPPER),
    between(LOWER, UPPER, K).

% Query k-hop paths
queryKHopPath(X, Y, 1) :- queryEdge(X, Y).
queryKHopPath(X, Y, K) :-
    queryKHopVariableLengthPath(X, Y, K).
queryKHopPath(X, Y, K) :- queryEdge(X, Z),
    queryKHopPath(Z, Y, K1), K is K1 + 1.
queryKHopPath(X, Y, K) :-
    queryKHopVariableLengthPath(X, Z, K2),
    queryKHopPath(Z, Y, K1), K is K1 + K2.

% Query paths
queryPath(X, Y) :- queryEdge(X, Y).
queryPath(X, Y) :- queryKHopPath(X, Y, _).
queryPath(X, Y) :- queryEdge(X, Z), queryPath(Z, Y).

% Query vertex source/sink
queryVertexSource(X) :- queryVertexInDegree(X, 0).
queryVertexSink(X) :- queryVertexOutDegree(X, 0).

% Query vertex in/out degrees
queryIncomingVertices(X, INLIST) :- queryVertex(X),
    findall(SRC, queryEdge(SRC, X), INLIST).
queryOutgoingVertices(X, OUTLIST) :- queryVertex(X),
    findall(DST, queryEdge(X, DST), OUTLIST).
queryVertexInDegree(X, D) :-
    queryIncomingVertices(X, INLIST), length(INLIST, D).
queryVertexOutDegree(X, D) :-
    queryOutgoingVertices(X, OUTLIST), length(OUTLIST, D).
"#;

/// Connector view templates (paper Lst. 3; `schemaKHopWalk` is consulted
/// where the paper writes `schemaKHopPath`, see module docs).
pub const CONNECTOR_TEMPLATES: &str = r#"
% k-hop connector between nodes X and Y.
kHopConnector(X, Y, XTYPE, YTYPE, K) :-
    % query constraints
    queryVertexType(X, XTYPE),
    queryVertexType(Y, YTYPE),
    queryKHopPath(X, Y, K),
    K > 0,
    % schema constraints
    schemaKHopWalk(XTYPE, YTYPE, K).

% k-hop connector where all vertices are of the same type.
kHopConnectorSameVertexType(X, Y, VTYPE, K) :-
    kHopConnector(X, Y, VTYPE, VTYPE, K).

% Variable-length connector where all vertices are of
% the same type.
connectorSameVertexType(X, Y, VTYPE) :-
    % query constraints
    queryVertexType(X, VTYPE),
    queryVertexType(Y, VTYPE),
    queryPath(X, Y),
    % schema constraints
    schemaPath(VTYPE, VTYPE).

% Source-to-sink variable-length connector.
sourceToSinkConnector(X, Y) :-
    % query constraints
    queryVertexSource(X),
    queryVertexSink(Y),
    queryPath(X, Y).

% Same-edge-type connector (Table I row 3): a typed variable-length
% path in the query whose single edge type also forms k-length schema
% walks between the endpoint types.
sameEdgeTypeConnector(X, Y, XTYPE, YTYPE, ETYPE, K) :-
    % query constraints
    queryVertexType(X, XTYPE),
    queryVertexType(Y, YTYPE),
    queryPathEdgeType(X, Y, ETYPE),
    queryKHopVariableLengthPath(X, Y, K),
    K > 0,
    % schema constraints: a k-walk using only ETYPE edges
    schemaKHopWalkVia(XTYPE, YTYPE, ETYPE, K).

schemaKHopWalkVia(X, Y, ETYPE, 1) :- schemaEdge(X, Y, ETYPE).
schemaKHopWalkVia(X, Y, ETYPE, K) :- K > 1, K1 is K - 1,
    schemaEdge(X, Z, ETYPE), schemaKHopWalkVia(Z, Y, ETYPE, K1).
"#;

/// Summarizer view templates (paper Lst. 5, verbatim) plus the driving
/// enumeration rules.
pub const SUMMARIZER_TEMPLATES: &str = r#"
% summarizers: filter vertices and edges by type  (Paper Lst. 5.)
summarizerRemoveEdges(X, Y, ETYPE_REMOVE, ETYPE_KEPT) :-
    queryEdge(X, Y), not(queryEdgeType(X, Y, ETYPE_REMOVE)),
    queryEdgeType(X, Y, ETYPE_KEPT).
summarizerRemoveVertices(X, VTYPE_REMOVE, VTYPE_KEPT) :-
    queryVertex(X), not(queryVertexType(X, VTYPE_REMOVE)),
    queryVertexType(X, VTYPE_KEPT).

% Example aggr function for higher-order functions such
% as aggregator graph view templates.
sum(X, Y, R) :- R is X + Y.

% Ego-centric k-hop neighborhood (undirected).
queryVertexKHopNbors(K, X, LIST) :- queryVertex(X),
    findall(SRC, queryKHopPath(SRC, X, K), INLIST),
    findall(DST, queryKHopPath(X, DST, K), OUTLIST),
    append(INLIST, OUTLIST, TMPLIST), sort(TMPLIST, LIST).

% Example aggregator using k-hop neighborhood, e.g.,
% aggregate all 1-hop neighbors as sum of their
% bytes: "kHopNborsAggregator(1, j2, 'bytes', sum, R)."
kHopNborsAggregator(K, X, P, AGGR, RESULT) :-
    queryVertexKHopNbors(K, X, NBORS),
    convlist(property(P), NBORS, OUTLIST),
    foldl(AGGR, OUTLIST, 0, RESULT).

% Driving queries for summarizer enumeration. A type is removable only
% when the query cannot possibly traverse it — which for variable-length
% paths requires schema reachability analysis, not just looking at the
% named pattern elements: an (untyped) -[*l..u]-> between two File
% vertices walks through every vertex/edge type on some File-to-File
% schema walk.

% Edge types the query traverses: explicitly named...
queryTraversesEdgeType(T) :- queryEdgeType(_, _, T).
% ...or lying on a possible realization of an untyped variable-length
% path (source endpoint type reaches the edge's domain, and the edge's
% range reaches the destination endpoint type)...
queryTraversesEdgeType(T) :-
    queryVariableLengthPath(X, Y, _, _),
    not(queryPathEdgeType(X, Y, _)),
    queryVertexType(X, XT), queryVertexType(Y, YT),
    schemaEdge(S, D, T),
    schemaReach(XT, S), schemaReach(D, YT).
% ...or anything at all, when a variable-length path has an untyped
% endpoint (no way to bound what it walks through)...
queryTraversesEdgeType(T) :-
    queryVariableLengthPath(X, _, _, _),
    not(queryPathEdgeType(X, _, _)),
    not(queryVertexType(X, _)), schemaEdge(_, _, T).
queryTraversesEdgeType(T) :-
    queryVariableLengthPath(_, Y, _, _),
    not(queryPathEdgeType(_, Y, _)),
    not(queryVertexType(Y, _)), schemaEdge(_, _, T).
% ...or compatible with an untyped single-hop pattern edge.
queryTraversesEdgeType(T) :-
    queryEdge(X, Y), not(queryEdgeType(X, Y, _)),
    queryVertexType(X, XT), queryVertexType(Y, YT),
    schemaEdge(XT, YT, T).
queryTraversesEdgeType(T) :-
    queryEdge(X, Y), not(queryEdgeType(X, Y, _)),
    not(queryVertexType(X, _)), schemaEdge(_, _, T).
queryTraversesEdgeType(T) :-
    queryEdge(X, Y), not(queryEdgeType(X, Y, _)),
    not(queryVertexType(Y, _)), schemaEdge(_, _, T).

% Vertex types the query traverses: named on a pattern vertex, or a
% possible intermediate of any variable-length path.
queryTraversesVertexType(T) :- queryVertexType(_, T).
queryTraversesVertexType(T) :-
    queryVariableLengthPath(X, Y, _, _),
    queryVertexType(X, XT), queryVertexType(Y, YT),
    schemaVertex(T), schemaReach(XT, T), schemaReach(T, YT).
queryTraversesVertexType(T) :-
    queryVariableLengthPath(X, _, _, _),
    not(queryVertexType(X, _)), schemaVertex(T).
queryTraversesVertexType(T) :-
    queryVariableLengthPath(_, Y, _, _),
    not(queryVertexType(Y, _)), schemaVertex(T).

removableVertexType(T) :- schemaVertex(T), not(queryTraversesVertexType(T)).
removableEdgeType(T) :- schemaEdge(_, _, T), not(queryTraversesEdgeType(T)).
keptVertexType(T) :- schemaVertex(T), queryTraversesVertexType(T).
keptEdgeType(T) :- schemaEdge(_, _, T), queryTraversesEdgeType(T).
"#;

/// Fact predicates the constraint miner may emit. All are declared
/// dynamic so rules consulting an absent kind of fact fail cleanly
/// instead of raising unknown-predicate errors.
pub const FACT_PREDICATES: &[(&str, usize)] = &[
    ("queryVertex", 1),
    ("queryVertexType", 2),
    ("queryEdge", 2),
    ("queryEdgeType", 3),
    ("queryVariableLengthPath", 4),
    ("schemaVertex", 1),
    ("schemaEdge", 3),
    ("property", 3),
    ("queryPathEdgeType", 3),
];

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_prolog::Database;

    fn base_db() -> Database {
        let mut db = Database::with_prelude();
        db.consult(SCHEMA_MINING_RULES).unwrap();
        db.consult(QUERY_MINING_RULES).unwrap();
        db.consult(CONNECTOR_TEMPLATES).unwrap();
        db.consult(SUMMARIZER_TEMPLATES).unwrap();
        for (f, a) in FACT_PREDICATES {
            db.declare_dynamic(f, *a);
        }
        db
    }

    #[test]
    fn all_rule_sets_parse() {
        base_db();
    }

    #[test]
    fn schema_walk_allows_type_revisits() {
        let mut db = base_db();
        db.consult(
            "schemaEdge('Job','File','WRITES_TO').
             schemaEdge('File','Job','IS_READ_BY').",
        )
        .unwrap();
        // trail-based rule: only K=2 for Job→Job
        assert!(db.has_solution("schemaKHopPath('Job','Job',2)").unwrap());
        assert!(!db.has_solution("schemaKHopPath('Job','Job',4)").unwrap());
        // bounded walk: any even K
        assert!(db.has_solution("schemaKHopWalk('Job','Job',4)").unwrap());
        assert!(db.has_solution("schemaKHopWalk('Job','Job',10)").unwrap());
        assert!(!db.has_solution("schemaKHopWalk('Job','Job',3)").unwrap());
    }

    #[test]
    fn query_k_hop_paths_combine_edges_and_var_lengths() {
        let mut db = base_db();
        db.consult(
            "queryVertex(q_j1). queryVertex(q_f1).
             queryVertex(q_f2). queryVertex(q_j2).
             queryEdge(q_j1, q_f1). queryEdge(q_f2, q_j2).
             queryVariableLengthPath(q_f1, q_f2, 0, 8).",
        )
        .unwrap();
        let sols = db.query("queryKHopPath(q_j1, q_j2, K)").unwrap();
        let mut ks: Vec<i64> = sols.iter().map(|s| s[0].1.int_value().unwrap()).collect();
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(ks, vec![2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn source_sink_detection() {
        let mut db = base_db();
        db.consult(
            "queryVertex(a). queryVertex(b). queryVertex(c).
             queryEdge(a, b). queryEdge(b, c).",
        )
        .unwrap();
        assert!(db.has_solution("queryVertexSource(a)").unwrap());
        assert!(!db.has_solution("queryVertexSource(b)").unwrap());
        assert!(db.has_solution("queryVertexSink(c)").unwrap());
        assert!(!db.has_solution("queryVertexSink(a)").unwrap());
    }

    #[test]
    fn removable_types_exclude_query_types() {
        let mut db = base_db();
        db.consult(
            "schemaVertex('Job'). schemaVertex('File'). schemaVertex('Task').
             schemaEdge('Job','File','WRITES_TO').
             schemaEdge('Job','Task','SPAWNS').
             queryVertex(j). queryVertexType(j, 'Job').
             queryVertex(f). queryVertexType(f, 'File').
             queryEdge(j, f). queryEdgeType(j, f, 'WRITES_TO').",
        )
        .unwrap();
        let sols = db.query("removableVertexType(T)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1.to_string(), "'Task'");
        let kept = db.query("keptVertexType(T)").unwrap();
        assert_eq!(kept.len(), 2);
        let re = db.query("removableEdgeType(T)").unwrap();
        assert_eq!(re.len(), 1);
        assert_eq!(re[0][0].1.to_string(), "'SPAWNS'");
    }

    #[test]
    fn k_hop_nbors_aggregator_from_appendix() {
        let mut db = base_db();
        db.consult(
            "queryVertex(j1). queryVertex(f1). queryVertex(f2).
             queryEdge(j1, f1). queryEdge(j1, f2).
             property(bytes, f1, 10). property(bytes, f2, 32).",
        )
        .unwrap();
        // sum of 'bytes' over 1-hop neighborhood of j1 = 42
        let sols = db
            .query("kHopNborsAggregator(1, j1, bytes, sum, R)")
            .unwrap();
        assert_eq!(sols[0][0].1.int_value(), Some(42));
    }
}
