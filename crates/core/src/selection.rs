//! View selection: the 0-1 knapsack formulation of §V-B.
//!
//! Items are candidate views; an item's *weight* is the view's
//! estimated size (edges), its *value* the total performance
//! improvement it brings to the workload divided by its creation cost
//! (penalizing expensive-to-build views). The knapsack capacity is the
//! space budget Kaskade allocates for materialized views. The paper
//! solves this with OR-tools' branch-and-bound solver; we implement
//! branch-and-bound with a fractional upper bound directly.

use kaskade_graph::{Graph, GraphStats, Schema};
use kaskade_query::Query;

use crate::cost::{creation_cost, estimate_view_size, traversal_cost};
use crate::enumerate::{enumerate_views, Candidate};
use crate::rewrite::rewrite_over_connector;
use crate::views::ViewDef;

/// One knapsack item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// Size in budget units.
    pub weight: u64,
    /// Benefit (any non-negative scale).
    pub value: f64,
}

/// Exact 0-1 knapsack via depth-first branch-and-bound with the
/// classic fractional (Dantzig) upper bound. Returns the indices of the
/// chosen items. Exponential worst case, but candidate sets here are
/// small (tens of views).
pub fn knapsack(items: &[KnapsackItem], capacity: u64) -> Vec<usize> {
    // order by value density, tie-breaking on weight for determinism
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = items[a].value / items[a].weight.max(1) as f64;
        let db = items[b].value / items[b].weight.max(1) as f64;
        db.partial_cmp(&da)
            .unwrap()
            .then(items[a].weight.cmp(&items[b].weight))
    });

    struct Search<'a> {
        items: &'a [KnapsackItem],
        order: &'a [usize],
        best_value: f64,
        best_set: Vec<usize>,
        current: Vec<usize>,
    }

    impl Search<'_> {
        fn bound(&self, mut idx: usize, mut cap: u64, mut value: f64) -> f64 {
            while idx < self.order.len() {
                let it = &self.items[self.order[idx]];
                if it.weight <= cap {
                    cap -= it.weight;
                    value += it.value;
                } else {
                    // fractional fill
                    value += it.value * cap as f64 / it.weight.max(1) as f64;
                    break;
                }
                idx += 1;
            }
            value
        }

        fn dfs(&mut self, idx: usize, cap: u64, value: f64) {
            if value > self.best_value {
                self.best_value = value;
                self.best_set = self.current.clone();
            }
            if idx >= self.order.len() {
                return;
            }
            if self.bound(idx, cap, value) <= self.best_value {
                return; // prune
            }
            let item_idx = self.order[idx];
            let it = &self.items[item_idx];
            // branch: take
            if it.weight <= cap && it.value > 0.0 {
                self.current.push(item_idx);
                self.dfs(idx + 1, cap - it.weight, value + it.value);
                self.current.pop();
            }
            // branch: skip
            self.dfs(idx + 1, cap, value);
        }
    }

    let mut s = Search {
        items,
        order: &order,
        best_value: 0.0,
        best_set: Vec::new(),
        current: Vec::new(),
    };
    s.dfs(0, capacity, 0.0);
    s.best_set.sort_unstable();
    s.best_set
}

/// Configuration for view selection.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Space budget in edges (the paper uses a fraction of memory; edges
    /// dominate the footprint).
    pub budget_edges: u64,
    /// Degree percentile for size estimation (paper default 95).
    pub alpha: u8,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            budget_edges: 1_000_000,
            alpha: 95,
        }
    }
}

/// One scored candidate view.
#[derive(Debug, Clone)]
pub struct ScoredView {
    /// The view definition.
    pub def: ViewDef,
    /// Estimated size in edges.
    pub estimated_edges: f64,
    /// Summed improvement over the workload (cost ratios).
    pub improvement: f64,
    /// improvement / creation cost — the knapsack value.
    pub value: f64,
    /// Whether the knapsack selected it.
    pub selected: bool,
}

/// Result of running view selection over a workload.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Every candidate considered, with scores (selected ones flagged).
    pub scored: Vec<ScoredView>,
}

impl SelectionResult {
    /// The selected view definitions.
    pub fn chosen(&self) -> Vec<&ViewDef> {
        self.scored
            .iter()
            .filter(|s| s.selected)
            .map(|s| &s.def)
            .collect()
    }
}

/// Runs §V-B view selection: enumerate candidates for each workload
/// query, score them (improvement per creation cost), and solve the
/// knapsack under `cfg.budget_edges`.
pub fn select_views(
    g: &Graph,
    stats: &GraphStats,
    schema: &Schema,
    workload: &[Query],
    cfg: &SelectionConfig,
) -> SelectionResult {
    // gather candidates per query, keyed by lowered view def
    let mut defs: Vec<ViewDef> = Vec::new();
    let mut per_def_improvement: Vec<f64> = Vec::new();
    for q in workload {
        let Ok(enumeration) = enumerate_views(q, schema) else {
            continue;
        };
        let base_cost = traversal_cost(g.edge_count() as f64, q);
        for cand in &enumeration.candidates {
            let Some(def) = cand.to_view_def() else {
                continue;
            };
            // improvement of this view for this query: cost ratio of the
            // raw plan over the rewritten plan (0 when not applicable)
            let improvement = match (cand, &def) {
                (
                    Candidate::KHopConnector { x, y, .. }
                    | Candidate::SameEdgeTypeConnector { x, y, .. },
                    ViewDef::Connector(c),
                ) => {
                    match rewrite_over_connector(q, x, y, c, schema) {
                        Some(rw) => {
                            // benefit uses the *realistic* size estimate
                            // (α=50, §V-A: "50 ≤ α ≤ 95 gives a much more
                            // accurate estimate"); the knapsack weight
                            // below uses the conservative cfg.alpha upper
                            // bound so oversized views can't blow the
                            // budget.
                            let est = estimate_view_size(g, stats, &def, 50);
                            let new_cost = traversal_cost(est, &rw);
                            (base_cost / new_cost).max(0.0)
                        }
                        None => 0.0,
                    }
                }
                (_, ViewDef::Summarizer(_)) => {
                    // a summarizer shrinks the graph the query scans; its
                    // improvement is the size ratio of raw to summarized
                    let kept = estimate_view_size(g, stats, &def, cfg.alpha).max(1.0);
                    (g.edge_count() as f64 / kept).max(0.0)
                }
                _ => 0.0,
            };
            if improvement <= 1.0 {
                continue; // no gain for this query
            }
            match defs.iter().position(|d| *d == def) {
                Some(i) => per_def_improvement[i] += improvement,
                None => {
                    defs.push(def);
                    per_def_improvement.push(improvement);
                }
            }
        }
    }

    // score and build knapsack items
    let mut scored: Vec<ScoredView> = defs
        .into_iter()
        .zip(per_def_improvement)
        .map(|(def, improvement)| {
            let est = estimate_view_size(g, stats, &def, cfg.alpha);
            let value = improvement / creation_cost(est);
            ScoredView {
                def,
                estimated_edges: est,
                improvement,
                value,
                selected: false,
            }
        })
        .collect();
    let items: Vec<KnapsackItem> = scored
        .iter()
        .map(|s| KnapsackItem {
            weight: s.estimated_edges.max(0.0).round() as u64,
            value: s.value,
        })
        .collect();
    for idx in knapsack(&items, cfg.budget_edges) {
        scored[idx].selected = true;
    }
    SelectionResult { scored }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_query::{listings::LISTING_1, parse};

    fn item(weight: u64, value: f64) -> KnapsackItem {
        KnapsackItem { weight, value }
    }

    #[test]
    fn knapsack_picks_optimal_small() {
        // classic: capacity 10; (w,v): (5,10) (4,40) (6,30) (3,50)
        let items = vec![item(5, 10.0), item(4, 40.0), item(6, 30.0), item(3, 50.0)];
        let chosen = knapsack(&items, 10);
        assert_eq!(chosen, vec![1, 3]); // value 90
    }

    #[test]
    fn knapsack_empty_and_zero_capacity() {
        assert!(knapsack(&[], 10).is_empty());
        assert!(knapsack(&[item(1, 5.0)], 0).is_empty());
    }

    #[test]
    fn knapsack_all_fit() {
        let items = vec![item(1, 1.0), item(2, 2.0), item(3, 3.0)];
        assert_eq!(knapsack(&items, 100), vec![0, 1, 2]);
    }

    #[test]
    fn knapsack_skips_zero_value() {
        let items = vec![item(1, 0.0), item(2, 5.0)];
        assert_eq!(knapsack(&items, 10), vec![1]);
    }

    #[test]
    fn knapsack_exact_vs_greedy_counterexample() {
        // greedy by density would take (6,60) first (density 10) then
        // nothing else fits; optimal is (5,50)+(5,50)=100
        let items = vec![item(6, 60.0), item(5, 50.0), item(5, 50.0)];
        let chosen = knapsack(&items, 10);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn selection_on_provenance_workload_prefers_2_hop_connector() {
        let g = generate_provenance(&ProvenanceConfig::tiny(1).core_only());
        let stats = GraphStats::compute(&g);
        let schema = Schema::provenance();
        let q = parse(LISTING_1).unwrap();
        let res = select_views(
            &g,
            &stats,
            &schema,
            &[q],
            &SelectionConfig {
                budget_edges: 100_000,
                alpha: 95,
            },
        );
        assert!(!res.scored.is_empty());
        let chosen = res.chosen();
        assert!(
            chosen
                .iter()
                .any(|d| d.id() == "connector:JOB_TO_JOB_2_HOP"),
            "chosen: {:?}",
            chosen.iter().map(|d| d.id()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tight_budget_limits_selection() {
        let g = generate_provenance(&ProvenanceConfig::tiny(2).core_only());
        let stats = GraphStats::compute(&g);
        let schema = Schema::provenance();
        let q = parse(LISTING_1).unwrap();
        let res = select_views(
            &g,
            &stats,
            &schema,
            &[q],
            &SelectionConfig {
                budget_edges: 0,
                alpha: 95,
            },
        );
        assert!(res.chosen().is_empty());
    }

    #[test]
    fn improvements_accumulate_over_workload() {
        let g = generate_provenance(&ProvenanceConfig::tiny(3).core_only());
        let stats = GraphStats::compute(&g);
        let schema = Schema::provenance();
        let q = parse(LISTING_1).unwrap();
        let one = select_views(
            &g,
            &stats,
            &schema,
            std::slice::from_ref(&q),
            &Default::default(),
        );
        let two = select_views(&g, &stats, &schema, &[q.clone(), q], &Default::default());
        let find = |r: &SelectionResult| {
            r.scored
                .iter()
                .find(|s| s.def.id() == "connector:JOB_TO_JOB_2_HOP")
                .map(|s| s.improvement)
                .unwrap_or(0.0)
        };
        assert!(find(&two) > find(&one));
    }
}
