//! The immutable read state of a Kaskade instance.
//!
//! [`Snapshot`] bundles everything query answering needs — the base
//! [`Graph`], its [`Schema`] and [`GraphStats`], and the materialized
//! view [`Catalog`] — behind a read-only API: [`Snapshot::plan`],
//! [`Snapshot::execute`], and [`Snapshot::execute_planned`]. Because
//! `Graph` shares its frozen payload on clone, `Snapshot::clone` is
//! O(#views): cheap enough that a serving runtime can publish a fresh
//! snapshot per write batch and hand `Arc<Snapshot>` clones to any
//! number of concurrent readers (see the `kaskade-service` crate).
//!
//! Mutation lives on [`crate::Kaskade`] (`&mut` ops) and on the
//! *functional* [`Snapshot::with_delta`], which returns the successor
//! state without touching the original — the primitive behind snapshot
//! isolation.

use kaskade_graph::{Graph, GraphStats, IdRemap, Schema};
use kaskade_query::{execute as execute_query, Query, Table};

use crate::catalog::{Catalog, DdlOp, MaterializedView};
use crate::maintain::{self, GraphDelta};
use crate::refresh::{RefreshDag, RefreshOptions, RefreshReport};
use crate::rewrite::rewrite_over_connector;
use crate::views::ViewDef;
use crate::{cost, enumerate_views, Candidate, Enumeration, KaskadeError, PlannedQuery};

/// An immutable, cheaply cloneable view of a Kaskade instance: base
/// graph, schema, statistics, and the materialized-view catalog, plus
/// every read-only operation of the framework (§V-C planning and
/// execution). Cloning is O(#views) — the underlying graph storage is
/// shared — and [`Snapshot::with_delta`] derives the successor state
/// without touching the original, which is what makes snapshot
/// isolation in `kaskade-service` cheap.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) graph: Graph,
    pub(crate) schema: Schema,
    pub(crate) stats: GraphStats,
    pub(crate) catalog: Catalog,
}

impl Snapshot {
    /// Wraps a graph and its schema with an empty catalog; computes the
    /// degree statistics the cost model maintains (§V-A).
    pub fn new(graph: Graph, schema: Schema) -> Self {
        let stats = GraphStats::compute(&graph);
        Snapshot {
            graph,
            schema,
            stats,
            catalog: Catalog::new(),
        }
    }

    /// Assembles a snapshot from pre-built parts, trusting the caller
    /// that `stats` describe `graph` and every catalog entry is a
    /// faithful materialization over it. This is the publish primitive
    /// of the sharded serving runtime (`kaskade-service`), whose
    /// coordinator maintains the global graph, merges per-shard
    /// statistics, and refreshes views in parallel before assembling
    /// the snapshot readers see — `snapshot_is_consistent` still
    /// verifies the trust at the oracle level.
    pub fn assemble(graph: Graph, schema: Schema, stats: GraphStats, catalog: Catalog) -> Self {
        Snapshot {
            graph,
            schema,
            stats,
            catalog,
        }
    }

    /// The raw graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The graph schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Raw-graph statistics.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// The materialized-view catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Enumerates view candidates for one query (§IV).
    pub fn enumerate(&self, query: &Query) -> Result<Enumeration, kaskade_prolog::PrologError> {
        enumerate_views(query, &self.schema)
    }

    /// §V-C: view-based query rewriting. Enumerates candidates for the
    /// query, keeps those whose views are materialized, and returns the
    /// plan (original or rewritten) with the lowest estimated cost.
    pub fn plan(&self, query: &Query) -> Result<PlannedQuery, kaskade_prolog::PrologError> {
        let base_cost = cost::traversal_cost(self.graph.edge_count() as f64, query);
        let mut best = PlannedQuery {
            query: query.clone(),
            view_id: None,
            estimated_cost: base_cost,
        };
        let enumeration = self.enumerate(query)?;
        for cand in &enumeration.candidates {
            let (x, y) = match cand {
                Candidate::KHopConnector { x, y, .. }
                | Candidate::SameEdgeTypeConnector { x, y, .. } => (x, y),
                _ => continue,
            };
            let Some(def) = cand.to_view_def() else {
                continue;
            };
            let Some((vid, view)) = self.catalog.lookup(&def.id()) else {
                continue; // prune candidates that are not materialized
            };
            let ViewDef::Connector(cdef) = &view.def else {
                continue;
            };
            let Some(rewritten) = rewrite_over_connector(query, x, y, cdef, &self.schema) else {
                continue;
            };
            let cost = cost::traversal_cost(view.graph.edge_count() as f64, &rewritten);
            if cost < best.estimated_cost {
                best = PlannedQuery {
                    query: rewritten,
                    view_id: Some(vid),
                    estimated_cost: cost,
                };
            }
        }
        Ok(best)
    }

    /// Executes an already-planned query against this snapshot's graph
    /// or view. Lets callers that cache [`PlannedQuery`]s (the
    /// `kaskade-service` plan cache) skip re-planning; the plan must
    /// have been produced against a snapshot with the same catalog.
    pub fn execute_planned(&self, planned: &PlannedQuery) -> Result<Table, KaskadeError> {
        let target = match planned.view_id {
            Some(id) => {
                let view = self
                    .catalog
                    .get_by_id(id)
                    .ok_or(KaskadeError::UnknownView(id))?;
                &view.graph
            }
            None => &self.graph,
        };
        execute_query(target, &planned.query).map_err(KaskadeError::Execution)
    }

    /// Plans and executes a query, automatically routing it to the best
    /// materialized view (or the raw graph).
    ///
    /// Note on result identity: `Datum::Vertex` values are ids in the
    /// graph the plan executed on (raw graph or view). Views preserve
    /// all vertex *properties*, so portable results should project
    /// properties (e.g. `A.name`) rather than raw vertices.
    pub fn execute(&self, query: &Query) -> Result<Table, KaskadeError> {
        let planned = self.plan(query).map_err(KaskadeError::Inference)?;
        self.execute_planned(&planned)
    }

    /// Applies a [`GraphDelta`] — insertions *and* retractions — and
    /// returns the successor snapshot, leaving `self` untouched: the
    /// base graph evolves (retracted elements tombstone in place, ids
    /// never shift), every materialized view is refreshed **delta-
    /// incrementally** through the [`RefreshDag`] — each view's
    /// [`crate::ViewMaintainer`] touches only what the delta affects,
    /// and composed views consume their upstream's refreshed graph
    /// instead of the base — and statistics are updated incrementally
    /// from the delta's degree changes instead of a full
    /// [`GraphStats::compute`] rescan per publish. Readers holding the
    /// old snapshot keep a fully consistent state.
    pub fn with_delta(&self, delta: &GraphDelta) -> Snapshot {
        self.with_delta_report(delta, &RefreshOptions::default()).0
    }

    /// [`Snapshot::with_delta`] with explicit [`RefreshOptions`]
    /// (worker-pool parallelism, connector partitioning), also
    /// returning the [`RefreshReport`] the serving metrics record.
    pub fn with_delta_report(
        &self,
        delta: &GraphDelta,
        opts: &RefreshOptions<'_>,
    ) -> (Snapshot, RefreshReport) {
        let applied = maintain::apply_delta(&self.graph, delta);
        let dag = RefreshDag::build(&self.catalog);
        let (catalog, report) = dag.refresh(&self.catalog, &applied, opts);
        let changes = maintain::stat_changes(&applied);
        // owned count: on a shard of a partitioned graph, statistics
        // track only the vertices this shard owns (equals vertex_count
        // on unpartitioned graphs)
        let stats = self
            .stats
            .with_changes(
                &changes,
                applied.graph.owned_vertex_count(),
                applied.graph.edge_count(),
            )
            .unwrap_or_else(|| GraphStats::compute(&applied.graph));
        (
            Snapshot {
                graph: applied.graph,
                schema: self.schema.clone(),
                stats,
                catalog,
            },
            report,
        )
    }

    /// Applies a catalog-mutation operation (live DDL) and returns the
    /// successor snapshot, leaving `self` untouched. `CreateView`
    /// materializes the definition over this snapshot's base graph and
    /// registers it (replacing in place if the same definition id is
    /// already live); `DropView` tombstones the named slot — a no-op
    /// when the slot is already dead, so replaying DDL is idempotent.
    /// Base graph, schema, and statistics carry over verbatim.
    pub fn apply_ddl(&self, op: &DdlOp) -> Snapshot {
        let mut catalog = self.catalog.clone();
        match op {
            DdlOp::CreateView(def) => {
                let graph = crate::materialize::materialize(&self.graph, def);
                catalog.add(MaterializedView::new(def.clone(), graph));
            }
            DdlOp::DropView(id) => {
                catalog.drop_view(*id);
            }
        }
        Snapshot {
            graph: self.graph.clone(),
            schema: self.schema.clone(),
            stats: self.stats.clone(),
            catalog,
        }
    }

    /// Compacts the base graph — dead vertex/edge slots dropped, live
    /// ids renumbered densely — returning the successor snapshot and
    /// the old→new [`IdRemap`]; `self` is untouched.
    ///
    /// Everything else carries over verbatim, and soundly so:
    ///
    /// - **Statistics** count live elements only, so they are exactly
    ///   equal before and after (enforced by the compaction proptests).
    /// - **Materialized views** are their own graphs whose vertices
    ///   correspond to the base graph *positionally* — the i-th live
    ///   base vertex of the view's types — never by stored base id.
    ///   Compaction preserves the live vertices, their order, and
    ///   their properties, so every catalog entry is still byte-for-
    ///   byte what materializing it over the compacted base yields,
    ///   provenance `support` counts included, and subsequent
    ///   incremental maintenance lines up without translation.
    ///
    /// Deltas queued against the pre-compaction snapshot must be
    /// rebased with [`GraphDelta::remap`] before applying; the serving
    /// runtime (`kaskade-service`) does this behind its epoch fence.
    pub fn compact(&self) -> (Snapshot, IdRemap) {
        let (graph, remap) = self.graph.compact();
        (
            Snapshot {
                graph,
                schema: self.schema.clone(),
                stats: self.stats.clone(),
                catalog: self.catalog.clone(),
            },
            remap,
        )
    }

    /// [`Snapshot::compact`] with an externally supplied remap — the
    /// coordinated form for the shards of a partitioned graph, which
    /// must all apply the remap computed from the global graph so
    /// shard-local ids stay equal to global ids (see
    /// [`Graph::compact_with`]).
    pub fn compact_with(&self, remap: &IdRemap) -> Snapshot {
        Snapshot {
            graph: self.graph.compact_with(remap),
            schema: self.schema.clone(),
            stats: self.stats.clone(),
            catalog: self.catalog.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectorDef, Kaskade};
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_query::{listings::LISTING_1, parse};

    fn snapshot(seed: u64) -> Snapshot {
        let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
        Snapshot::new(g, Schema::provenance())
    }

    #[test]
    fn clone_is_shallow_and_consistent() {
        let mut k = Kaskade::new(snapshot(11).graph.clone(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let s = k.snapshot();
        let t = s.clone();
        // clones answer identically
        let q = parse(LISTING_1).unwrap();
        let a = s.execute(&q).unwrap();
        let b = t.execute(&q).unwrap();
        assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
    }

    #[test]
    fn with_delta_leaves_original_untouched() {
        let s = snapshot(12);
        let (v0, e0) = (s.graph.vertex_count(), s.graph.edge_count());
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        let next = s.with_delta(&d);
        assert_eq!(s.graph.vertex_count(), v0);
        assert_eq!(s.graph.edge_count(), e0);
        assert_eq!(next.graph.vertex_count(), v0 + 1);
        assert_eq!(next.stats.vertex_count, v0 + 1);
    }

    #[test]
    fn with_delta_stats_match_full_compute_under_churn() {
        let mut s = snapshot(14);
        for round in 0..4u32 {
            let mut d = GraphDelta::new();
            let j = d.add_vertex("Job", vec![]);
            let f = s.graph.vertices_of_type("File").next().unwrap();
            d.add_edge(crate::VRef::Existing(f), j, "IS_READ_BY", vec![]);
            if round % 2 == 1 {
                // retract an existing write edge and a whole file
                if let Some(e) = s
                    .graph
                    .edges()
                    .find(|&e| s.graph.edge_type(e) == "WRITES_TO")
                {
                    d.del_edge(
                        crate::VRef::Existing(s.graph.edge_src(e)),
                        crate::VRef::Existing(s.graph.edge_dst(e)),
                        "WRITES_TO",
                    );
                }
                let victim = s.graph.vertices_of_type("File").nth(1).unwrap();
                d.del_vertex(victim);
            }
            s = s.with_delta(&d);
            assert!(s.stats.supports_incremental());
            assert_eq!(
                s.stats,
                GraphStats::compute(&s.graph),
                "round {round}: incremental stats diverged"
            );
        }
    }

    #[test]
    fn compact_preserves_stats_views_and_answers() {
        let mut k = Kaskade::new(snapshot(15).graph.clone(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        // churn a few tombstones into the state
        let mut s = k.snapshot();
        for round in 0..6u64 {
            let mut d = GraphDelta::new();
            if let Some(e) = s.graph.edges().nth(round as usize) {
                d.del_edge(
                    crate::VRef::Existing(s.graph.edge_src(e)),
                    crate::VRef::Existing(s.graph.edge_dst(e)),
                    s.graph.edge_type(e),
                );
            }
            if round == 3 {
                let victim = s.graph.vertices_of_type("File").nth(2).unwrap();
                d.del_vertex(victim);
            }
            s = s.with_delta(&d);
        }
        assert!(s.graph.vertex_slots() > s.graph.vertex_count());
        let (c, remap) = s.compact();
        assert_eq!(
            remap.reclaimed(),
            s.graph.vertex_slots() - c.graph.vertex_slots()
        );
        assert_eq!(c.graph.vertex_slots(), c.graph.vertex_count());
        assert_eq!(c.graph.edge_slots(), c.graph.edge_count());
        // stats exactly preserved and exactly right for the new graph
        assert_eq!(c.stats, s.stats);
        assert_eq!(c.stats, GraphStats::compute(&c.graph));
        // the carried-over view is byte-for-byte a fresh
        // materialization over the compacted base
        for view in c.catalog.iter() {
            let fresh = crate::materialize(&c.graph, &view.def);
            let fp = |g: &Graph| {
                let mut v: Vec<_> = g
                    .edges()
                    .map(|e| (g.edge_src(e).0, g.edge_dst(e).0, g.edge_type(e).to_string()))
                    .collect();
                v.sort();
                (g.vertex_count(), v)
            };
            assert_eq!(fp(&view.graph), fp(&fresh), "view {}", view.def.id());
        }
        // aggregate answers are identical before and after
        let q = parse(LISTING_1).unwrap();
        let rows = |t: &kaskade_query::Table| {
            let mut r: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
            r.sort();
            r
        };
        assert_eq!(rows(&s.execute(&q).unwrap()), rows(&c.execute(&q).unwrap()));
    }

    #[test]
    fn apply_ddl_creates_drops_and_keeps_slots() {
        let s = snapshot(16);
        let def2 = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let def4 = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4));
        let s = s
            .apply_ddl(&crate::DdlOp::CreateView(def2.clone()))
            .apply_ddl(&crate::DdlOp::CreateView(def4.clone()));
        assert_eq!(s.catalog.len(), 2);
        // the created view equals an offline materialization
        let fresh = crate::materialize(&s.graph, &def2);
        assert_eq!(
            s.catalog.get(&def2.id()).unwrap().graph.edge_count(),
            fresh.edge_count()
        );
        // drop is functional (original untouched) and tombstones the slot
        let dropped = s.apply_ddl(&crate::DdlOp::DropView(crate::ViewId(0)));
        assert_eq!(s.catalog.len(), 2);
        assert_eq!(dropped.catalog.len(), 1);
        assert!(dropped.catalog.get_by_id(crate::ViewId(0)).is_none());
        assert_eq!(
            dropped.catalog.lookup(&def4.id()).unwrap().0,
            crate::ViewId(1)
        );
        // dropping a dead slot is an idempotent no-op (WAL replay safety)
        let again = dropped.apply_ddl(&crate::DdlOp::DropView(crate::ViewId(0)));
        assert_eq!(again.catalog.len(), 1);
    }

    #[test]
    fn with_delta_refreshes_over_tombstoned_catalog() {
        let s = snapshot(17)
            .apply_ddl(&crate::DdlOp::CreateView(ViewDef::Connector(
                ConnectorDef::k_hop("Job", "Job", 2),
            )))
            .apply_ddl(&crate::DdlOp::CreateView(ViewDef::Connector(
                ConnectorDef::k_hop("Job", "Job", 4),
            )))
            .apply_ddl(&crate::DdlOp::DropView(crate::ViewId(0)));
        let mut d = GraphDelta::new();
        let j = d.add_vertex("Job", vec![]);
        let f = s.graph.vertices_of_type("File").next().unwrap();
        d.add_edge(crate::VRef::Existing(f), j, "IS_READ_BY", vec![]);
        let next = s.with_delta(&d);
        // the tombstone survives refresh and the survivor keeps its slot
        assert_eq!(next.catalog.slot_count(), 2);
        assert!(next.catalog.get_by_id(crate::ViewId(0)).is_none());
        let view = next.catalog.get_by_id(crate::ViewId(1)).unwrap();
        // refreshed view equals a scratch materialization
        let fresh = crate::materialize(&next.graph, &view.def);
        assert_eq!(view.graph.edge_count(), fresh.edge_count());
    }

    #[test]
    fn execute_planned_rejects_foreign_view() {
        let s = snapshot(13);
        let planned = PlannedQuery {
            query: parse(LISTING_1).unwrap(),
            view_id: Some(crate::ViewId(7)), // catalog is empty
            estimated_cost: 1.0,
        };
        let err = s.execute_planned(&planned).unwrap_err();
        assert!(matches!(err, KaskadeError::UnknownView(_)));
        assert!(err.to_string().contains("view#7"));
    }
}
