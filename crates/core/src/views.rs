//! Graph view definitions: connectors (Table I) and summarizers
//! (Table II).
//!
//! A [`ViewDef`] is the graph-level description of a view — independent
//! of any particular query — that the materializer executes and the
//! catalog stores. View *candidates* produced by enumeration
//! ([`crate::enumerate`]) reference query variables and are lowered to
//! `ViewDef`s before selection.

use std::fmt;

/// A connector view: every edge contracts a directed path between two
/// target vertices (§VI-A).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConnectorDef {
    /// Source target-vertex type.
    pub src_type: String,
    /// Destination target-vertex type.
    pub dst_type: String,
    /// Path length being contracted (k-hop connector).
    pub k: usize,
    /// Restrict every contracted hop to this edge type (the
    /// same-edge-type connector of Table I). `None` allows any type.
    pub etype: Option<String>,
}

impl ConnectorDef {
    /// A k-hop connector between two vertex types.
    pub fn k_hop(src_type: &str, dst_type: &str, k: usize) -> Self {
        ConnectorDef {
            src_type: src_type.to_string(),
            dst_type: dst_type.to_string(),
            k,
            etype: None,
        }
    }

    /// A same-edge-type k-hop connector (Table I row 3): contracts
    /// k-length paths whose every edge has type `etype`.
    pub fn same_edge_type(src_type: &str, dst_type: &str, k: usize, etype: &str) -> Self {
        ConnectorDef {
            src_type: src_type.to_string(),
            dst_type: dst_type.to_string(),
            k,
            etype: Some(etype.to_string()),
        }
    }

    /// Whether source and destination types coincide (same-vertex-type
    /// connector, Table I row 1).
    pub fn is_same_vertex_type(&self) -> bool {
        self.src_type == self.dst_type
    }

    /// The edge-type label connector edges carry in the materialized
    /// view, e.g. `JOB_TO_JOB_2_HOP` for the paper's running example
    /// (same-edge-type connectors append `_VIA_<ETYPE>`).
    pub fn edge_label(&self) -> String {
        let base = format!(
            "{}_TO_{}_{}_HOP",
            self.src_type.to_uppercase(),
            self.dst_type.to_uppercase(),
            self.k
        );
        match &self.etype {
            Some(t) => format!("{base}_VIA_{}", t.to_uppercase()),
            None => base,
        }
    }

    /// The Cypher-style creation query for this view, as Kaskade's
    /// workload analyzer would submit it to the graph engine (§V-B).
    pub fn to_cypher(&self) -> String {
        format!(
            "MATCH (x:{})-[*{k}..{k}]->(y:{}) MERGE (x)-[:{}]->(y)",
            self.src_type,
            self.dst_type,
            self.edge_label(),
            k = self.k
        )
    }
}

impl fmt::Display for ConnectorDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-hop connector {} -> {}",
            self.k, self.src_type, self.dst_type
        )
    }
}

/// Aggregate functions available to aggregator summarizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of an integer property.
    Sum,
    /// Count of merged members.
    Count,
    /// Minimum of an integer property.
    Min,
    /// Maximum of an integer property.
    Max,
}

/// A property predicate usable in summarizer filters (the paper's
/// footnote 5: "summarizer views can also include predicates on
/// vertex/edge properties"). Restricted to hashable forms so view
/// definitions stay usable as catalog keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropPredicate {
    /// Integer property `key >= bound`.
    IntAtLeast(String, i64),
    /// Integer property `key < bound`.
    IntBelow(String, i64),
    /// String property equality.
    StrEquals(String, String),
    /// The property exists (any value).
    Exists(String),
}

impl PropPredicate {
    /// Evaluates the predicate against a property lookup.
    pub fn eval(&self, get: impl Fn(&str) -> Option<kaskade_graph::Value>) -> bool {
        match self {
            PropPredicate::IntAtLeast(k, b) => {
                get(k).and_then(|v| v.as_int()).is_some_and(|v| v >= *b)
            }
            PropPredicate::IntBelow(k, b) => {
                get(k).and_then(|v| v.as_int()).is_some_and(|v| v < *b)
            }
            PropPredicate::StrEquals(k, s) => {
                get(k)
                    .and_then(|v| v.as_str().map(str::to_string))
                    .as_deref()
                    == Some(s)
            }
            PropPredicate::Exists(k) => get(k).is_some(),
        }
    }
}

impl fmt::Display for PropPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropPredicate::IntAtLeast(k, b) => write!(f, "{k} >= {b}"),
            PropPredicate::IntBelow(k, b) => write!(f, "{k} < {b}"),
            PropPredicate::StrEquals(k, s) => write!(f, "{k} = '{s}'"),
            PropPredicate::Exists(k) => write!(f, "exists({k})"),
        }
    }
}

/// A summarizer view: a subgraph of the original graph obtained by
/// filtering or aggregation (§VI-B, Table II).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SummarizerDef {
    /// Removes vertices of the listed types (and their incident edges).
    VertexRemoval {
        /// Types to drop.
        remove: Vec<String>,
    },
    /// Removes edges of the listed types.
    EdgeRemoval {
        /// Edge types to drop.
        remove: Vec<String>,
    },
    /// Keeps only vertices of the listed types, and edges whose both
    /// endpoints survive.
    VertexInclusion {
        /// Types to keep.
        keep: Vec<String>,
    },
    /// Keeps only edges of the listed types (plus their endpoints).
    EdgeInclusion {
        /// Edge types to keep.
        keep: Vec<String>,
    },
    /// Groups vertices of `vtype` sharing the value of `group_prop`
    /// into one supervertex; `agg` combines the `agg_prop` values.
    VertexAggregator {
        /// Vertex type being grouped.
        vtype: String,
        /// Property whose value defines the group.
        group_prop: String,
        /// Aggregated property.
        agg_prop: String,
        /// Aggregate function.
        agg: AggOp,
    },
    /// Merges parallel edges (same source, destination and type) into a
    /// superedge carrying a `count` property.
    EdgeAggregator,
    /// Keeps only vertices satisfying a property predicate (and edges
    /// between survivors) — footnote 5's predicate summarizer.
    VertexPredicate {
        /// The predicate survivors must satisfy.
        keep: PropPredicate,
    },
    /// Keeps only edges satisfying a property predicate.
    EdgePredicate {
        /// The predicate surviving edges must satisfy.
        keep: PropPredicate,
    },
}

impl fmt::Display for SummarizerDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummarizerDef::VertexRemoval { remove } => {
                write!(f, "vertex-removal summarizer (drop {})", remove.join(", "))
            }
            SummarizerDef::EdgeRemoval { remove } => {
                write!(f, "edge-removal summarizer (drop {})", remove.join(", "))
            }
            SummarizerDef::VertexInclusion { keep } => {
                write!(f, "vertex-inclusion summarizer (keep {})", keep.join(", "))
            }
            SummarizerDef::EdgeInclusion { keep } => {
                write!(f, "edge-inclusion summarizer (keep {})", keep.join(", "))
            }
            SummarizerDef::VertexAggregator {
                vtype, group_prop, ..
            } => write!(f, "vertex-aggregator summarizer ({vtype} by {group_prop})"),
            SummarizerDef::EdgeAggregator => write!(f, "edge-aggregator summarizer"),
            SummarizerDef::VertexPredicate { keep } => {
                write!(f, "vertex-predicate summarizer ({keep})")
            }
            SummarizerDef::EdgePredicate { keep } => {
                write!(f, "edge-predicate summarizer ({keep})")
            }
        }
    }
}

/// A source-to-sink connector (Table I row 4): one edge per (source,
/// sink) pair connected by any directed path, where sources have no
/// incoming and sinks no outgoing edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SourceSinkDef {
    /// Optionally restrict sources to a vertex type.
    pub src_type: Option<String>,
    /// Optionally restrict sinks to a vertex type.
    pub dst_type: Option<String>,
}

impl SourceSinkDef {
    /// The edge label used in the materialized view.
    pub fn edge_label(&self) -> String {
        "SOURCE_TO_SINK".to_string()
    }
}

impl fmt::Display for SourceSinkDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "source-to-sink connector ({} -> {})",
            self.src_type.as_deref().unwrap_or("*"),
            self.dst_type.as_deref().unwrap_or("*")
        )
    }
}

/// A composed view: a summarizer evaluated *over* a materialized
/// connector view rather than over the base graph — the view-over-view
/// scenario class. Materializing one contracts paths first and then
/// filters/aggregates the contracted graph (e.g. "connector edges with
/// at least two witness walks").
///
/// When the upstream connector is itself in the catalog, the refresh
/// DAG orders the composed view after it and feeds the refreshed
/// upstream graph (plus its `ViewDelta`) downstream, so the expensive
/// path contraction is never recomputed from the base graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ComposedDef {
    /// The upstream connector whose materialization is summarized.
    pub connector: ConnectorDef,
    /// The downstream summarizer applied to the connector view.
    pub summarizer: SummarizerDef,
}

impl fmt::Display for ComposedDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} over {}", self.summarizer, self.connector)
    }
}

/// Any graph view Kaskade can materialize.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ViewDef {
    /// A path-contraction view.
    Connector(ConnectorDef),
    /// A source-to-sink contraction view.
    SourceSink(SourceSinkDef),
    /// A filtering/aggregation view.
    Summarizer(SummarizerDef),
    /// A summarizer over a connector view (view-over-view composition).
    Composed(ComposedDef),
}

impl ViewDef {
    /// A stable identifier used as the catalog key.
    pub fn id(&self) -> String {
        match self {
            ViewDef::Connector(c) => format!("connector:{}", c.edge_label()),
            ViewDef::SourceSink(s) => format!("connector:{s}"),
            ViewDef::Summarizer(s) => format!("summarizer:{s}"),
            ViewDef::Composed(c) => format!("composed:{c}"),
        }
    }

    /// For a composed view, the catalog id of the upstream view it
    /// consumes — the dependency edge of the refresh DAG. `None` for
    /// views that read the base graph directly.
    pub fn upstream_id(&self) -> Option<String> {
        match self {
            ViewDef::Composed(c) => Some(ViewDef::Connector(c.connector.clone()).id()),
            _ => None,
        }
    }
}

impl fmt::Display for ViewDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewDef::Connector(c) => c.fmt(f),
            ViewDef::SourceSink(s) => s.fmt(f),
            ViewDef::Summarizer(s) => s.fmt(f),
            ViewDef::Composed(c) => c.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_label_format_matches_paper_style() {
        let c = ConnectorDef::k_hop("Job", "Job", 2);
        assert_eq!(c.edge_label(), "JOB_TO_JOB_2_HOP");
        assert!(c.is_same_vertex_type());
        let d = ConnectorDef::k_hop("Author", "Venue", 1);
        assert_eq!(d.edge_label(), "AUTHOR_TO_VENUE_1_HOP");
        assert!(!d.is_same_vertex_type());
    }

    #[test]
    fn cypher_rendering() {
        let c = ConnectorDef::k_hop("Job", "Job", 2);
        let q = c.to_cypher();
        assert!(q.contains("MATCH (x:Job)-[*2..2]->(y:Job)"));
        assert!(q.contains("JOB_TO_JOB_2_HOP"));
    }

    #[test]
    fn same_edge_type_label() {
        let c = ConnectorDef::same_edge_type("User", "User", 3, "FOLLOWS");
        assert_eq!(c.edge_label(), "USER_TO_USER_3_HOP_VIA_FOLLOWS");
        assert_eq!(c.etype.as_deref(), Some("FOLLOWS"));
    }

    #[test]
    fn source_sink_display() {
        let d = SourceSinkDef {
            src_type: Some("Job".into()),
            dst_type: None,
        };
        assert!(d.to_string().contains("Job -> *"));
        assert_eq!(SourceSinkDef::default().edge_label(), "SOURCE_TO_SINK");
    }

    #[test]
    fn view_ids_are_distinct() {
        let a = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let b = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4));
        let s = ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        });
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), s.id());
    }

    #[test]
    fn composed_id_and_upstream() {
        let c = ConnectorDef::k_hop("Job", "Job", 2);
        let d = ViewDef::Composed(ComposedDef {
            connector: c.clone(),
            summarizer: SummarizerDef::EdgePredicate {
                keep: PropPredicate::IntAtLeast("support".into(), 2),
            },
        });
        assert!(d.id().starts_with("composed:"));
        assert_eq!(
            d.upstream_id().as_deref(),
            Some("connector:JOB_TO_JOB_2_HOP")
        );
        assert!(ViewDef::Connector(c).upstream_id().is_none());
    }

    #[test]
    fn display_summarizers() {
        let s = SummarizerDef::VertexRemoval {
            remove: vec!["Task".into(), "Machine".into()],
        };
        assert!(s.to_string().contains("Task, Machine"));
        assert!(SummarizerDef::EdgeAggregator.to_string().contains("edge"));
    }
}
