//! Synthetic DBLP-style publication network generator.
//!
//! Substitutes the GraphDBLP dump used in §VII-B: a heterogeneous network
//! of authors, publications and venues. Authors write publications
//! (`AUTHORED` / reverse `IS_AUTHORED_BY`) and publications appear in
//! venues (`PUBLISHED_IN`). Publications-per-author follows a power law
//! (a few prolific authors), and co-authorship arises from publications
//! having several authors — which is what gives the 2-hop
//! author-to-author connector its structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kaskade_graph::{Graph, GraphBuilder, Value, VertexId};

use crate::sampling::{PowerLaw, PrefixWeights};

/// Configuration for [`generate_dblp`].
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of author vertices.
    pub authors: usize,
    /// Number of publication vertices.
    pub publications: usize,
    /// Number of venue vertices.
    pub venues: usize,
    /// Maximum authors on one publication (power-law distributed).
    pub max_authors_per_pub: usize,
    /// Power-law exponent for authors-per-publication.
    pub authorship_gamma: f64,
    /// Research-group size: co-authors are drawn mostly from one group,
    /// so the same author pairs publish together repeatedly. Repeated
    /// pairs are what make the 2-hop author-to-author connector an
    /// order of magnitude smaller than the authorship edges (Fig. 6).
    pub team_size: usize,
    /// Probability that a publication's authors come from a single
    /// research group (vs. a cross-group collaboration).
    pub team_locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            authors: 3_000,
            publications: 15_000,
            venues: 60,
            max_authors_per_pub: 6,
            authorship_gamma: 1.6,
            team_size: 6,
            team_locality: 0.95,
            seed: 0xDB1F,
        }
    }
}

impl DblpConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        DblpConfig {
            authors: 40,
            publications: 120,
            venues: 5,
            seed,
            ..Default::default()
        }
    }

    /// Scales author and publication counts together.
    pub fn with_scale(mut self, authors: usize) -> Self {
        self.publications = authors * 5;
        self.authors = authors;
        self
    }
}

/// Generates a dblp-style graph. Vertex types: `Author`, `Publication`,
/// `Venue`. Publications carry a `year`; lineage edges carry `ts`.
pub fn generate_dblp(cfg: &DblpConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let authors_pl = PowerLaw::new(cfg.authorship_gamma, cfg.max_authors_per_pub.max(1));

    let mut b = GraphBuilder::new();
    // Preferential attachment over authors: prolific authors keep publishing.
    let mut author_weights = PrefixWeights::new();
    let authors: Vec<VertexId> = (0..cfg.authors)
        .map(|i| {
            let a = b.add_vertex("Author");
            b.set_vertex_prop(a, "name", Value::Str(format!("author{i}")));
            author_weights.push(1);
            a
        })
        .collect();
    let venues: Vec<VertexId> = (0..cfg.venues.max(1))
        .map(|i| {
            let v = b.add_vertex("Venue");
            b.set_vertex_prop(v, "name", Value::Str(format!("venue{i}")));
            v
        })
        .collect();

    let team_size = cfg.team_size.max(1);
    let n_teams = cfg.authors.div_ceil(team_size).max(1);
    let team_of = |ai: usize| ai / team_size;
    let mut ts = 0i64;
    for p in 0..cfg.publications {
        let pb = b.add_vertex("Publication");
        b.set_vertex_prop(pb, "year", Value::Int(1990 + (p % 35) as i64));
        let k = authors_pl.sample(&mut rng);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        // lead author: preferential attachment over everyone
        let lead = match author_weights.sample(&mut rng) {
            Some(ai) => ai,
            None => continue,
        };
        chosen.push(lead);
        let local_team = team_of(lead).min(n_teams - 1);
        for _ in 1..k {
            let ai = if rng.random_bool(cfg.team_locality.clamp(0.0, 1.0)) {
                // co-author from the lead's research group
                let lo = local_team * team_size;
                let hi = (lo + team_size).min(cfg.authors);
                lo + rng.random_range(0..(hi - lo).max(1))
            } else {
                match author_weights.sample(&mut rng) {
                    Some(ai) => ai,
                    None => continue,
                }
            };
            if !chosen.contains(&ai) {
                chosen.push(ai);
            }
        }
        for &ai in &chosen {
            ts += 1;
            let e1 = b.add_edge(authors[ai], pb, "AUTHORED");
            b.set_edge_prop(e1, "ts", Value::Int(ts));
            ts += 1;
            let e2 = b.add_edge(pb, authors[ai], "IS_AUTHORED_BY");
            b.set_edge_prop(e2, "ts", Value::Int(ts));
        }
        // rich get richer
        for &ai in &chosen {
            author_weights.bump_all_from(ai, 1);
        }
        let v = venues[rng.random_range(0..venues.len())];
        b.add_edge(pb, v, "PUBLISHED_IN");
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::Schema;

    #[test]
    fn schema_conformance() {
        let g = generate_dblp(&DblpConfig::tiny(1));
        let s = Schema::dblp();
        for e in g.edges() {
            let src = g.vertex_type(g.edge_src(e));
            let dst = g.vertex_type(g.edge_dst(e));
            assert!(s.allows_edge(src, g.edge_type(e), dst));
        }
    }

    #[test]
    fn counts_match_config() {
        let cfg = DblpConfig::tiny(2);
        let g = generate_dblp(&cfg);
        assert_eq!(g.vertices_of_type("Author").count(), cfg.authors);
        assert_eq!(g.vertices_of_type("Publication").count(), cfg.publications);
        assert_eq!(g.vertices_of_type("Venue").count(), cfg.venues);
    }

    #[test]
    fn every_publication_has_a_venue_and_an_author() {
        let g = generate_dblp(&DblpConfig::tiny(3));
        for p in g.vertices_of_type("Publication") {
            let mut has_venue = false;
            let mut has_author = false;
            for (e, _) in g.out_edges(p) {
                match g.edge_type(e) {
                    "PUBLISHED_IN" => has_venue = true,
                    "IS_AUTHORED_BY" => has_author = true,
                    _ => {}
                }
            }
            assert!(has_venue, "publication without venue");
            assert!(has_author, "publication without author");
        }
    }

    #[test]
    fn authored_and_is_authored_by_are_symmetric() {
        let g = generate_dblp(&DblpConfig::tiny(4));
        let authored = g.edges().filter(|&e| g.edge_type(e) == "AUTHORED").count();
        let reversed = g
            .edges()
            .filter(|&e| g.edge_type(e) == "IS_AUTHORED_BY")
            .count();
        assert_eq!(authored, reversed);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_dblp(&DblpConfig::tiny(5));
        let b = generate_dblp(&DblpConfig::tiny(5));
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn prolific_authors_emerge() {
        // preferential attachment should give the most-published author
        // several times the median
        let g = generate_dblp(&DblpConfig::tiny(6));
        let mut outs: Vec<usize> = g
            .vertices_of_type("Author")
            .map(|a| g.out_degree(a))
            .collect();
        outs.sort_unstable();
        let median = outs[outs.len() / 2];
        let max = *outs.last().unwrap();
        assert!(max >= median.max(1) * 3, "max={max} median={median}");
    }
}
