//! # kaskade-datasets
//!
//! Seeded synthetic dataset generators substituting the four networks of
//! the Kaskade evaluation (§VII-B, Table III):
//!
//! | Paper dataset     | Generator                                   | Kind          |
//! |-------------------|---------------------------------------------|---------------|
//! | `prov`            | [`generate_provenance`]                     | heterogeneous |
//! | `dblp-net`        | [`generate_dblp`]                           | heterogeneous |
//! | `soc-livejournal` | [`generate_social`]                         | homogeneous   |
//! | `roadnet-usa`     | [`generate_roadnet`]                        | homogeneous   |
//!
//! Every generator is deterministic under its seed; the [`Dataset`] enum
//! provides the standard configurations the benchmark harness uses.

#![warn(missing_docs)]

mod dblp;
mod provenance;
mod roadnet;
mod sampling;
mod social;

pub use dblp::{generate_dblp, DblpConfig};
pub use provenance::{generate_provenance, ProvenanceConfig};
pub use roadnet::{generate_roadnet, RoadnetConfig};
pub use sampling::{PowerLaw, PrefixWeights};
pub use social::{generate_social, SocialConfig};

use kaskade_graph::{Graph, Schema};

/// The four evaluation datasets, mirroring Table III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Microsoft-style data-lineage provenance graph (heterogeneous).
    Prov,
    /// DBLP-style publication network (heterogeneous).
    Dblp,
    /// LiveJournal-style social network (homogeneous, power law).
    SocLivejournal,
    /// USA-roadnet-style road network (homogeneous, bounded degree).
    RoadnetUsa,
}

impl Dataset {
    /// All four datasets in the paper's presentation order.
    pub const ALL: [Dataset; 4] = [
        Dataset::Prov,
        Dataset::Dblp,
        Dataset::RoadnetUsa,
        Dataset::SocLivejournal,
    ];

    /// Short name as used in the paper's tables and figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::Prov => "prov",
            Dataset::Dblp => "dblp",
            Dataset::SocLivejournal => "soc-livejournal",
            Dataset::RoadnetUsa => "roadnet-usa",
        }
    }

    /// Whether the dataset is heterogeneous (more than one vertex type).
    pub fn is_heterogeneous(self) -> bool {
        matches!(self, Dataset::Prov | Dataset::Dblp)
    }

    /// The graph schema of this dataset.
    pub fn schema(self) -> Schema {
        match self {
            Dataset::Prov => {
                let mut s = Schema::provenance();
                s.add_edge_rule("Job", "SPAWNS", "Task");
                s.add_edge_rule("Task", "RUNS_ON", "Machine");
                s.add_edge_rule("Task", "TRANSFERS_TO", "Task");
                s.add_edge_rule("User", "SUBMITTED", "Job");
                s
            }
            Dataset::Dblp => Schema::dblp(),
            Dataset::SocLivejournal => Schema::homogeneous("User", "FOLLOWS"),
            Dataset::RoadnetUsa => Schema::homogeneous("Intersection", "ROAD"),
        }
    }

    /// The schema of the summarized (core) version used for query
    /// experiments: prov keeps jobs/files, dblp keeps authors/pubs,
    /// homogeneous datasets are unchanged (§VII-B).
    pub fn core_schema(self) -> Schema {
        match self {
            Dataset::Prov => Schema::provenance(),
            Dataset::Dblp => Schema::dblp(),
            other => other.schema(),
        }
    }

    /// Generates the dataset at a given `scale` (≈ relative size knob;
    /// 1 is the default evaluation size) with the given seed.
    pub fn generate(self, scale: usize, seed: u64) -> Graph {
        let scale = scale.max(1);
        match self {
            Dataset::Prov => generate_provenance(&ProvenanceConfig {
                jobs: 2_000 * scale,
                seed,
                ..Default::default()
            }),
            Dataset::Dblp => generate_dblp(&DblpConfig {
                authors: 3_000 * scale,
                publications: 9_000 * scale,
                seed,
                ..Default::default()
            }),
            Dataset::SocLivejournal => generate_social(&SocialConfig {
                users: 5_000 * scale,
                seed,
                ..Default::default()
            }),
            Dataset::RoadnetUsa => generate_roadnet(&RoadnetConfig {
                width: 80 * scale,
                height: 60,
                seed,
                ..Default::default()
            }),
        }
    }

    /// The vertex type that anchors Q1–Q4 on this dataset ("job" for
    /// prov, "author" for dblp, any vertex for homogeneous networks —
    /// §VII-C).
    pub fn anchor_type(self) -> &'static str {
        match self {
            Dataset::Prov => "Job",
            Dataset::Dblp => "Author",
            Dataset::SocLivejournal => "User",
            Dataset::RoadnetUsa => "Intersection",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for d in Dataset::ALL {
            let g = d.generate(1, 7);
            assert!(g.vertex_count() > 0, "{} empty", d.short_name());
            assert!(g.edge_count() > 0, "{} no edges", d.short_name());
        }
    }

    #[test]
    fn heterogeneity_flags() {
        assert!(Dataset::Prov.is_heterogeneous());
        assert!(Dataset::Dblp.is_heterogeneous());
        assert!(!Dataset::SocLivejournal.is_heterogeneous());
        assert!(!Dataset::RoadnetUsa.is_heterogeneous());
    }

    #[test]
    fn generated_graphs_conform_to_declared_schema() {
        for d in Dataset::ALL {
            let g = d.generate(1, 3);
            let s = d.schema();
            for e in g.edges().take(5_000) {
                let src = g.vertex_type(g.edge_src(e));
                let dst = g.vertex_type(g.edge_dst(e));
                assert!(
                    s.allows_edge(src, g.edge_type(e), dst),
                    "{}: {src}-[:{}]->{dst} not in schema",
                    d.short_name(),
                    g.edge_type(e)
                );
            }
        }
    }

    #[test]
    fn anchor_types_exist() {
        for d in Dataset::ALL {
            let g = d.generate(1, 5);
            assert!(g.vertices_of_type(d.anchor_type()).next().is_some());
        }
    }
}
