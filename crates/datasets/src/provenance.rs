//! Synthetic data-lineage (provenance) graph generator.
//!
//! Models the Microsoft provenance graph of §I-A / §VII-B: a
//! heterogeneous network of jobs, files, tasks, machines and users where
//! jobs write files (`WRITES_TO`), files are read by downstream jobs
//! (`IS_READ_BY`), jobs spawn tasks, tasks run on machines and transfer
//! data to each other, and users submit jobs. The job/file core is a
//! layered DAG (jobs in wave `w` only read files produced by waves `< w`),
//! which is what makes blast-radius and lineage queries well-defined.
//!
//! Degree distributions are power-law: a few "hot" files are read by many
//! jobs (preferential attachment), a few jobs write many files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kaskade_graph::{Graph, GraphBuilder, Value, VertexId};

use crate::sampling::{PowerLaw, PrefixWeights};

/// Configuration for [`generate_provenance`].
#[derive(Debug, Clone)]
pub struct ProvenanceConfig {
    /// Number of job vertices.
    pub jobs: usize,
    /// Number of scheduling waves; jobs in wave `w` read only files
    /// written by earlier waves.
    pub waves: usize,
    /// Power-law exponent for files-written-per-job.
    pub write_gamma: f64,
    /// Maximum files written by one job.
    pub max_writes: usize,
    /// Power-law exponent for files-read-per-job.
    pub read_gamma: f64,
    /// Maximum files read by one job.
    pub max_reads: usize,
    /// Probability that a read targets another file of an
    /// already-chosen upstream producer instead of a fresh one.
    /// Real pipelines read many files of few producers, which is what
    /// makes job-to-job connectors orders of magnitude smaller than the
    /// raw lineage (many parallel job→file→job paths contract into one
    /// connector edge).
    pub read_locality: f64,
    /// Include the non-core vertex types (tasks, machines, users) that
    /// the schema-level summarizer later removes. Tasks per job are
    /// power-law distributed.
    pub with_periphery: bool,
    /// Tasks per job (upper bound of a power-law draw).
    pub max_tasks_per_job: usize,
    /// Number of machine vertices (shared by all tasks).
    pub machines: usize,
    /// Number of user vertices (each job gets one submitter).
    pub users: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProvenanceConfig {
    fn default() -> Self {
        ProvenanceConfig {
            jobs: 2_000,
            waves: 12,
            write_gamma: 2.2,
            max_writes: 40,
            read_gamma: 1.25,
            max_reads: 40,
            read_locality: 0.92,
            with_periphery: true,
            max_tasks_per_job: 20,
            machines: 50,
            users: 100,
            seed: 0xCA5CADE,
        }
    }
}

impl ProvenanceConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ProvenanceConfig {
            jobs: 60,
            waves: 4,
            max_writes: 6,
            max_reads: 5,
            max_tasks_per_job: 4,
            machines: 5,
            users: 8,
            seed,
            ..Default::default()
        }
    }

    /// Scales the job count, keeping other parameters.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Disables the peripheral vertex types (tasks/machines/users),
    /// producing the already-summarized job/file core.
    pub fn core_only(mut self) -> Self {
        self.with_periphery = false;
        self
    }
}

/// Generates a provenance graph. Vertex types: `Job`, `File`, and (with
/// periphery) `Task`, `Machine`, `User`. Job vertices carry `CPU` (int,
/// CPU-hours) and `pipelineName` (string); all lineage edges carry a
/// wave-ordered `ts` timestamp.
pub fn generate_provenance(cfg: &ProvenanceConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let writes_pl = PowerLaw::new(cfg.write_gamma, cfg.max_writes.max(1));
    let reads_pl = PowerLaw::new(cfg.read_gamma, cfg.max_reads.max(1));
    let tasks_pl = PowerLaw::new(2.0, cfg.max_tasks_per_job.max(1));

    let mut b = GraphBuilder::new();

    let machines: Vec<VertexId> = if cfg.with_periphery {
        (0..cfg.machines)
            .map(|i| {
                let m = b.add_vertex("Machine");
                b.set_vertex_prop(m, "name", Value::Str(format!("m{i}")));
                m
            })
            .collect()
    } else {
        Vec::new()
    };
    let users: Vec<VertexId> = if cfg.with_periphery {
        (0..cfg.users)
            .map(|i| {
                let u = b.add_vertex("User");
                b.set_vertex_prop(u, "name", Value::Str(format!("u{i}")));
                u
            })
            .collect()
    } else {
        Vec::new()
    };

    // Files produced so far, with preferential-attachment weights so that
    // popular files accumulate readers (power-law file out-degree).
    // `file_producer[i]` is the index (into `producer_files`) of the job
    // that wrote `produced_files[i]`; `producer_files` lists each
    // producer's output files so local reads can target siblings.
    let mut produced_files: Vec<VertexId> = Vec::new();
    let mut file_weights = PrefixWeights::new();
    let mut file_producer: Vec<usize> = Vec::new();
    let mut producer_files: Vec<Vec<usize>> = Vec::new();

    let waves = cfg.waves.max(1);
    let jobs_per_wave = cfg.jobs.div_ceil(waves);
    let mut job_seq = 0usize;
    let mut ts = 0i64;

    for wave in 0..waves {
        let mut wave_jobs: Vec<VertexId> = Vec::with_capacity(jobs_per_wave);
        for _ in 0..jobs_per_wave {
            if job_seq >= cfg.jobs {
                break;
            }
            let j = b.add_vertex("Job");
            b.set_vertex_prop(j, "CPU", Value::Int(rng.random_range(1..=1_000)));
            b.set_vertex_prop(
                j,
                "pipelineName",
                Value::Str(format!("pipeline{}", job_seq % 17)),
            );
            job_seq += 1;
            wave_jobs.push(j);
        }

        // Reads: jobs after wave 0 read existing files. The first read of
        // a job picks a (preferentially hot) file anywhere; subsequent
        // reads mostly stay with the producers already chosen
        // (read_locality), mirroring real pipelines that consume many
        // files of few upstream jobs.
        if wave > 0 {
            for &j in &wave_jobs {
                let n_reads = reads_pl.sample(&mut rng);
                let mut upstream: Vec<usize> = Vec::new(); // producer ids
                let mut seen_files: Vec<usize> = Vec::new();
                for r in 0..n_reads {
                    let local = r > 0
                        && !upstream.is_empty()
                        && rng.random_bool(cfg.read_locality.clamp(0.0, 1.0));
                    let fi = if local {
                        let p = upstream[rng.random_range(0..upstream.len())];
                        let files = &producer_files[p];
                        files[rng.random_range(0..files.len())]
                    } else {
                        match file_weights.sample(&mut rng) {
                            Some(fi) => fi,
                            None => continue,
                        }
                    };
                    if seen_files.contains(&fi) {
                        continue;
                    }
                    seen_files.push(fi);
                    let p = file_producer[fi];
                    if !upstream.contains(&p) {
                        upstream.push(p);
                    }
                    ts += 1;
                    let e = b.add_edge(produced_files[fi], j, "IS_READ_BY");
                    b.set_edge_prop(e, "ts", Value::Int(ts));
                }
            }
        }

        // Writes: every job writes fresh files.
        for &j in &wave_jobs {
            let producer_id = producer_files.len();
            producer_files.push(Vec::new());
            let n_writes = writes_pl.sample(&mut rng);
            for _ in 0..n_writes {
                let f = b.add_vertex("File");
                b.set_vertex_prop(f, "bytes", Value::Int(rng.random_range(1_000..10_000_000)));
                ts += 1;
                let e = b.add_edge(j, f, "WRITES_TO");
                b.set_edge_prop(e, "ts", Value::Int(ts));
                let fi = produced_files.len();
                produced_files.push(f);
                file_producer.push(producer_id);
                producer_files[producer_id].push(fi);
                // Base weight 1 plus a heavy-tail boost for a few hot files.
                let hot = if rng.random_bool(0.05) { 50 } else { 1 };
                file_weights.push(hot);
            }
        }

        // Periphery: tasks, machines, users.
        if cfg.with_periphery {
            for &j in &wave_jobs {
                if !users.is_empty() {
                    let u = users[rng.random_range(0..users.len())];
                    b.add_edge(u, j, "SUBMITTED");
                }
                let n_tasks = tasks_pl.sample(&mut rng);
                let mut prev_task: Option<VertexId> = None;
                for _ in 0..n_tasks {
                    let t = b.add_vertex("Task");
                    b.add_edge(j, t, "SPAWNS");
                    if !machines.is_empty() {
                        let m = machines[rng.random_range(0..machines.len())];
                        b.add_edge(t, m, "RUNS_ON");
                    }
                    if let Some(p) = prev_task {
                        b.add_edge(p, t, "TRANSFERS_TO");
                    }
                    prev_task = Some(t);
                }
            }
        }
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::Schema;

    #[test]
    fn deterministic_under_seed() {
        let a = generate_provenance(&ProvenanceConfig::tiny(9));
        let b = generate_provenance(&ProvenanceConfig::tiny(9));
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = generate_provenance(&ProvenanceConfig::tiny(10));
        // different seed should (overwhelmingly) differ
        assert!(a.edge_count() != c.edge_count() || a.vertex_count() != c.vertex_count());
    }

    #[test]
    fn core_respects_provenance_schema() {
        let g = generate_provenance(&ProvenanceConfig::tiny(1).core_only());
        let schema = Schema::provenance();
        for e in g.edges() {
            let s = g.vertex_type(g.edge_src(e));
            let d = g.vertex_type(g.edge_dst(e));
            assert!(schema.allows_edge(s, g.edge_type(e), d));
        }
    }

    #[test]
    fn no_job_job_or_file_file_edges() {
        let g = generate_provenance(&ProvenanceConfig::tiny(2));
        for e in g.edges() {
            let s = g.vertex_type(g.edge_src(e));
            let d = g.vertex_type(g.edge_dst(e));
            assert!(
                !(s == "Job" && d == "Job"),
                "job-job edge found: {}",
                g.edge_type(e)
            );
            assert!(!(s == "File" && d == "File"));
        }
    }

    #[test]
    fn lineage_is_acyclic_dag() {
        // Kahn's algorithm over the job/file core must consume all vertices.
        let g = generate_provenance(&ProvenanceConfig::tiny(3).core_only());
        let n = g.vertex_count();
        let mut indeg: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        let mut queue: Vec<_> = g.vertices().filter(|v| indeg[v.index()] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for w in g.out_neighbors(v) {
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    queue.push(w);
                }
            }
        }
        assert_eq!(seen, n, "lineage graph has a cycle");
    }

    #[test]
    fn periphery_types_present_only_when_enabled() {
        let g = generate_provenance(&ProvenanceConfig::tiny(4));
        let types: Vec<String> = g.vertex_type_counts().into_iter().map(|(t, _)| t).collect();
        assert!(types.contains(&"Task".to_string()));
        assert!(types.contains(&"Machine".to_string()));
        assert!(types.contains(&"User".to_string()));

        let core = generate_provenance(&ProvenanceConfig::tiny(4).core_only());
        let core_types: Vec<String> = core
            .vertex_type_counts()
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(core_types, vec!["File".to_string(), "Job".to_string()]);
    }

    #[test]
    fn jobs_have_cpu_and_pipeline_props() {
        let g = generate_provenance(&ProvenanceConfig::tiny(5));
        for v in g.vertices_of_type("Job") {
            assert!(g.vertex_prop(v, "CPU").and_then(|v| v.as_int()).is_some());
            assert!(g.vertex_prop(v, "pipelineName").is_some());
        }
    }

    #[test]
    fn lineage_edges_have_increasing_ts() {
        let g = generate_provenance(&ProvenanceConfig::tiny(6).core_only());
        let mut ts_values: Vec<i64> = g
            .edges()
            .filter_map(|e| g.edge_prop(e, "ts").and_then(|v| v.as_int()))
            .collect();
        assert_eq!(ts_values.len(), g.edge_count());
        let mut sorted = ts_values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ts_values.len(), "timestamps must be unique");
        ts_values.sort_unstable();
    }

    #[test]
    fn job_count_matches_config() {
        let cfg = ProvenanceConfig::tiny(7).with_jobs(37);
        let g = generate_provenance(&cfg);
        assert_eq!(g.vertices_of_type("Job").count(), 37);
    }
}
