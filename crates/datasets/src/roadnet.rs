//! Synthetic road network generator (roadnet-usa substitute).
//!
//! A homogeneous directed graph with one vertex type (`Intersection`)
//! and one edge type (`ROAD`), laid out as a perturbed grid: each
//! intersection connects to its grid neighbors (both directions), with a
//! fraction of segments removed and occasional diagonal shortcuts. The
//! resulting degree distribution is near-constant and small (no power
//! law) and shortest paths are long — the two properties that drive the
//! paper's roadnet results (Fig. 5, Fig. 7, Fig. 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kaskade_graph::{Graph, GraphBuilder, Value, VertexId};

/// Configuration for [`generate_roadnet`].
#[derive(Debug, Clone)]
pub struct RoadnetConfig {
    /// Grid width (number of intersections per row).
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Probability a grid segment is missing (road not built).
    pub drop_prob: f64,
    /// Probability of a diagonal shortcut at a cell.
    pub diagonal_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadnetConfig {
    fn default() -> Self {
        RoadnetConfig {
            width: 80,
            height: 60,
            drop_prob: 0.08,
            diagonal_prob: 0.03,
            seed: 0x80AD,
        }
    }
}

impl RoadnetConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        RoadnetConfig {
            width: 10,
            height: 8,
            seed,
            ..Default::default()
        }
    }
}

/// Generates a road network graph. Vertices are `Intersection` (with
/// `x`/`y` coordinates); edges are `ROAD` with `ts` (used as a weight
/// proxy by Q4).
pub fn generate_roadnet(cfg: &RoadnetConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();
    let idx = |x: usize, y: usize| VertexId((y * cfg.width + x) as u32);

    for y in 0..cfg.height {
        for x in 0..cfg.width {
            let v = b.add_vertex("Intersection");
            b.set_vertex_prop(v, "x", Value::Int(x as i64));
            b.set_vertex_prop(v, "y", Value::Int(y as i64));
        }
    }

    let mut ts = 0i64;
    let both = |b: &mut GraphBuilder, u: VertexId, v: VertexId, ts: &mut i64| {
        *ts += 1;
        let e1 = b.add_edge(u, v, "ROAD");
        b.set_edge_prop(e1, "ts", Value::Int(*ts));
        *ts += 1;
        let e2 = b.add_edge(v, u, "ROAD");
        b.set_edge_prop(e2, "ts", Value::Int(*ts));
    };

    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width && !rng.random_bool(cfg.drop_prob) {
                both(&mut b, idx(x, y), idx(x + 1, y), &mut ts);
            }
            if y + 1 < cfg.height && !rng.random_bool(cfg.drop_prob) {
                both(&mut b, idx(x, y), idx(x, y + 1), &mut ts);
            }
            if x + 1 < cfg.width && y + 1 < cfg.height && rng.random_bool(cfg.diagonal_prob) {
                both(&mut b, idx(x, y), idx(x + 1, y + 1), &mut ts);
            }
        }
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::GraphStats;

    #[test]
    fn grid_dimensions() {
        let cfg = RoadnetConfig::tiny(1);
        let g = generate_roadnet(&cfg);
        assert_eq!(g.vertex_count(), cfg.width * cfg.height);
    }

    #[test]
    fn bounded_degree() {
        let g = generate_roadnet(&RoadnetConfig::tiny(2));
        // max possible: 4 grid dirs + up to 2 diagonals (in+out counted
        // separately as out-degree ≤ 6)
        for v in g.vertices() {
            assert!(g.out_degree(v) <= 6, "degree {} too high", g.out_degree(v));
        }
    }

    #[test]
    fn roads_are_bidirectional() {
        let g = generate_roadnet(&RoadnetConfig::tiny(3));
        for e in g.edges() {
            let (s, d) = (g.edge_src(e), g.edge_dst(e));
            assert!(
                g.out_neighbors(d).any(|w| w == s),
                "missing reverse road {s}->{d}"
            );
        }
    }

    #[test]
    fn no_power_law() {
        let g = generate_roadnet(&RoadnetConfig::default());
        let s = GraphStats::compute(&g);
        let o = s.for_type("Intersection").unwrap();
        // p50 and max are within a small constant of each other —
        // nothing like a power-law tail
        assert!(o.max <= o.p50.max(1) * 4, "max={} p50={}", o.max, o.p50);
    }

    #[test]
    fn homogeneous_types() {
        let g = generate_roadnet(&RoadnetConfig::tiny(4));
        assert_eq!(g.vertex_type_counts().len(), 1);
        assert_eq!(g.edge_type_counts().len(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_roadnet(&RoadnetConfig::tiny(5));
        let b = generate_roadnet(&RoadnetConfig::tiny(5));
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
