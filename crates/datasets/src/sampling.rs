//! Random sampling helpers shared by the dataset generators.
//!
//! All generators draw from a seeded [`rand::rngs::StdRng`], so every
//! dataset in the evaluation is reproducible bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::Rng;

/// A discrete power-law sampler over `1..=max_value` with
/// `P(x) ∝ x^(-gamma)`, using a precomputed inverse-CDF table.
///
/// Real-world graphs in the paper's evaluation (prov, dblp,
/// soc-livejournal) have approximately power-law out-degree
/// distributions (Fig. 8); this sampler drives their generators.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    cdf: Vec<f64>,
}

impl PowerLaw {
    /// Builds the sampler. `gamma` is the exponent (typically 2–3);
    /// `max_value` caps the support.
    ///
    /// # Panics
    /// Panics if `max_value` is zero or `gamma` is not finite.
    pub fn new(gamma: f64, max_value: usize) -> Self {
        assert!(max_value >= 1, "max_value must be >= 1");
        assert!(gamma.is_finite(), "gamma must be finite");
        let mut cdf = Vec::with_capacity(max_value);
        let mut acc = 0.0;
        for x in 1..=max_value {
            acc += (x as f64).powf(-gamma);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        PowerLaw { cdf }
    }

    /// Draws one value in `1..=max_value`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Weighted index sampling used for preferential attachment: draws an
/// index `i` with probability proportional to `weights[i]`, in O(log n)
/// via a running prefix-sum maintained by the caller.
#[derive(Debug, Clone, Default)]
pub struct PrefixWeights {
    prefix: Vec<u64>,
}

impl PrefixWeights {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item with the given positive weight.
    pub fn push(&mut self, weight: u64) {
        let total = self.prefix.last().copied().unwrap_or(0);
        self.prefix.push(total + weight);
    }

    /// Adds `delta` to the weight of item `i`. O(n) in the tail; fine for
    /// generator-scale updates batched per wave.
    pub fn bump_all_from(&mut self, i: usize, delta: u64) {
        for w in &mut self.prefix[i..] {
            *w += delta;
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Samples an index proportionally to weight. Returns `None` if empty
    /// or all weights are zero.
    pub fn sample(&self, rng: &mut StdRng) -> Option<usize> {
        let total = *self.prefix.last()?;
        if total == 0 {
            return None;
        }
        let t = rng.random_range(0..total);
        Some(match self.prefix.binary_search(&(t + 1)) {
            Ok(i) => i,
            Err(i) => i,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn power_law_in_range() {
        let pl = PowerLaw::new(2.2, 50);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = pl.sample(&mut rng);
            assert!((1..=50).contains(&v));
        }
    }

    #[test]
    fn power_law_mass_concentrates_at_low_values() {
        let pl = PowerLaw::new(2.5, 100);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let ones = (0..n).filter(|_| pl.sample(&mut rng) == 1).count();
        // For gamma=2.5 over 1..=100, P(1) ≈ 1/ζ(2.5) ≈ 0.75
        let frac = ones as f64 / n as f64;
        assert!(frac > 0.65 && frac < 0.85, "frac={frac}");
    }

    #[test]
    fn power_law_deterministic_under_seed() {
        let pl = PowerLaw::new(2.0, 30);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<usize> = (0..100).map(|_| pl.sample(&mut a)).collect();
        let ys: Vec<usize> = (0..100).map(|_| pl.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "max_value")]
    fn power_law_rejects_zero_max() {
        PowerLaw::new(2.0, 0);
    }

    #[test]
    fn prefix_weights_proportional() {
        let mut pw = PrefixWeights::new();
        pw.push(1);
        pw.push(9);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let hits1 = (0..n).filter(|_| pw.sample(&mut rng) == Some(1)).count();
        let frac = hits1 as f64 / n as f64;
        assert!(frac > 0.85 && frac < 0.95, "frac={frac}");
    }

    #[test]
    fn prefix_weights_empty_and_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let pw = PrefixWeights::new();
        assert_eq!(pw.sample(&mut rng), None);
        let mut pw = PrefixWeights::new();
        pw.push(0);
        assert_eq!(pw.sample(&mut rng), None);
    }

    #[test]
    fn prefix_weights_bump() {
        let mut pw = PrefixWeights::new();
        pw.push(1);
        pw.push(1);
        pw.bump_all_from(1, 98); // item 1 now weight 99
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let hits1 = (0..n).filter(|_| pw.sample(&mut rng) == Some(1)).count();
        assert!(hits1 as f64 / n as f64 > 0.95);
    }
}
