//! Synthetic social network generator (soc-livejournal substitute).
//!
//! A homogeneous directed graph with one vertex type (`User`) and one
//! edge type (`FOLLOWS`), grown by preferential attachment so that the
//! out-degree distribution is power-law — the property that makes 2-hop
//! connectors on this network *larger* than the raw graph (§VII-D/F).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kaskade_graph::{Graph, GraphBuilder, Value};

use crate::sampling::{PowerLaw, PrefixWeights};

/// Configuration for [`generate_social`].
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Number of user vertices.
    pub users: usize,
    /// Maximum follows initiated per user (power-law distributed).
    pub max_follows: usize,
    /// Power-law exponent for follows-per-user.
    pub follow_gamma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            users: 5_000,
            max_follows: 80,
            follow_gamma: 1.9,
            seed: 0x50C1A1,
        }
    }
}

impl SocialConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        SocialConfig {
            users: 80,
            max_follows: 12,
            seed,
            ..Default::default()
        }
    }
}

/// Generates a social graph. Vertices are `User`; edges are `FOLLOWS`
/// with a `ts` property.
pub fn generate_social(cfg: &SocialConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let follows_pl = PowerLaw::new(cfg.follow_gamma, cfg.max_follows.max(1));

    let mut b = GraphBuilder::new();
    let mut weights = PrefixWeights::new();
    let mut ts = 0i64;

    for i in 0..cfg.users {
        let u = b.add_vertex("User");
        b.set_vertex_prop(u, "name", Value::Str(format!("user{i}")));
        weights.push(1);
        if i == 0 {
            continue;
        }
        let k = follows_pl.sample(&mut rng).min(i);
        let mut followed: Vec<usize> = Vec::with_capacity(k);
        let mut attempts = 0;
        while followed.len() < k && attempts < k * 4 {
            attempts += 1;
            // preferential attachment among existing users
            if let Some(t) = weights.sample(&mut rng) {
                if t != i && !followed.contains(&t) {
                    followed.push(t);
                }
            }
        }
        for &t in &followed {
            ts += 1;
            let e = b.add_edge(
                kaskade_graph::VertexId(i as u32),
                kaskade_graph::VertexId(t as u32),
                "FOLLOWS",
            );
            b.set_edge_prop(e, "ts", Value::Int(ts));
            // reciprocal follow with some probability (social reciprocity)
            if rng.random_bool(0.3) {
                ts += 1;
                let e2 = b.add_edge(
                    kaskade_graph::VertexId(t as u32),
                    kaskade_graph::VertexId(i as u32),
                    "FOLLOWS",
                );
                b.set_edge_prop(e2, "ts", Value::Int(ts));
            }
        }
        for &t in &followed {
            weights.bump_all_from(t, 1);
        }
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::{degree_ccdf, power_law_exponent, GraphStats};

    #[test]
    fn homogeneous_single_types() {
        let g = generate_social(&SocialConfig::tiny(1));
        assert_eq!(g.vertex_type_counts().len(), 1);
        assert_eq!(g.edge_type_counts().len(), 1);
        assert_eq!(g.vertex_type_counts()[0].0, "User");
        assert_eq!(g.edge_type_counts()[0].0, "FOLLOWS");
    }

    #[test]
    fn no_self_loops() {
        let g = generate_social(&SocialConfig::tiny(2));
        for e in g.edges() {
            assert_ne!(g.edge_src(e), g.edge_dst(e));
        }
    }

    #[test]
    fn heavy_tail_in_degree() {
        // hubs accumulate in-links under preferential attachment
        let cfg = SocialConfig {
            users: 2_000,
            ..SocialConfig::tiny(3)
        };
        let g = generate_social(&cfg);
        let mut ins: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        ins.sort_unstable();
        let median = ins[ins.len() / 2];
        let max = *ins.last().unwrap();
        assert!(max > median.max(1) * 10, "max={max} median={median}");
    }

    #[test]
    fn ccdf_fits_negative_slope() {
        let cfg = SocialConfig {
            users: 3_000,
            ..SocialConfig::tiny(4)
        };
        let g = generate_social(&cfg);
        let ccdf = degree_ccdf(&g);
        let slope = power_law_exponent(&ccdf).unwrap();
        assert!(slope < -0.4, "slope={slope} should be clearly negative");
    }

    #[test]
    fn stats_have_one_type() {
        let g = generate_social(&SocialConfig::tiny(5));
        let s = GraphStats::compute(&g);
        assert_eq!(s.type_count(), 1);
        assert!(s.for_type("User").unwrap().max >= 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_social(&SocialConfig::tiny(6));
        let b = generate_social(&SocialConfig::tiny(6));
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
