//! A tiny hand-rolled binary codec shared by the durability layer.
//!
//! The whole workspace builds offline, so there is no serde; instead
//! every persistent structure (graph checkpoints, statistics, the
//! external-id table, WAL records) encodes itself through [`Enc`] and
//! decodes through [`Dec`] — little-endian fixed-width integers,
//! length-prefixed strings, and nothing clever. [`crc32`] (the IEEE
//! polynomial, the same one zip/png use) frames records so a torn or
//! corrupted tail is detected rather than replayed.

use std::fmt;

/// IEEE CRC-32 lookup table, generated at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A growable little-endian byte encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bit pattern (exact round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no framing (the caller knows the length).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A decode failure: the input was truncated or structurally invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value it promised.
    Truncated,
    /// A tag, count, or invariant did not hold (context attached).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded input truncated"),
            CodecError::Corrupt(what) => write!(f, "encoded input corrupt: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A cursor over encoded bytes; the mirror of [`Enc`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting counts that
    /// exceed the remaining input (a cheap bound against corrupt
    /// lengths causing huge allocations).
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Corrupt("count exceeds usize"))
    }

    /// Like [`Dec::usize`] but additionally requires the count to be
    /// plausible as a number of at-least-one-byte elements still ahead.
    pub fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CodecError::Corrupt("element count exceeds input"));
        }
        Ok(n)
    }

    /// Reads a bool byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("bool byte out of range")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.usize()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // the classic check value for the IEEE polynomial
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.f64(1.5e-300);
        e.f64(f64::NAN);
        e.bool(true);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 1.5e-300);
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(d.is_done());
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Enc::new();
        e.u64(99);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(CodecError::Truncated));
        // strings with a length promising more than is present
        let mut e = Enc::new();
        e.str("abcdef");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..bytes.len() - 2]);
        assert_eq!(d.str(), Err(CodecError::Truncated));
    }

    #[test]
    fn corrupt_bool_and_oversized_counts_are_rejected() {
        let mut d = Dec::new(&[9]);
        assert!(matches!(d.bool(), Err(CodecError::Corrupt(_))));
        let mut e = Enc::new();
        e.usize(1 << 40);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.count(), Err(CodecError::Corrupt(_))));
    }
}
