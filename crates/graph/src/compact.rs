//! Slot compaction: drop tombstoned id slots and renumber the
//! survivors densely.
//!
//! Tombstoning (see [`crate::GraphEditor`]) keeps ids stable across any
//! edit sequence, but a long-lived churn workload pays for that
//! stability with unbounded growth: every retired vertex or edge keeps
//! its slot — type symbol, empty property cell, dead flags, CSR offset
//! entries — forever, even at constant live size. [`Graph::compact`]
//! is the other half of the bargain: it rebuilds the graph with **only
//! the live slots**, preserving the relative order of survivors, and
//! returns an [`IdRemap`] describing where every old id went so the
//! few places that hold pre-compaction ids (queued deltas, client
//! handles) can be rebased.
//!
//! Compaction is **observationally invisible** apart from the ids
//! themselves: live vertices and edges keep their types, properties,
//! ghost flags, adjacency, and relative order (so identity-targeted
//! LIFO retraction picks the same edge before and after), and
//! [`crate::GraphStats`] of the compacted graph are exactly equal to
//! the original's (proptest-enforced in `tests/properties.rs`).
//! Coordinated deployments — the shards of a partitioned graph, which
//! must keep their id spaces aligned — compute one remap from the
//! authoritative copy and apply it everywhere with
//! [`Graph::compact_with`].

use crate::graph::{EdgeId, Graph, GraphInner, VertexId};

/// A dense old→new vertex-id mapping produced by [`Graph::compact`].
///
/// The mapping is **order-preserving**: if two live slots `a < b` both
/// survive, then `remap(a) < remap(b)`. Ids at or past
/// [`IdRemap::old_slots`] — slots that did not exist when the remap was
/// taken — map by append order: the i-th slot created *after* the
/// compaction point corresponds to new id `new_slots + i`, so a
/// mapping stays usable while both id spaces keep growing in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdRemap {
    /// `forward[old] = new`, with `u32::MAX` marking a dropped slot.
    forward: Vec<u32>,
    new_slots: usize,
}

impl IdRemap {
    /// Number of vertex slots of the graph the remap was taken from.
    pub fn old_slots(&self) -> usize {
        self.forward.len()
    }

    /// Number of vertex slots after compaction (= live vertices).
    pub fn new_slots(&self) -> usize {
        self.new_slots
    }

    /// Vertex slots the compaction reclaimed.
    pub fn reclaimed(&self) -> usize {
        self.forward.len() - self.new_slots
    }

    /// Whether the remap maps every slot to itself (nothing dropped).
    pub fn is_identity(&self) -> bool {
        self.forward.len() == self.new_slots
    }

    /// The post-compaction id of `v`, or `None` if `v`'s slot was
    /// dropped (it was dead when the remap was taken — any reference
    /// to it was already a guaranteed no-op or a guaranteed
    /// rejection). Ids past [`IdRemap::old_slots`] map by append
    /// order; see the type docs. `VertexId(u32::MAX)` is reserved as
    /// the dropped-slot sentinel and always maps to `None`, so a
    /// reference poisoned by one remap stays dropped through any
    /// chain of later remaps instead of decaying back into range.
    pub fn vertex(&self, v: VertexId) -> Option<VertexId> {
        let i = v.index();
        if i < self.forward.len() {
            let m = self.forward[i];
            (m != u32::MAX).then_some(VertexId(m))
        } else if v.0 == u32::MAX {
            None
        } else {
            Some(VertexId((self.new_slots + (i - self.forward.len())) as u32))
        }
    }
}

impl Graph {
    /// Drops every dead vertex and edge slot, renumbering the live
    /// survivors densely (relative order preserved), and returns the
    /// compacted graph plus the old→new [`IdRemap`]. Live elements
    /// keep their types, properties, ghost flags, and adjacency;
    /// statistics are exactly preserved. With nothing dead this is a
    /// plain copy and the remap [`is an identity`](IdRemap::is_identity)
    /// — callers gate on a dead-slot policy rather than calling this
    /// unconditionally.
    pub fn compact(&self) -> (Graph, IdRemap) {
        let inner = &*self.inner;
        let n = inner.vtypes.len();
        let mut forward = vec![u32::MAX; n];
        let mut next = 0u32;
        for (i, slot) in forward.iter_mut().enumerate() {
            if inner.vertex_is_live(i) {
                *slot = next;
                next += 1;
            }
        }
        let remap = IdRemap {
            forward,
            new_slots: next as usize,
        };
        let g = self.compact_with(&remap);
        (g, remap)
    }

    /// [`Graph::compact`] with an externally supplied vertex remap —
    /// the coordinated form used across the shards of a partitioned
    /// graph, where every shard must apply the **same** remap (taken
    /// from the authoritative global graph) so shard-local ids stay
    /// equal to global ids. Dead *edge* slots are always dropped
    /// locally (edge ids are graph-local and nothing outside a graph
    /// refers to them).
    ///
    /// # Panics
    /// Panics if the remap does not cover this graph: a live vertex
    /// maps to `None`, or the slot counts disagree. For shards this
    /// holds by construction — vertex liveness is broadcast, so every
    /// shard agrees with the global graph on which slots are dead.
    pub fn compact_with(&self, remap: &IdRemap) -> Graph {
        let inner = &*self.inner;
        let old_n = inner.vtypes.len();
        assert_eq!(
            remap.old_slots(),
            old_n,
            "remap was taken from a graph with a different slot count"
        );
        let n = remap.new_slots();

        let mut vtypes = Vec::with_capacity(n);
        let mut vprops = Vec::with_capacity(n);
        let mut vghost = Vec::with_capacity(n);
        let mut any_ghost = false;
        for i in 0..old_n {
            match remap.vertex(VertexId(i as u32)) {
                Some(nv) => {
                    assert!(
                        inner.vertex_is_live(i),
                        "remap keeps vertex {i}, which is dead here"
                    );
                    // order preservation makes the new columns append-only
                    assert_eq!(nv.index(), vtypes.len(), "remap is not order-preserving");
                    vtypes.push(inner.vtypes[i]);
                    vprops.push(inner.vprops[i].clone());
                    let ghost = inner.vertex_is_ghost(i);
                    vghost.push(ghost);
                    any_ghost |= ghost;
                }
                None => assert!(
                    !inner.vertex_is_live(i),
                    "remap drops vertex {i}, which is still live here"
                ),
            }
        }

        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut etypes = Vec::new();
        let mut eprops = Vec::new();
        for e in 0..inner.srcs.len() {
            if !inner.edge_is_live(e) {
                continue;
            }
            let s = remap
                .vertex(inner.srcs[e])
                .expect("live edge endpoint survives compaction");
            let d = remap
                .vertex(inner.dsts[e])
                .expect("live edge endpoint survives compaction");
            srcs.push(s);
            dsts.push(d);
            etypes.push(inner.etypes[e]);
            eprops.push(inner.eprops[e].clone());
        }

        let m = srcs.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..m {
            out_offsets[srcs[i].index() + 1] += 1;
            in_offsets[dsts[i].index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_edges = vec![EdgeId(0); m];
        let mut in_edges = vec![EdgeId(0); m];
        // recycled fill cursors (see `crate::scratch`): compaction runs
        // repeatedly on churn workloads and these are pure scratch
        let mut out_cursor = crate::scratch::take_u32(n + 1);
        out_cursor.extend_from_slice(&out_offsets);
        let mut in_cursor = crate::scratch::take_u32(n + 1);
        in_cursor.extend_from_slice(&in_offsets);
        for i in 0..m {
            let s = srcs[i].index();
            let d = dsts[i].index();
            out_edges[out_cursor[s] as usize] = EdgeId(i as u32);
            out_cursor[s] += 1;
            in_edges[in_cursor[d] as usize] = EdgeId(i as u32);
            in_cursor[d] += 1;
        }
        crate::scratch::give_u32(out_cursor);
        crate::scratch::give_u32(in_cursor);

        let live_owned = vghost.iter().filter(|&&g| !g).count();
        Graph {
            inner: std::sync::Arc::new(GraphInner {
                interner: inner.interner.clone(),
                vtypes,
                vprops,
                srcs,
                dsts,
                etypes,
                eprops,
                vertex_dead: Vec::new(),
                vertex_ghost: if any_ghost { vghost } else { Vec::new() },
                edge_dead: Vec::new(),
                live_vertices: n,
                live_owned,
                live_edges: m,
                out_offsets,
                out_edges,
                in_offsets,
                in_edges,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::stats::GraphStats;
    use crate::value::Value;

    /// j0 -w-> f0 -r-> j1 -w-> f1, with props on each element.
    fn toy() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        b.set_vertex_prop(j0, "cpu", Value::Int(4));
        b.set_vertex_prop(j1, "cpu", Value::Int(9));
        let e = b.add_edge(j0, f0, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(1));
        b.add_edge(f0, j1, "IS_READ_BY");
        let e = b.add_edge(j1, f1, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(3));
        b.finish()
    }

    #[test]
    fn compact_without_tombstones_is_identity() {
        let g = toy();
        let (c, remap) = g.compact();
        assert!(remap.is_identity());
        assert_eq!(remap.reclaimed(), 0);
        assert_eq!(c.vertex_slots(), g.vertex_slots());
        assert_eq!(c.edge_slots(), g.edge_slots());
        assert_eq!(GraphStats::compute(&c), GraphStats::compute(&g));
        for v in g.vertices() {
            assert_eq!(remap.vertex(v), Some(v));
        }
    }

    #[test]
    fn compact_drops_dead_slots_and_remaps() {
        let g = toy().remove_vertices([VertexId(1)]); // f0 + 2 edges die
        assert_eq!(g.vertex_slots(), 4);
        assert_eq!(g.vertex_count(), 3);
        let (c, remap) = g.compact();
        assert_eq!(c.vertex_slots(), 3);
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.edge_slots(), 1);
        assert_eq!(c.edge_count(), 1);
        assert_eq!(remap.reclaimed(), 1);
        // order-preserving dense renumbering around the hole
        assert_eq!(remap.vertex(VertexId(0)), Some(VertexId(0)));
        assert_eq!(remap.vertex(VertexId(1)), None);
        assert_eq!(remap.vertex(VertexId(2)), Some(VertexId(1)));
        assert_eq!(remap.vertex(VertexId(3)), Some(VertexId(2)));
        // the surviving edge j1 -w-> f1 carries its props and endpoints
        let e = c.edges().next().unwrap();
        assert_eq!(c.edge_src(e), VertexId(1));
        assert_eq!(c.edge_dst(e), VertexId(2));
        assert_eq!(c.edge_prop(e, "ts"), Some(&Value::Int(3)));
        // vertex types and props moved with their slots
        assert_eq!(c.vertex_type(VertexId(1)), "Job");
        assert_eq!(c.vertex_prop(VertexId(1), "cpu"), Some(&Value::Int(9)));
        // statistics are exactly preserved
        assert_eq!(GraphStats::compute(&c), GraphStats::compute(&g));
    }

    #[test]
    fn compact_preserves_adjacency_and_edge_order() {
        // parallel edges: LIFO retraction order must survive compaction
        let mut b = GraphBuilder::new();
        let dead = b.add_vertex("Job");
        let j = b.add_vertex("Job");
        let f = b.add_vertex("File");
        let e0 = b.add_edge(j, f, "WRITES_TO");
        b.set_edge_prop(e0, "ts", Value::Int(10));
        let e1 = b.add_edge(j, f, "WRITES_TO");
        b.set_edge_prop(e1, "ts", Value::Int(20));
        let g = b.finish().remove_vertices([dead]);
        let (c, remap) = g.compact();
        let nj = remap.vertex(j).unwrap();
        let nf = remap.vertex(f).unwrap();
        assert_eq!(c.out_degree(nj), 2);
        assert_eq!(c.in_degree(nf), 2);
        // relative order preserved: the newest (LIFO) match is still ts=20
        let newest = c
            .out_edges(nj)
            .filter(|&(_, w)| w == nf)
            .map(|(e, _)| e)
            .max()
            .unwrap();
        assert_eq!(c.edge_prop(newest, "ts"), Some(&Value::Int(20)));
    }

    #[test]
    fn remap_maps_future_slots_by_append_order() {
        let g = toy().remove_vertices([VertexId(1)]);
        let (c, remap) = g.compact();
        // the next slot appended on the uncompacted side (id 4) pairs
        // with the next slot on the compacted side (id 3)
        assert_eq!(remap.old_slots(), 4);
        assert_eq!(remap.new_slots(), 3);
        assert_eq!(remap.vertex(VertexId(4)), Some(VertexId(3)));
        assert_eq!(remap.vertex(VertexId(6)), Some(VertexId(5)));
        // the dropped-slot sentinel never maps back into range, no
        // matter how many remaps a reference is chained through
        assert_eq!(remap.vertex(VertexId(u32::MAX)), None);
        drop(c);
    }

    #[test]
    fn compact_with_shared_remap_keeps_shards_aligned() {
        // a global graph and its two shards compact with the same remap
        let g = toy().remove_vertices([VertexId(1)]);
        let owner = |v: VertexId| v.0 % 2;
        let shards: Vec<Graph> = (0..2).map(|s| g.shard(&|v| owner(v) == s)).collect();
        let (cg, remap) = g.compact();
        for (s, shard) in shards.iter().enumerate() {
            let cs = shard.compact_with(&remap);
            assert_eq!(cs.vertex_slots(), cg.vertex_slots(), "shard {s}");
            // every surviving slot agrees with the global graph on type
            for v in cg.vertices() {
                assert_eq!(cs.vertex_type(v), cg.vertex_type(v), "shard {s}");
            }
            // ghost flags follow their slots
            for v in cs.vertices() {
                let old = VertexId(
                    (0..remap.old_slots() as u32)
                        .find(|&i| remap.vertex(VertexId(i)) == Some(v))
                        .unwrap(),
                );
                assert_eq!(cs.is_vertex_ghost(v), shard.is_vertex_ghost(old));
            }
        }
        // per-shard stats still merge exactly into the global stats
        let parts: Vec<GraphStats> = shards
            .iter()
            .map(|s| GraphStats::compute(&s.compact_with(&remap)))
            .collect();
        assert_eq!(
            GraphStats::merge(parts.iter()).unwrap(),
            GraphStats::compute(&cg)
        );
    }

    #[test]
    #[should_panic(expected = "different slot count")]
    fn compact_with_foreign_remap_panics() {
        let g = toy();
        let (_, remap) = toy().remove_vertices([VertexId(0)]).compact();
        // same slot count here, so force the mismatch via an edit
        let mut ed = g.edit();
        ed.add_vertex("Job");
        ed.finish().compact_with(&remap);
    }
}
