//! Copy-on-write graph editing: append *and* retract without touching
//! the original.
//!
//! A [`GraphEditor`] starts from a frozen [`Graph`], stages any mix of
//! vertex/edge insertions and removals, and [`GraphEditor::finish`]es
//! into a new frozen graph with one CSR rebuild. The source graph —
//! and every snapshot sharing its `Arc`-backed payload — is never
//! mutated.
//!
//! Removal is **tombstoning**, not compaction: a removed vertex or
//! edge keeps its id slot (flagged dead, excluded from iteration and
//! adjacency) so ids stay stable across any sequence of edits. That
//! stability is what lets queued deltas, published snapshots, and
//! incremental view maintenance keep referring to `VertexId`s across
//! concurrent batches. Dead slots drop their property maps to reclaim
//! memory but keep their type symbol (diagnostics and view maintenance
//! still need to know what a dead vertex *was*).

use crate::graph::{EdgeId, Graph, GraphInner, VertexId};
use crate::value::{PropMap, Value};

/// A staged copy-on-write edit of a [`Graph`]; see the module docs.
///
/// ```
/// use kaskade_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let a = b.add_vertex("Job");
/// let f = b.add_vertex("File");
/// let e = b.add_edge(a, f, "WRITES_TO");
/// let g = b.finish();
///
/// let mut ed = g.edit();
/// ed.remove_edge(e);
/// let j2 = ed.add_vertex("Job");
/// ed.add_edge(f, j2, "IS_READ_BY");
/// let g2 = ed.finish();
/// assert_eq!(g.edge_count(), 1); // original untouched
/// assert_eq!(g2.edge_count(), 1); // one removed, one added
/// assert_eq!(g2.vertex_slots(), 3); // ids are stable, slots only grow
/// ```
#[derive(Debug)]
pub struct GraphEditor {
    // Fields are crate-visible so the merged-publish path
    // (`crate::merge`) can stage edits through the same structure and
    // freeze them with a *parallel* CSR assembly instead of
    // [`GraphEditor::finish`]'s serial counting sort.
    pub(crate) base: Graph,
    pub(crate) vtypes: Vec<crate::interner::Symbol>,
    pub(crate) vprops: Vec<PropMap>,
    pub(crate) srcs: Vec<VertexId>,
    pub(crate) dsts: Vec<VertexId>,
    pub(crate) etypes: Vec<crate::interner::Symbol>,
    pub(crate) eprops: Vec<PropMap>,
    pub(crate) vertex_dead: Vec<bool>,
    pub(crate) vertex_ghost: Vec<bool>,
    pub(crate) any_ghost: bool,
    pub(crate) edge_dead: Vec<bool>,
    pub(crate) interner: crate::interner::Interner,
}

impl Graph {
    /// Starts a copy-on-write edit session over this graph.
    pub fn edit(&self) -> GraphEditor {
        let inner = &*self.inner;
        let n = inner.vtypes.len();
        let m = inner.srcs.len();
        let mut vertex_dead = inner.vertex_dead.clone();
        vertex_dead.resize(n, false);
        let any_ghost = !inner.vertex_ghost.is_empty();
        let mut vertex_ghost = inner.vertex_ghost.clone();
        vertex_ghost.resize(n, false);
        let mut edge_dead = inner.edge_dead.clone();
        edge_dead.resize(m, false);
        GraphEditor {
            base: self.clone(),
            vtypes: inner.vtypes.clone(),
            vprops: inner.vprops.clone(),
            srcs: inner.srcs.clone(),
            dsts: inner.dsts.clone(),
            etypes: inner.etypes.clone(),
            eprops: inner.eprops.clone(),
            vertex_dead,
            vertex_ghost,
            any_ghost,
            edge_dead,
            interner: inner.interner.clone(),
        }
    }

    /// Returns a new graph with the given edges tombstoned. `self` and
    /// every clone sharing its payload are untouched; ids of surviving
    /// elements are unchanged. Each call clones the column data and
    /// rebuilds the CSR once (O(V+E)) — batch removals through a single
    /// [`Graph::edit`] session rather than looping over this.
    pub fn remove_edges(&self, edges: impl IntoIterator<Item = EdgeId>) -> Graph {
        let mut ed = self.edit();
        for e in edges {
            ed.remove_edge(e);
        }
        ed.finish()
    }

    /// Returns a new graph with the given vertices — and every edge
    /// incident to them — tombstoned. `self` is untouched; surviving
    /// ids are unchanged. Like [`Graph::remove_edges`], each call costs
    /// a full O(V+E) rebuild — batch through [`Graph::edit`].
    pub fn remove_vertices(&self, vertices: impl IntoIterator<Item = VertexId>) -> Graph {
        let mut ed = self.edit();
        for v in vertices {
            ed.remove_vertex(v);
        }
        ed.finish()
    }
}

impl GraphEditor {
    /// Appends a vertex of type `vtype`, returning its (stable) id.
    pub fn add_vertex(&mut self, vtype: &str) -> VertexId {
        let t = self.interner.intern(vtype);
        let id = VertexId(self.vtypes.len() as u32);
        self.vtypes.push(t);
        self.vprops.push(PropMap::new());
        self.vertex_dead.push(false);
        self.vertex_ghost.push(false);
        id
    }

    /// Appends a **ghost** vertex (a replica owned by another shard of a
    /// partitioned graph; see [`Graph::shard`]). Ghosts keep shard-local
    /// ids aligned with global ids but are excluded from statistics.
    pub fn add_ghost_vertex(&mut self, vtype: &str) -> VertexId {
        let id = self.add_vertex(vtype);
        self.vertex_ghost[id.index()] = true;
        self.any_ghost = true;
        id
    }

    /// Sets a property on a vertex (existing or just added).
    pub fn set_vertex_prop(&mut self, v: VertexId, key: &str, value: Value) {
        let k = self.interner.intern(key);
        self.vprops[v.index()].insert(k, value);
    }

    /// Appends a directed edge, returning its (stable) id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or dead.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, etype: &str) -> EdgeId {
        assert!(
            self.is_vertex_live(src),
            "edge source {src} is dead or out of range"
        );
        assert!(
            self.is_vertex_live(dst),
            "edge destination {dst} is dead or out of range"
        );
        let t = self.interner.intern(etype);
        let id = EdgeId(self.srcs.len() as u32);
        self.srcs.push(src);
        self.dsts.push(dst);
        self.etypes.push(t);
        self.eprops.push(PropMap::new());
        self.edge_dead.push(false);
        id
    }

    /// Sets a property on an edge (existing or just added).
    pub fn set_edge_prop(&mut self, e: EdgeId, key: &str, value: Value) {
        let k = self.interner.intern(key);
        self.eprops[e.index()].insert(k, value);
    }

    /// Whether `v` is currently live in this edit session.
    pub fn is_vertex_live(&self, v: VertexId) -> bool {
        v.index() < self.vtypes.len() && !self.vertex_dead[v.index()]
    }

    /// Whether `e` is currently live in this edit session.
    pub fn is_edge_live(&self, e: EdgeId) -> bool {
        e.index() < self.srcs.len() && !self.edge_dead[e.index()]
    }

    /// Number of vertex id slots (live or dead, staged adds included).
    pub fn vertex_slots(&self) -> usize {
        self.vtypes.len()
    }

    /// Number of edge id slots (live or dead, staged adds included).
    pub fn edge_slots(&self) -> usize {
        self.srcs.len()
    }

    /// Tombstones an edge. Returns `false` (and does nothing) if it was
    /// already dead or out of range.
    pub fn remove_edge(&mut self, e: EdgeId) -> bool {
        if !self.is_edge_live(e) {
            return false;
        }
        self.edge_dead[e.index()] = true;
        self.eprops[e.index()] = PropMap::new();
        true
    }

    /// Tombstones a vertex and every live edge incident to it — both
    /// edges of the base graph and edges staged in this session.
    /// Returns the removed incident edges as `(id, src, dst)` triples
    /// (empty if `v` was already dead or out of range).
    pub fn remove_vertex(&mut self, v: VertexId) -> Vec<(EdgeId, VertexId, VertexId)> {
        if !self.is_vertex_live(v) {
            return Vec::new();
        }
        let mut removed = Vec::new();
        // base-graph incidence comes from the old CSR; staged edges are
        // scanned directly (there are only as many as this edit added)
        let base_edges = self.base.edge_slots();
        if v.index() < self.base.vertex_slots() {
            let incident: Vec<EdgeId> = self
                .base
                .out_edges(v)
                .map(|(e, _)| e)
                .chain(self.base.in_edges(v).map(|(e, _)| e))
                .collect();
            for e in incident {
                if self.remove_edge(e) {
                    removed.push((e, self.srcs[e.index()], self.dsts[e.index()]));
                }
            }
        }
        for i in base_edges..self.srcs.len() {
            if !self.edge_dead[i] && (self.srcs[i] == v || self.dsts[i] == v) {
                let e = EdgeId(i as u32);
                self.remove_edge(e);
                removed.push((e, self.srcs[i], self.dsts[i]));
            }
        }
        self.vertex_dead[v.index()] = true;
        self.vprops[v.index()] = PropMap::new();
        removed
    }

    /// Freezes the edit into a new [`Graph`]: one CSR rebuild over the
    /// live edges. Dead slots are retained (ids stay stable) but carry
    /// no adjacency.
    pub fn finish(self) -> Graph {
        let n = self.vtypes.len();
        let m = self.srcs.len();
        let any_vertex_dead = self.vertex_dead.iter().any(|&d| d);
        let any_edge_dead = self.edge_dead.iter().any(|&d| d);

        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..m {
            if self.edge_dead[i] {
                continue;
            }
            out_offsets[self.srcs[i].index() + 1] += 1;
            in_offsets[self.dsts[i].index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let live_edges = out_offsets[n] as usize;
        let mut out_edges = vec![EdgeId(0); live_edges];
        let mut in_edges = vec![EdgeId(0); live_edges];
        // fill cursors are pure scratch: recycle them across rebuilds
        // instead of reallocating two O(V) buffers per publish
        let mut out_cursor = crate::scratch::take_u32(n + 1);
        out_cursor.extend_from_slice(&out_offsets);
        let mut in_cursor = crate::scratch::take_u32(n + 1);
        in_cursor.extend_from_slice(&in_offsets);
        for i in 0..m {
            if self.edge_dead[i] {
                continue;
            }
            let s = self.srcs[i].index();
            let d = self.dsts[i].index();
            out_edges[out_cursor[s] as usize] = EdgeId(i as u32);
            out_cursor[s] += 1;
            in_edges[in_cursor[d] as usize] = EdgeId(i as u32);
            in_cursor[d] += 1;
        }
        crate::scratch::give_u32(out_cursor);
        crate::scratch::give_u32(in_cursor);
        let live_vertices = n - self.vertex_dead.iter().filter(|&&d| d).count();
        let live_owned = (0..n)
            .filter(|&i| !self.vertex_dead[i] && !self.vertex_ghost[i])
            .count();

        Graph {
            inner: std::sync::Arc::new(GraphInner {
                interner: self.interner,
                vtypes: self.vtypes,
                vprops: self.vprops,
                srcs: self.srcs,
                dsts: self.dsts,
                etypes: self.etypes,
                eprops: self.eprops,
                vertex_dead: if any_vertex_dead {
                    self.vertex_dead
                } else {
                    Vec::new()
                },
                vertex_ghost: if self.any_ghost {
                    self.vertex_ghost
                } else {
                    Vec::new()
                },
                edge_dead: if any_edge_dead {
                    self.edge_dead
                } else {
                    Vec::new()
                },
                live_vertices,
                live_owned,
                live_edges,
                out_offsets,
                out_edges,
                in_offsets,
                in_edges,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// j0 -w-> f0 -r-> j1, plus a parallel j0 -w-> f0.
    fn toy() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j0, f0, "WRITES_TO");
        b.finish()
    }

    #[test]
    fn remove_edge_is_cow_and_id_stable() {
        let g = toy();
        let g2 = g.remove_edges([EdgeId(0)]);
        // original untouched
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_edge_live(EdgeId(0)));
        // new graph: slot retained, edge dead, adjacency excludes it
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.edge_slots(), 3);
        assert!(!g2.is_edge_live(EdgeId(0)));
        assert!(g2.is_edge_live(EdgeId(1)));
        assert_eq!(g2.out_degree(VertexId(0)), 1);
        assert_eq!(g2.in_degree(VertexId(1)), 1);
        // surviving ids resolve to the same endpoints
        assert_eq!(g2.edge_src(EdgeId(1)), g.edge_src(EdgeId(1)));
    }

    #[test]
    fn remove_vertex_cascades_to_incident_edges() {
        let g = toy();
        let g2 = g.remove_vertices([VertexId(1)]); // f0: all 3 edges touch it
        assert_eq!(g2.vertex_count(), 2);
        assert_eq!(g2.vertex_slots(), 3);
        assert_eq!(g2.edge_count(), 0);
        assert!(!g2.is_vertex_live(VertexId(1)));
        assert_eq!(g2.out_degree(VertexId(0)), 0);
        assert_eq!(g2.in_degree(VertexId(2)), 0);
        // type symbol of the dead slot is still resolvable
        assert_eq!(g2.vertex_type(VertexId(1)), "File");
        // iteration skips the dead slot
        let live: Vec<u32> = g2.vertices().map(|v| v.0).collect();
        assert_eq!(live, vec![0, 2]);
    }

    #[test]
    fn add_after_remove_reuses_no_slots() {
        let g = toy();
        let mut ed = g.edit();
        ed.remove_vertex(VertexId(2));
        let nv = ed.add_vertex("Job");
        assert_eq!(nv, VertexId(3)); // slots only grow
        let ne = ed.add_edge(VertexId(1), nv, "IS_READ_BY");
        ed.set_edge_prop(ne, "ts", Value::Int(9));
        let g2 = ed.finish();
        assert_eq!(g2.vertex_count(), 3);
        assert_eq!(g2.edge_count(), 3);
        assert_eq!(g2.edge_prop(ne, "ts"), Some(&Value::Int(9)));
        assert_eq!(g2.in_degree(nv), 1);
    }

    #[test]
    fn remove_vertex_kills_staged_edges_too() {
        let g = toy();
        let mut ed = g.edit();
        let nv = ed.add_vertex("File");
        ed.add_edge(VertexId(2), nv, "WRITES_TO");
        let removed = ed.remove_vertex(nv);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1, VertexId(2));
        let g2 = ed.finish();
        assert_eq!(g2.edge_count(), 3); // staged edge died with its vertex
        assert_eq!(g2.out_degree(VertexId(2)), 0);
    }

    #[test]
    fn remove_is_idempotent() {
        let g = toy();
        let mut ed = g.edit();
        assert!(ed.remove_edge(EdgeId(1)));
        assert!(!ed.remove_edge(EdgeId(1)));
        assert!(!ed.remove_edge(EdgeId(99)));
        assert!(ed.remove_vertex(VertexId(2)).is_empty()); // its edge is gone
        assert!(ed.remove_vertex(VertexId(2)).is_empty());
        let g2 = ed.finish();
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.vertex_count(), 2);
    }

    #[test]
    fn double_edit_round_trip() {
        // edit an already-tombstoned graph: flags carry forward
        let g = toy().remove_edges([EdgeId(2)]);
        let mut ed = g.edit();
        assert!(!ed.is_edge_live(EdgeId(2)));
        ed.remove_edge(EdgeId(0));
        let g2 = ed.finish();
        assert_eq!(g2.edge_count(), 1);
        assert!(g2.is_edge_live(EdgeId(1)));
    }

    #[test]
    #[should_panic(expected = "dead")]
    fn add_edge_to_dead_vertex_panics() {
        let g = toy();
        let mut ed = g.edit();
        ed.remove_vertex(VertexId(2));
        ed.add_edge(VertexId(0), VertexId(2), "WRITES_TO");
    }

    #[test]
    fn editor_preserves_and_adds_ghosts() {
        let g = toy().shard(&|v| v.0 == 0); // only j0 owned
        let mut ed = g.edit();
        let owned = ed.add_vertex("Job");
        let ghost = ed.add_ghost_vertex("File");
        ed.add_edge(owned, ghost, "WRITES_TO");
        let g2 = ed.finish();
        // pre-existing ghost flags carried through the edit
        assert!(g2.is_vertex_ghost(VertexId(1)));
        assert!(!g2.is_vertex_ghost(VertexId(0)));
        // staged vertices get the requested ghostliness
        assert!(!g2.is_vertex_ghost(owned));
        assert!(g2.is_vertex_ghost(ghost));
        assert_eq!(g2.owned_vertex_count(), 2); // j0 + the new Job
    }

    #[test]
    fn props_of_dead_elements_are_cleared() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("Job");
        let w = b.add_vertex("File");
        b.set_vertex_prop(v, "cpu", Value::Int(5));
        let e = b.add_edge(v, w, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(3));
        let g = b.finish();
        let g2 = g.remove_vertices([v]);
        assert_eq!(g2.vertex_props(v).len(), 0);
        assert_eq!(g2.edge_props(e).len(), 0);
        // original keeps its props
        assert_eq!(g.vertex_prop(v, "cpu"), Some(&Value::Int(5)));
    }
}
