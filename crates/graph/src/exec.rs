//! Pluggable parallel execution: the seam between graph-level
//! algorithms that *can* fan work out (CSR assembly, column clones)
//! and the runtime that decides *how* (a persistent worker pool in the
//! serving layer, scoped threads in batch tools, serial in tests).
//!
//! The contract is deliberately tiny — [`ParallelExec::run`] executes
//! `task(0)..task(n-1)`, in any order, on any threads, returning only
//! when every index has completed — so the trait stays object-safe and
//! implementations stay auditable. Panics in a task must propagate to
//! the caller of `run` (all three implementations here do, and the
//! serving runtime's `WorkerPool` does too).
//!
//! [`ScopedExec`] is the spawn-per-call fallback; every use bumps a
//! process-wide counter ([`thread_spawns`]) so tests can assert that a
//! steady-state serving path never falls back to spawning.

use std::sync::atomic::{AtomicU64, Ordering};

/// Executes `n` independent tasks, possibly in parallel.
///
/// `run` must invoke `task(i)` exactly once for every `i in 0..n` and
/// return only after all invocations have completed. A panic in any
/// task must propagate to the caller.
pub trait ParallelExec: Sync {
    /// Runs `task(0)..task(n-1)` to completion.
    fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync));

    /// How many tasks can make progress at once — the chunk-count hint
    /// for range-parallel algorithms. Defaults to the machine's
    /// available parallelism.
    fn parallelism(&self) -> usize {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }
}

/// Runs every task inline on the calling thread, in index order.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialExec;

impl ParallelExec for SerialExec {
    fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            task(i);
        }
    }

    fn parallelism(&self) -> usize {
        1
    }
}

/// Process-wide count of threads spawned by [`ScopedExec`] — the
/// "did anything fall back to spawning?" test hook.
static SCOPED_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Threads spawned by [`ScopedExec`] since process start. Serving
/// runtimes route all steady-state parallelism through a persistent
/// pool; tests assert this counter stays flat while serving.
pub fn thread_spawns() -> u64 {
    SCOPED_SPAWNS.load(Ordering::Relaxed)
}

/// Spawns one scoped thread per task — the fallback when no persistent
/// pool is available. Counted by [`thread_spawns`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ScopedExec;

impl ParallelExec for ScopedExec {
    fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        match n {
            0 => {}
            1 => task(0),
            _ => {
                SCOPED_SPAWNS.fetch_add(n as u64 - 1, Ordering::Relaxed);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (1..n).map(|i| scope.spawn(move || task(i))).collect();
                    let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(0)));
                    // surface the original payload, not scope()'s
                    // generic "a scoped thread panicked"
                    let mut payload = caller.err();
                    for handle in handles {
                        if let Err(p) = handle.join() {
                            payload.get_or_insert(p);
                        }
                    }
                    if let Some(p) = payload {
                        std::panic::resume_unwind(p);
                    }
                });
            }
        }
    }
}

/// Splits `len` items into at most `parts` contiguous ranges of
/// near-equal size (never empty unless `len == 0`). The unit of work
/// distribution for range-parallel graph algorithms: each range maps
/// to one [`ParallelExec::run`] index.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A `*mut T` window over a slice that lets multiple workers write
/// **disjoint** regions concurrently (CSR fill, column scatter).
///
/// # Safety contract
/// Callers must guarantee that no two concurrent `write`/`slice_mut`
/// calls touch overlapping indices and that the underlying slice
/// outlives every use. Both fill loops in this crate derive their
/// regions from exclusive prefix sums, which partition the index space
/// by construction.
pub(crate) struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

// Safety: see the struct docs — disjointness is the caller's contract.
unsafe impl<T: Send> Sync for SharedSlice<T> {}
unsafe impl<T: Send> Send for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    pub(crate) fn new(slice: &mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and not concurrently accessed.
    #[inline]
    pub(crate) unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_scoped_cover_every_index() {
        for exec in [&SerialExec as &dyn ParallelExec, &ScopedExec] {
            for n in [0usize, 1, 2, 7] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                exec.run(n, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        }
    }

    #[test]
    fn scoped_exec_counts_spawns() {
        let before = thread_spawns();
        ScopedExec.run(4, &|_| {});
        assert_eq!(thread_spawns() - before, 3);
        // n <= 1 never spawns
        let before = thread_spawns();
        ScopedExec.run(1, &|_| {});
        ScopedExec.run(0, &|_| {});
        assert_eq!(thread_spawns(), before);
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn scoped_exec_propagates_panics() {
        ScopedExec.run(3, &|i| {
            if i == 2 {
                panic!("task boom");
            }
        });
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (len, parts) in [(0usize, 3usize), (1, 4), (10, 3), (10, 1), (7, 7), (3, 8)] {
            let ranges = chunk_ranges(len, parts);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, len);
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn shared_slice_disjoint_writes_land() {
        let mut data = vec![0u32; 64];
        let shared = SharedSlice::new(&mut data);
        ScopedExec.run(4, &|w| {
            for i in (w * 16)..(w * 16 + 16) {
                // Safety: each worker owns a disjoint 16-element range.
                unsafe { shared.write(i, i as u32) };
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
