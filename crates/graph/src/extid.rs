//! Stable external vertex ids.
//!
//! Slot ids ([`VertexId`]) are the engine's internal currency: dense,
//! cache-friendly — and *unstable*, because compaction renumbers them.
//! The serving layer bounds how much renumbering history it retains
//! (`MAX_REMAP_HISTORY`), so a client holding slot ids across too many
//! compactions used to see its deltas hard-rejected. An
//! [`ExternalIdTable`] removes that cliff: clients mint permanent
//! `u64` keys for the vertices they care about, the table maps each
//! key to the current slot, and compaction *remaps the table* (via the
//! same [`IdRemap`] the graph uses) instead of invalidating the keys.
//! The table is serialized into every checkpoint, so external ids
//! survive restarts too.

use std::collections::BTreeMap;

use crate::codec::{CodecError, Dec, Enc};
use crate::compact::IdRemap;
use crate::graph::VertexId;

/// A bidirectional `external key -> vertex slot` map, compaction-aware
/// and checkpoint-persisted.
///
/// Both directions are kept: `forward` resolves client keys to slots,
/// `reverse` lets vertex deletion retire the key of the deleted slot.
/// `BTreeMap`s keep iteration (and therefore the encoded form)
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExternalIdTable {
    forward: BTreeMap<u64, VertexId>,
    reverse: BTreeMap<u32, u64>,
}

impl ExternalIdTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped external ids.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether no external ids are mapped.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The current slot of external id `ext`, if mapped.
    pub fn get(&self, ext: u64) -> Option<VertexId> {
        self.forward.get(&ext).copied()
    }

    /// The external id bound to slot `v`, if any.
    pub fn ext_of(&self, v: VertexId) -> Option<u64> {
        self.reverse.get(&v.0).copied()
    }

    /// Binds `ext` to `v`. Fails if either side is already bound —
    /// external ids are permanent names, not aliases, so the mapping
    /// must stay a bijection.
    pub fn insert(&mut self, ext: u64, v: VertexId) -> Result<(), ExternalIdError> {
        if self.forward.contains_key(&ext) {
            return Err(ExternalIdError::DuplicateExternal(ext));
        }
        if self.reverse.contains_key(&v.0) {
            return Err(ExternalIdError::SlotAlreadyNamed(v));
        }
        self.forward.insert(ext, v);
        self.reverse.insert(v.0, ext);
        Ok(())
    }

    /// Unbinds the external id attached to slot `v` (used when the
    /// vertex is deleted). No-op if the slot had no external id.
    pub fn remove_slot(&mut self, v: VertexId) {
        if let Some(ext) = self.reverse.remove(&v.0) {
            self.forward.remove(&ext);
        }
    }

    /// Rewrites every slot through a compaction `remap`. Entries whose
    /// slot was dropped (the vertex was dead at compaction time) are
    /// retired; every live binding follows its vertex to the new slot.
    pub fn remap(&mut self, remap: &IdRemap) {
        let old = std::mem::take(&mut self.forward);
        self.reverse.clear();
        for (ext, v) in old {
            if let Some(nv) = remap.vertex(v) {
                self.forward.insert(ext, nv);
                self.reverse.insert(nv.0, ext);
            }
        }
    }

    /// Iterates `(external id, slot)` pairs in external-id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, VertexId)> + '_ {
        self.forward.iter().map(|(&e, &v)| (e, v))
    }

    /// Appends the table to `out` (deterministic: external-id order).
    pub fn encode(&self, out: &mut Enc) {
        out.usize(self.forward.len());
        for (&ext, &v) in &self.forward {
            out.u64(ext);
            out.u32(v.0);
        }
    }

    /// Decodes a table previously written by [`ExternalIdTable::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, CodecError> {
        let n = d.count()?;
        let mut t = ExternalIdTable::new();
        for _ in 0..n {
            let ext = d.u64()?;
            let v = VertexId(d.u32()?);
            t.insert(ext, v)
                .map_err(|_| CodecError::Corrupt("external-id table is not a bijection"))?;
        }
        Ok(t)
    }
}

/// Why an external-id binding was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExternalIdError {
    /// The external id is already bound to a live vertex.
    DuplicateExternal(u64),
    /// The slot already carries a different external id.
    SlotAlreadyNamed(VertexId),
}

impl std::fmt::Display for ExternalIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExternalIdError::DuplicateExternal(e) => {
                write!(f, "external id {e} is already bound")
            }
            ExternalIdError::SlotAlreadyNamed(v) => {
                write!(f, "vertex slot {} already has an external id", v.0)
            }
        }
    }
}

impl std::error::Error for ExternalIdError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn insert_lookup_remove() {
        let mut t = ExternalIdTable::new();
        t.insert(100, VertexId(0)).unwrap();
        t.insert(200, VertexId(3)).unwrap();
        assert_eq!(t.get(100), Some(VertexId(0)));
        assert_eq!(t.ext_of(VertexId(3)), Some(200));
        assert_eq!(t.get(999), None);
        assert_eq!(
            t.insert(100, VertexId(7)),
            Err(ExternalIdError::DuplicateExternal(100))
        );
        assert_eq!(
            t.insert(300, VertexId(0)),
            Err(ExternalIdError::SlotAlreadyNamed(VertexId(0)))
        );
        t.remove_slot(VertexId(0));
        assert_eq!(t.get(100), None);
        assert_eq!(t.len(), 1);
        // removing an unnamed slot is a no-op
        t.remove_slot(VertexId(9));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remap_follows_compaction() {
        // graph: v0 v1 v2; kill v1 and compact → v2 becomes slot 1
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex("Job");
        let v1 = b.add_vertex("Job");
        let v2 = b.add_vertex("Job");
        let g = b.finish().remove_vertices([v1]);
        let (_, remap) = g.compact();

        let mut t = ExternalIdTable::new();
        t.insert(10, v0).unwrap();
        t.insert(11, v1).unwrap(); // dead at compaction time
        t.insert(12, v2).unwrap();
        t.remap(&remap);
        assert_eq!(t.get(10), Some(VertexId(0)));
        assert_eq!(t.get(11), None); // retired with its vertex
        assert_eq!(t.get(12), Some(VertexId(1)));
        assert_eq!(t.ext_of(VertexId(1)), Some(12));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = ExternalIdTable::new();
        t.insert(u64::MAX, VertexId(5)).unwrap();
        t.insert(0, VertexId(2)).unwrap();
        t.insert(42, VertexId(9)).unwrap();
        let mut e = Enc::new();
        t.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = ExternalIdTable::decode(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back, t);
        // a non-bijective encoding is rejected
        let mut e = Enc::new();
        e.usize(2);
        e.u64(1);
        e.u32(4);
        e.u64(2);
        e.u32(4); // slot 4 named twice
        let bytes = e.into_bytes();
        assert!(ExternalIdTable::decode(&mut Dec::new(&bytes)).is_err());
    }
}
