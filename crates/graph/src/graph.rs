//! The in-memory property graph: mutable builder + immutable CSR form.
//!
//! Graphs are constructed through [`GraphBuilder`] (arbitrary insertion
//! order) and then frozen into a [`Graph`], which stores adjacency in
//! compressed sparse row (CSR) form — one offsets array plus one packed
//! neighbor array for each direction. All query-time structures in the
//! workspace (pattern matching, traversals, view materialization) operate
//! on the frozen form; views are separate `Graph`s, never in-place edits.

use std::fmt;

use crate::interner::{Interner, Symbol};
use crate::schema::Schema;
use crate::value::{PropMap, Value};

/// Dense vertex identifier (index into the vertex arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Dense edge identifier (index into the edge arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A mutable graph under construction.
///
/// ```
/// use kaskade_graph::{GraphBuilder, Value};
/// let mut b = GraphBuilder::new();
/// let j = b.add_vertex("Job");
/// let f = b.add_vertex("File");
/// b.set_vertex_prop(j, "cpu", Value::Int(12));
/// b.add_edge(j, f, "WRITES_TO");
/// let g = b.finish();
/// assert_eq!(g.vertex_count(), 2);
/// assert_eq!(g.out_degree(j), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    interner: Interner,
    vtypes: Vec<Symbol>,
    vprops: Vec<PropMap>,
    vghost: Vec<bool>,
    any_ghost: bool,
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    etypes: Vec<Symbol>,
    eprops: Vec<PropMap>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates for roughly `v` vertices and `e` edges.
    pub fn with_capacity(v: usize, e: usize) -> Self {
        let mut b = Self::new();
        b.vtypes.reserve(v);
        b.vprops.reserve(v);
        b.srcs.reserve(e);
        b.dsts.reserve(e);
        b.etypes.reserve(e);
        b.eprops.reserve(e);
        b
    }

    /// Adds a vertex of type `vtype` and returns its id.
    pub fn add_vertex(&mut self, vtype: &str) -> VertexId {
        let t = self.interner.intern(vtype);
        let id = VertexId(self.vtypes.len() as u32);
        self.vtypes.push(t);
        self.vprops.push(PropMap::new());
        self.vghost.push(false);
        id
    }

    /// Adds a **ghost** vertex: a replica of a vertex whose owner is
    /// another shard of a partitioned graph. Ghosts occupy an id slot
    /// (keeping shard-local ids aligned with global ids) and carry type
    /// and properties like any vertex, but are skipped by statistics
    /// ([`crate::GraphStats::compute`]) so a vertex replicated across
    /// shards is counted exactly once — on its owner. See
    /// [`Graph::shard`].
    pub fn add_ghost_vertex(&mut self, vtype: &str) -> VertexId {
        let id = self.add_vertex(vtype);
        self.vghost[id.index()] = true;
        self.any_ghost = true;
        id
    }

    /// Sets a property on an existing vertex.
    pub fn set_vertex_prop(&mut self, v: VertexId, key: &str, value: Value) {
        let k = self.interner.intern(key);
        self.vprops[v.index()].insert(k, value);
    }

    /// Adds a directed edge `src -[:etype]-> dst` and returns its id.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, etype: &str) -> EdgeId {
        debug_assert!(src.index() < self.vtypes.len(), "src out of range");
        debug_assert!(dst.index() < self.vtypes.len(), "dst out of range");
        let t = self.interner.intern(etype);
        let id = EdgeId(self.srcs.len() as u32);
        self.srcs.push(src);
        self.dsts.push(dst);
        self.etypes.push(t);
        self.eprops.push(PropMap::new());
        id
    }

    /// Sets a property on an existing edge.
    pub fn set_edge_prop(&mut self, e: EdgeId, key: &str, value: Value) {
        let k = self.interner.intern(key);
        self.eprops[e.index()].insert(k, value);
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vtypes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.srcs.len()
    }

    /// Validates every edge against `schema`, returning the first violation.
    pub fn validate(&self, schema: &Schema) -> Result<(), crate::schema::SchemaError> {
        for i in 0..self.srcs.len() {
            let s = self.interner.resolve(self.vtypes[self.srcs[i].index()]);
            let d = self.interner.resolve(self.vtypes[self.dsts[i].index()]);
            let e = self.interner.resolve(self.etypes[i]);
            schema.check_edge(s, e, d)?;
        }
        Ok(())
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    pub fn finish(self) -> Graph {
        let n = self.vtypes.len();
        let m = self.srcs.len();

        // Counting sort of edges by source (out-CSR) and by dest (in-CSR).
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..m {
            out_offsets[self.srcs[i].index() + 1] += 1;
            in_offsets[self.dsts[i].index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_edges = vec![EdgeId(0); m];
        let mut in_edges = vec![EdgeId(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for i in 0..m {
            let s = self.srcs[i].index();
            let d = self.dsts[i].index();
            out_edges[out_cursor[s] as usize] = EdgeId(i as u32);
            out_cursor[s] += 1;
            in_edges[in_cursor[d] as usize] = EdgeId(i as u32);
            in_cursor[d] += 1;
        }

        let owned_vertices = n - self.vghost.iter().filter(|&&g| g).count();
        Graph {
            inner: std::sync::Arc::new(GraphInner {
                interner: self.interner,
                vtypes: self.vtypes,
                vprops: self.vprops,
                srcs: self.srcs,
                dsts: self.dsts,
                etypes: self.etypes,
                eprops: self.eprops,
                vertex_dead: Vec::new(),
                vertex_ghost: if self.any_ghost {
                    self.vghost
                } else {
                    Vec::new()
                },
                edge_dead: Vec::new(),
                live_vertices: n,
                live_owned: owned_vertices,
                live_edges: m,
                out_offsets,
                out_edges,
                in_offsets,
                in_edges,
            }),
        }
    }
}

/// An immutable property graph in CSR form.
///
/// All adjacency queries are O(degree); type and property lookups are O(1)
/// array reads (plus a binary search within the small per-object property
/// list).
///
/// The frozen payload lives behind an [`std::sync::Arc`], so `Graph::clone` is O(1)
/// and clones share storage: snapshots, materialized views, and serving
/// runtimes can hand out copies freely without duplicating the CSR
/// arrays. A `Graph` is never mutated after [`GraphBuilder::finish`];
/// "updates" build a new graph (see `kaskade-core`'s delta maintenance).
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) inner: std::sync::Arc<GraphInner>,
}

/// The frozen CSR payload shared by all clones of a [`Graph`].
///
/// Deletion support works by **tombstoning**: removed vertices and
/// edges keep their id slot (so `VertexId`/`EdgeId` handed out earlier
/// stay valid forever — snapshots, queued deltas, and incremental view
/// maintenance all rely on id stability) but are flagged dead, skipped
/// by every iterator, and excluded from the adjacency arrays. An empty
/// `vertex_dead`/`edge_dead` vector means "nothing dead" (the common,
/// freshly built case).
#[derive(Debug, Clone)]
pub(crate) struct GraphInner {
    pub(crate) interner: Interner,
    pub(crate) vtypes: Vec<Symbol>,
    pub(crate) vprops: Vec<PropMap>,
    pub(crate) srcs: Vec<VertexId>,
    pub(crate) dsts: Vec<VertexId>,
    pub(crate) etypes: Vec<Symbol>,
    pub(crate) eprops: Vec<PropMap>,
    pub(crate) vertex_dead: Vec<bool>,
    /// Ghost flags (empty = no ghosts): a ghost is a shard-local
    /// replica of a vertex owned by another shard. Ghosts behave like
    /// regular vertices everywhere except statistics, which count only
    /// owned vertices so per-shard stats merge exactly into global
    /// stats. The flag is immutable for the life of the slot.
    pub(crate) vertex_ghost: Vec<bool>,
    pub(crate) edge_dead: Vec<bool>,
    pub(crate) live_vertices: usize,
    /// Live vertices that are not ghosts.
    pub(crate) live_owned: usize,
    pub(crate) live_edges: usize,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_edges: Vec<EdgeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_edges: Vec<EdgeId>,
}

impl GraphInner {
    #[inline]
    pub(crate) fn vertex_is_live(&self, i: usize) -> bool {
        self.vertex_dead.is_empty() || !self.vertex_dead[i]
    }

    #[inline]
    pub(crate) fn edge_is_live(&self, i: usize) -> bool {
        self.edge_dead.is_empty() || !self.edge_dead[i]
    }

    #[inline]
    pub(crate) fn vertex_is_ghost(&self, i: usize) -> bool {
        !self.vertex_ghost.is_empty() && self.vertex_ghost[i]
    }
}

impl Graph {
    /// Number of **live** vertices (tombstoned vertices excluded).
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.inner.live_vertices
    }

    /// Number of **live** edges (tombstoned edges excluded).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.inner.live_edges
    }

    /// Number of vertex id slots, live or dead. Every `VertexId` ever
    /// issued for this graph is `< vertex_slots()`; use this (not
    /// [`Graph::vertex_count`]) to size id-indexed arrays.
    #[inline]
    pub fn vertex_slots(&self) -> usize {
        self.inner.vtypes.len()
    }

    /// Number of edge id slots, live or dead (the edge analogue of
    /// [`Graph::vertex_slots`]).
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.inner.srcs.len()
    }

    /// Whether `v` is live (not tombstoned). Ids at or past
    /// [`Graph::vertex_slots`] are reported dead.
    #[inline]
    pub fn is_vertex_live(&self, v: VertexId) -> bool {
        v.index() < self.inner.vtypes.len() && self.inner.vertex_is_live(v.index())
    }

    /// Whether `e` is live (not tombstoned).
    #[inline]
    pub fn is_edge_live(&self, e: EdgeId) -> bool {
        e.index() < self.inner.srcs.len() && self.inner.edge_is_live(e.index())
    }

    /// Whether `v` is a **ghost**: a shard-local replica of a vertex
    /// owned by another shard (see [`Graph::shard`]). Always `false`
    /// on unpartitioned graphs.
    #[inline]
    pub fn is_vertex_ghost(&self, v: VertexId) -> bool {
        v.index() < self.inner.vtypes.len() && self.inner.vertex_is_ghost(v.index())
    }

    /// Number of live **owned** (non-ghost) vertices. Equal to
    /// [`Graph::vertex_count`] on unpartitioned graphs; on a shard,
    /// this is the shard's share of the global vertex count —
    /// per-shard statistics use it so shard stats merge exactly into
    /// global stats.
    #[inline]
    pub fn owned_vertex_count(&self) -> usize {
        self.inner.live_owned
    }

    /// Extracts one shard of this graph under the given ownership
    /// predicate: **every vertex slot is retained** with its id, type,
    /// properties, and liveness (so shard-local ids equal global ids and
    /// deltas route without translation), but non-owned slots are marked
    /// ghost; **edges are partitioned** — the shard keeps exactly the
    /// live edges whose *source* vertex it owns (so each edge lives on
    /// one shard and cross-shard edges point at ghost endpoints).
    /// Relative edge order is preserved, which keeps identity-targeted
    /// LIFO retraction agreeing with the unsharded graph.
    pub fn shard(&self, owned: &dyn Fn(VertexId) -> bool) -> Graph {
        let inner = &*self.inner;
        let n = inner.vtypes.len();
        let mut vertex_ghost = vec![false; n];
        let mut any_ghost = false;
        let mut live_owned = 0usize;
        for (i, ghost) in vertex_ghost.iter_mut().enumerate() {
            if owned(VertexId(i as u32)) {
                if inner.vertex_is_live(i) {
                    live_owned += 1;
                }
            } else {
                *ghost = true;
                any_ghost = true;
            }
        }
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut etypes = Vec::new();
        let mut eprops = Vec::new();
        for e in self.edges() {
            let s = inner.srcs[e.index()];
            if vertex_ghost[s.index()] {
                continue;
            }
            srcs.push(s);
            dsts.push(inner.dsts[e.index()]);
            etypes.push(inner.etypes[e.index()]);
            eprops.push(inner.eprops[e.index()].clone());
        }
        let m = srcs.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..m {
            out_offsets[srcs[i].index() + 1] += 1;
            in_offsets[dsts[i].index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_edges = vec![EdgeId(0); m];
        let mut in_edges = vec![EdgeId(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for i in 0..m {
            let s = srcs[i].index();
            let d = dsts[i].index();
            out_edges[out_cursor[s] as usize] = EdgeId(i as u32);
            out_cursor[s] += 1;
            in_edges[in_cursor[d] as usize] = EdgeId(i as u32);
            in_cursor[d] += 1;
        }
        Graph {
            inner: std::sync::Arc::new(GraphInner {
                interner: inner.interner.clone(),
                vtypes: inner.vtypes.clone(),
                vprops: inner.vprops.clone(),
                srcs,
                dsts,
                etypes,
                eprops,
                vertex_dead: inner.vertex_dead.clone(),
                vertex_ghost: if any_ghost { vertex_ghost } else { Vec::new() },
                edge_dead: Vec::new(),
                live_vertices: inner.live_vertices,
                live_owned,
                live_edges: m,
                out_offsets,
                out_edges,
                in_offsets,
                in_edges,
            }),
        }
    }

    /// Iterator over all live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.inner.vtypes.len() as u32)
            .map(VertexId)
            .filter(|v| self.inner.vertex_is_live(v.index()))
    }

    /// Iterator over all live edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.inner.srcs.len() as u32)
            .map(EdgeId)
            .filter(|e| self.inner.edge_is_live(e.index()))
    }

    /// The interned type symbol of `v`.
    #[inline]
    pub fn vertex_type_sym(&self, v: VertexId) -> Symbol {
        self.inner.vtypes[v.index()]
    }

    /// The type name of `v`.
    #[inline]
    pub fn vertex_type(&self, v: VertexId) -> &str {
        self.inner.interner.resolve(self.inner.vtypes[v.index()])
    }

    /// The interned type symbol of `e`.
    #[inline]
    pub fn edge_type_sym(&self, e: EdgeId) -> Symbol {
        self.inner.etypes[e.index()]
    }

    /// The type name of `e`.
    #[inline]
    pub fn edge_type(&self, e: EdgeId) -> &str {
        self.inner.interner.resolve(self.inner.etypes[e.index()])
    }

    /// Source vertex of `e`.
    #[inline]
    pub fn edge_src(&self, e: EdgeId) -> VertexId {
        self.inner.srcs[e.index()]
    }

    /// Destination vertex of `e`.
    #[inline]
    pub fn edge_dst(&self, e: EdgeId) -> VertexId {
        self.inner.dsts[e.index()]
    }

    /// Looks up the symbol for a type/property name if it occurs anywhere
    /// in this graph.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.inner.interner.get(name)
    }

    /// Resolves an interned symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.inner.interner.resolve(sym)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.inner.out_offsets[v.index() + 1] - self.inner.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.inner.in_offsets[v.index() + 1] - self.inner.in_offsets[v.index()]) as usize
    }

    /// Outgoing edges of `v` as `(edge, dst)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, VertexId)> + '_ {
        let lo = self.inner.out_offsets[v.index()] as usize;
        let hi = self.inner.out_offsets[v.index() + 1] as usize;
        self.inner.out_edges[lo..hi]
            .iter()
            .map(|&e| (e, self.inner.dsts[e.index()]))
    }

    /// Incoming edges of `v` as `(edge, src)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, VertexId)> + '_ {
        let lo = self.inner.in_offsets[v.index()] as usize;
        let hi = self.inner.in_offsets[v.index() + 1] as usize;
        self.inner.in_edges[lo..hi]
            .iter()
            .map(|&e| (e, self.inner.srcs[e.index()]))
    }

    /// Out-neighbors of `v` (may repeat under parallel edges).
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_edges(v).map(|(_, d)| d)
    }

    /// In-neighbors of `v` (may repeat under parallel edges).
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_edges(v).map(|(_, s)| s)
    }

    /// A vertex property, by key name.
    pub fn vertex_prop(&self, v: VertexId, key: &str) -> Option<&Value> {
        let k = self.inner.interner.get(key)?;
        self.inner.vprops[v.index()].get(k)
    }

    /// A vertex property, by interned key.
    #[inline]
    pub fn vertex_prop_sym(&self, v: VertexId, key: Symbol) -> Option<&Value> {
        self.inner.vprops[v.index()].get(key)
    }

    /// An edge property, by key name.
    pub fn edge_prop(&self, e: EdgeId, key: &str) -> Option<&Value> {
        let k = self.inner.interner.get(key)?;
        self.inner.eprops[e.index()].get(k)
    }

    /// An edge property, by interned key.
    #[inline]
    pub fn edge_prop_sym(&self, e: EdgeId, key: Symbol) -> Option<&Value> {
        self.inner.eprops[e.index()].get(key)
    }

    /// All properties of a vertex.
    pub fn vertex_props(&self, v: VertexId) -> &PropMap {
        &self.inner.vprops[v.index()]
    }

    /// All properties of an edge.
    pub fn edge_props(&self, e: EdgeId) -> &PropMap {
        &self.inner.eprops[e.index()]
    }

    /// Iterator over vertices of the given type name. Empty if the type
    /// does not occur.
    pub fn vertices_of_type<'a>(&'a self, vtype: &str) -> Box<dyn Iterator<Item = VertexId> + 'a> {
        match self.inner.interner.get(vtype) {
            Some(sym) => Box::new(
                self.vertices()
                    .filter(move |v| self.inner.vtypes[v.index()] == sym),
            ),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Count of vertices per type name, sorted by name.
    pub fn vertex_type_counts(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for v in self.vertices() {
            *counts.entry(self.vertex_type(v)).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(k, c)| (k.to_string(), c))
            .collect()
    }

    /// Count of edges per type name, sorted by name.
    pub fn edge_type_counts(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for e in self.edges() {
            *counts.entry(self.edge_type(e)).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(k, c)| (k.to_string(), c))
            .collect()
    }

    /// Derives the schema implied by this graph's edges (one rule per
    /// distinct (src type, edge type, dst type) triple).
    pub fn infer_schema(&self) -> Schema {
        let mut s = Schema::new();
        for v in self.vertices() {
            s.add_vertex_type(self.vertex_type(v));
        }
        for e in self.edges() {
            let src = self.vertex_type(self.edge_src(e));
            let dst = self.vertex_type(self.edge_dst(e));
            s.add_edge_rule(src, self.edge_type(e), dst);
        }
        s
    }

    /// Builds a new graph containing only the first `m` edges (insertion
    /// order) and the vertices incident to them. Used by the Fig. 5
    /// "first n edges" prefix experiments.
    pub fn edge_prefix(&self, m: usize) -> Graph {
        let m = m.min(self.edge_count());
        let prefix: Vec<EdgeId> = self.edges().take(m).collect();
        let mut keep = vec![false; self.vertex_slots()];
        for &e in &prefix {
            keep[self.inner.srcs[e.index()].index()] = true;
            keep[self.inner.dsts[e.index()].index()] = true;
        }
        let mut b = GraphBuilder::new();
        let mut remap = vec![VertexId(u32::MAX); self.vertex_slots()];
        for v in self.vertices() {
            if keep[v.index()] {
                let nv = b.add_vertex(self.vertex_type(v));
                for (k, val) in self.inner.vprops[v.index()].iter() {
                    b.set_vertex_prop(nv, self.inner.interner.resolve(k), val.clone());
                }
                remap[v.index()] = nv;
            }
        }
        for &e in &prefix {
            let ne = b.add_edge(
                remap[self.inner.srcs[e.index()].index()],
                remap[self.inner.dsts[e.index()].index()],
                self.edge_type(e),
            );
            for (k, val) in self.inner.eprops[e.index()].iter() {
                b.set_edge_prop(ne, self.inner.interner.resolve(k), val.clone());
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineage_toy() -> Graph {
        // j1 -w-> f1 -r-> j2 ; j1 -w-> f2 -r-> j3 (Fig. 3(a) shape)
        let mut b = GraphBuilder::new();
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        let f2 = b.add_vertex("File");
        let j3 = b.add_vertex("Job");
        b.add_edge(j1, f1, "WRITES_TO");
        b.add_edge(f1, j2, "IS_READ_BY");
        b.add_edge(j1, f2, "WRITES_TO");
        b.add_edge(f2, j3, "IS_READ_BY");
        b.finish()
    }

    #[test]
    fn counts_and_types() {
        let g = lineage_toy();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.vertex_type(VertexId(0)), "Job");
        assert_eq!(g.vertex_type(VertexId(1)), "File");
        assert_eq!(g.edge_type(EdgeId(0)), "WRITES_TO");
    }

    #[test]
    fn adjacency_out_and_in() {
        let g = lineage_toy();
        let j1 = VertexId(0);
        assert_eq!(g.out_degree(j1), 2);
        assert_eq!(g.in_degree(j1), 0);
        let outs: Vec<u32> = g.out_neighbors(j1).map(|v| v.0).collect();
        assert_eq!(outs, vec![1, 3]);
        let f1 = VertexId(1);
        let ins: Vec<u32> = g.in_neighbors(f1).map(|v| v.0).collect();
        assert_eq!(ins, vec![0]);
    }

    #[test]
    fn properties_roundtrip() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("Job");
        b.set_vertex_prop(v, "cpu", Value::Int(42));
        b.set_vertex_prop(v, "name", Value::Str("etl".into()));
        let w = b.add_vertex("File");
        let e = b.add_edge(v, w, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(99));
        let g = b.finish();
        assert_eq!(g.vertex_prop(v, "cpu"), Some(&Value::Int(42)));
        assert_eq!(g.vertex_prop(v, "name"), Some(&Value::Str("etl".into())));
        assert_eq!(g.vertex_prop(v, "missing"), None);
        assert_eq!(g.edge_prop(e, "ts"), Some(&Value::Int(99)));
        assert_eq!(g.vertex_prop(w, "cpu"), None);
    }

    #[test]
    fn vertices_of_type_filters() {
        let g = lineage_toy();
        assert_eq!(g.vertices_of_type("Job").count(), 3);
        assert_eq!(g.vertices_of_type("File").count(), 2);
        assert_eq!(g.vertices_of_type("Task").count(), 0);
    }

    #[test]
    fn type_counts() {
        let g = lineage_toy();
        assert_eq!(
            g.vertex_type_counts(),
            vec![("File".to_string(), 2), ("Job".to_string(), 3)]
        );
        assert_eq!(
            g.edge_type_counts(),
            vec![("IS_READ_BY".to_string(), 2), ("WRITES_TO".to_string(), 2)]
        );
    }

    #[test]
    fn infer_schema_matches_provenance() {
        let g = lineage_toy();
        let s = g.infer_schema();
        assert!(s.allows_edge("Job", "WRITES_TO", "File"));
        assert!(s.allows_edge("File", "IS_READ_BY", "Job"));
        assert!(!s.allows_edge("Job", "IS_READ_BY", "File"));
    }

    #[test]
    fn builder_validate_against_schema() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let f = b.add_vertex("File");
        b.add_edge(f, j, "WRITES_TO"); // wrong direction
        assert!(b.validate(&Schema::provenance()).is_err());
    }

    #[test]
    fn edge_prefix_keeps_incident_vertices() {
        let g = lineage_toy();
        let p = g.edge_prefix(2);
        assert_eq!(p.edge_count(), 2);
        // first two edges touch j1, f1, j2
        assert_eq!(p.vertex_count(), 3);
        // prefix larger than graph is the whole graph
        let q = g.edge_prefix(100);
        assert_eq!(q.edge_count(), 4);
        assert_eq!(q.vertex_count(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().finish();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn clone_shares_storage() {
        // O(1) clone: both handles point at the same frozen payload.
        let g = lineage_toy();
        let h = g.clone();
        assert!(std::sync::Arc::ptr_eq(&g.inner, &h.inner));
        assert_eq!(h.vertex_count(), g.vertex_count());
    }

    #[test]
    fn shard_partitions_edges_by_source_owner() {
        let g = lineage_toy(); // 5 vertices, 4 edges
        let owner = |v: VertexId| v.0 % 2; // shard 0: v0,v2,v4; shard 1: v1,v3
        let s0 = g.shard(&|v| owner(v) == 0);
        let s1 = g.shard(&|v| owner(v) == 1);
        // every slot retained on every shard, ids aligned
        for s in [&s0, &s1] {
            assert_eq!(s.vertex_slots(), g.vertex_slots());
            assert_eq!(s.vertex_count(), g.vertex_count());
            for v in g.vertices() {
                assert_eq!(s.vertex_type(v), g.vertex_type(v));
            }
        }
        // ghosts are exactly the non-owned slots
        assert!(!s0.is_vertex_ghost(VertexId(0)));
        assert!(s0.is_vertex_ghost(VertexId(1)));
        assert!(s1.is_vertex_ghost(VertexId(0)));
        assert_eq!(s0.owned_vertex_count(), 3);
        assert_eq!(s1.owned_vertex_count(), 2);
        // edges partition by source owner: j1(v0) owns both WRITES_TO
        // edges; f1(v1)/f2(v3) own the IS_READ_BY edges
        assert_eq!(s0.edge_count(), 2);
        assert_eq!(s1.edge_count(), 2);
        assert_eq!(s0.edge_count() + s1.edge_count(), g.edge_count());
        assert!(s0.edges().all(|e| owner(s0.edge_src(e)) == 0));
        assert!(s1.edges().all(|e| owner(s1.edge_src(e)) == 1));
        // cross-shard edges end on ghosts
        assert!(s0.edges().all(|e| s0.is_vertex_ghost(s0.edge_dst(e))));
        // the unpartitioned graph has no ghosts
        assert!(g.vertices().all(|v| !g.is_vertex_ghost(v)));
        assert_eq!(g.owned_vertex_count(), g.vertex_count());
    }

    #[test]
    fn shard_preserves_tombstones() {
        let g = lineage_toy().remove_vertices([VertexId(2)]);
        let s = g.shard(&|v| v.0 % 2 == 0);
        assert!(!s.is_vertex_live(VertexId(2)));
        assert_eq!(s.vertex_count(), g.vertex_count());
        // v2 was owned by this shard but dead: not counted as owned
        assert_eq!(s.owned_vertex_count(), 2); // v0, v4
    }

    #[test]
    fn ghost_vertices_via_builder() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let f = b.add_ghost_vertex("File");
        b.add_edge(j, f, "WRITES_TO");
        let g = b.finish();
        assert!(!g.is_vertex_ghost(j));
        assert!(g.is_vertex_ghost(f));
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.owned_vertex_count(), 1);
        // ghosts still match patterns / carry type info
        assert_eq!(g.vertices_of_type("File").count(), 1);
    }

    #[test]
    fn parallel_edges_supported() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        let c = b.add_vertex("V");
        b.add_edge(a, c, "E");
        b.add_edge(a, c, "E");
        let g = b.finish();
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(c), 2);
    }

    #[test]
    fn self_loops_supported() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("V");
        b.add_edge(a, a, "E");
        let g = b.finish();
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.out_neighbors(a).next(), Some(a));
    }
}
