//! String interning for type names and property keys.
//!
//! Graph hot paths (pattern matching, traversal, fact extraction) compare
//! vertex/edge type names and property keys billions of times. Interning
//! every such string to a dense [`Symbol`] (a `u32` newtype) makes those
//! comparisons single integer compares and keeps per-vertex storage compact.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Cheap to copy, hash, and compare.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; the graph structures in this crate all share one interner per
/// [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// A bidirectional string ↔ [`Symbol`] table.
///
/// Interning the same string twice returns the same symbol. Resolution is
/// O(1) in both directions.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Job");
        let b = i.intern("Job");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("Job");
        let b = i.intern("File");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "Job");
        assert_eq!(i.resolve(b), "File");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("Job").is_none());
        let s = i.intern("Job");
        assert_eq!(i.get("Job"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..100).map(|n| i.intern(&format!("t{n}"))).collect();
        for (k, s) in syms.iter().enumerate() {
            assert_eq!(s.index(), k);
        }
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<_> = i.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(v, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
