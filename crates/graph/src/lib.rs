//! # kaskade-graph
//!
//! In-memory property-graph substrate for the Kaskade reproduction
//! (replaces Neo4j storage in the paper's architecture).
//!
//! The data model is the property graph of §III.A: vertices and edges are
//! typed and carry key–value properties; a [`Schema`] records which edge
//! types may connect which vertex types (domain/range constraints), which
//! is the raw material for Kaskade's constraint mining.
//!
//! Build a graph with [`GraphBuilder`], freeze it with
//! [`GraphBuilder::finish`] into an immutable CSR [`Graph`], and compute
//! the degree summary statistics the cost model needs with
//! [`GraphStats::compute`].
//!
//! ```
//! use kaskade_graph::{GraphBuilder, GraphStats, Schema, Value};
//!
//! let mut b = GraphBuilder::new();
//! let j1 = b.add_vertex("Job");
//! let f1 = b.add_vertex("File");
//! let j2 = b.add_vertex("Job");
//! b.set_vertex_prop(j1, "cpu", Value::Int(10));
//! b.add_edge(j1, f1, "WRITES_TO");
//! b.add_edge(f1, j2, "IS_READ_BY");
//! b.validate(&Schema::provenance()).unwrap();
//! let g = b.finish();
//!
//! assert_eq!(g.vertex_count(), 3);
//! let stats = GraphStats::compute(&g);
//! assert_eq!(stats.for_type("Job").unwrap().cardinality, 2);
//! ```

#![warn(missing_docs)]

mod codec;
mod compact;
mod edit;
mod exec;
mod extid;
mod graph;
mod interner;
mod merge;
mod persist;
mod schema;
mod scratch;
mod stats;
mod value;

pub use codec::{crc32, CodecError, Dec, Enc};
pub use compact::IdRemap;
pub use edit::GraphEditor;
pub use exec::{chunk_ranges, thread_spawns, ParallelExec, ScopedExec, SerialExec};
pub use extid::{ExternalIdError, ExternalIdTable};
pub use graph::{EdgeId, Graph, GraphBuilder, VertexId};
pub use interner::{Interner, Symbol};
pub use merge::same_dense_graph;
pub use persist::{decode_value, encode_value};
pub use schema::{EdgeRule, Schema, SchemaError};
pub use stats::{
    degree_ccdf, power_law_exponent, CcdfPoint, DegreeChange, DegreeSummary, GraphStats,
};
pub use value::{PropMap, Value};
