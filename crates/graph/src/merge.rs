//! The parallel publish path: freeze a staged edit into a global
//! [`Graph`] by **assembling the CSR from shard CSRs** instead of
//! re-sorting every edge serially.
//!
//! The sharded serving runtime keeps one shard graph per partition:
//! every shard holds *all* vertex slots (ids aligned with the global
//! graph) and exactly the edges whose source vertex it owns, in
//! preserved global relative order. After the shards apply a delta in
//! parallel, the coordinator used to apply the very same delta
//! serially to the global graph — paying the full O(V+E) editor clone
//! and counting sort a second time, alone, after the parallel work had
//! finished. This module replaces that:
//!
//! - [`Graph::edit_parallel`] starts an edit session whose property
//!   columns (the allocation-heavy part of the clone) are deep-cloned
//!   in parallel chunks on a [`ParallelExec`].
//! - [`GraphEditor::finish_merged`] freezes the staged edit with the
//!   adjacency **read off the shard CSRs**: the out-row of vertex `v`
//!   is its owner shard's out-row translated to global edge ids; the
//!   in-row of `v` is a k-way merge (by global edge id) of every
//!   shard's in-row. Workers each own a contiguous vertex range whose
//!   prefix-summed offsets give them a disjoint region of the global
//!   arrays, so the fill is embarrassingly parallel and — because the
//!   per-shard edge order is the global order restricted to the shard
//!   — the result is **identical** to the serial counting sort.
//!
//! [`same_dense_graph`] is the structural-identity oracle the
//! differential proptests use to prove that claim: it compares two
//! graphs slot by slot, column by column, with interned symbols
//! resolved to strings.

use crate::exec::{chunk_ranges, ParallelExec, SharedSlice};
use crate::graph::{EdgeId, Graph, GraphInner, VertexId};
use crate::value::PropMap;
use crate::GraphEditor;

/// Below this many elements a column is cloned inline — chunk dispatch
/// overhead beats the memcpy win on tiny graphs.
const MIN_PARALLEL_CLONE: usize = 4096;

fn clone_chunked<T: Clone + Send + Sync>(src: &[T], exec: &dyn ParallelExec) -> Vec<T> {
    let parts = exec.parallelism();
    if src.len() < MIN_PARALLEL_CLONE || parts <= 1 {
        return src.to_vec();
    }
    let ranges = chunk_ranges(src.len(), parts);
    let slots: Vec<std::sync::Mutex<Vec<T>>> = ranges
        .iter()
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    exec.run(ranges.len(), &|i| {
        let chunk = src[ranges[i].clone()].to_vec();
        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = chunk;
    });
    let mut out = Vec::with_capacity(src.len());
    for slot in slots {
        out.append(&mut slot.into_inner().unwrap_or_else(|e| e.into_inner()));
    }
    out
}

impl Graph {
    /// Starts a copy-on-write edit session like [`Graph::edit`], but
    /// deep-clones the property columns — the allocation-heavy part of
    /// the clone — in parallel chunks on `exec`. The resulting editor
    /// is indistinguishable from one made by `edit()`.
    pub fn edit_parallel(&self, exec: &dyn ParallelExec) -> GraphEditor {
        let inner = &*self.inner;
        let n = inner.vtypes.len();
        let m = inner.srcs.len();
        let mut vertex_dead = inner.vertex_dead.clone();
        vertex_dead.resize(n, false);
        let any_ghost = !inner.vertex_ghost.is_empty();
        let mut vertex_ghost = inner.vertex_ghost.clone();
        vertex_ghost.resize(n, false);
        let mut edge_dead = inner.edge_dead.clone();
        edge_dead.resize(m, false);
        // the two PropMap columns are the only deep clones; everything
        // else is a flat memcpy the allocator handles in one shot
        let (vprops, eprops) = (
            clone_chunked(&inner.vprops, exec),
            clone_chunked(&inner.eprops, exec),
        );
        GraphEditor {
            base: self.clone(),
            vtypes: inner.vtypes.clone(),
            vprops,
            srcs: inner.srcs.clone(),
            dsts: inner.dsts.clone(),
            etypes: inner.etypes.clone(),
            eprops,
            vertex_dead,
            vertex_ghost,
            any_ghost,
            edge_dead,
            interner: inner.interner.clone(),
        }
    }
}

impl GraphEditor {
    /// Freezes this edit into a [`Graph`] whose CSR is assembled from
    /// the shard CSRs in parallel — see the module docs. Produces a
    /// graph identical to [`GraphEditor::finish`] whenever the shard
    /// graphs' edge liveness agrees with this editor's (which holds by
    /// construction on the sharded router: the same retractions were
    /// routed to the shards).
    ///
    /// - `shards[k]` must hold every vertex slot of this editor and
    ///   exactly the live edges whose source `owners` assigns to `k`,
    ///   in global relative order.
    /// - `owners[v]` is the owning shard of vertex slot `v`.
    /// - `edge_global[k][j]` is the global edge id of shard `k`'s edge
    ///   slot `j` (strictly increasing in `j`).
    ///
    /// # Panics
    /// Panics if the shard slot counts or total degrees disagree with
    /// the staged columns — a corrupted ownership table or a stale
    /// `edge_global` mapping can never silently publish.
    pub fn finish_merged(
        self,
        shards: &[Graph],
        owners: &[u32],
        edge_global: &[Vec<EdgeId>],
        exec: &dyn ParallelExec,
    ) -> Graph {
        let n = self.vtypes.len();
        assert_eq!(owners.len(), n, "ownership table must cover every slot");
        assert_eq!(edge_global.len(), shards.len());
        for (k, shard) in shards.iter().enumerate() {
            assert_eq!(
                shard.vertex_slots(),
                n,
                "shard {k} is missing vertex slots (publish barrier violated)"
            );
        }
        let any_vertex_dead = self.vertex_dead.iter().any(|&d| d);
        let any_edge_dead = self.edge_dead.iter().any(|&d| d);

        // pass 1 — per-vertex degrees from the shard CSRs, one disjoint
        // slot per vertex, then a serial prefix sum (O(V), cheap)
        let ranges = chunk_ranges(n, exec.parallelism());
        let mut out_offsets = crate::scratch::take_u32_zeroed(n + 1);
        let mut in_offsets = crate::scratch::take_u32_zeroed(n + 1);
        {
            let out_deg = SharedSlice::new(&mut out_offsets[..]);
            let in_deg = SharedSlice::new(&mut in_offsets[..]);
            exec.run(ranges.len(), &|w| {
                for v in ranges[w].clone() {
                    let vid = VertexId(v as u32);
                    let out = shards[owners[v] as usize].out_degree(vid) as u32;
                    let inn: u32 = shards.iter().map(|s| s.in_degree(vid) as u32).sum();
                    // Safety: v+1 is unique per vertex and in bounds.
                    unsafe {
                        out_deg.write(v + 1, out);
                        in_deg.write(v + 1, inn);
                    }
                }
            });
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let live_edges = out_offsets[n] as usize;
        assert_eq!(
            live_edges, in_offsets[n] as usize,
            "shard out- and in-degrees disagree"
        );
        debug_assert_eq!(
            live_edges,
            self.edge_dead.iter().filter(|&&d| !d).count(),
            "shard edge liveness diverged from the staged edit"
        );

        // pass 2 — fill: each worker's vertex range maps to a disjoint,
        // contiguous region of out_edges/in_edges via the prefix sums
        let mut out_edges = vec![EdgeId(0); live_edges];
        let mut in_edges = vec![EdgeId(0); live_edges];
        {
            let out_fill = SharedSlice::new(&mut out_edges[..]);
            let in_fill = SharedSlice::new(&mut in_edges[..]);
            let k = shards.len();
            exec.run(ranges.len(), &|w| {
                // per-shard [pos, end) window into its in-CSR row of v,
                // reused across the worker's whole range
                let mut windows = vec![(0u32, 0u32); k];
                for v in ranges[w].clone() {
                    let owner = owners[v] as usize;
                    let sh = &*shards[owner].inner;
                    let (lo, hi) = (sh.out_offsets[v] as usize, sh.out_offsets[v + 1] as usize);
                    for (cursor, &e) in (out_offsets[v] as usize..).zip(sh.out_edges[lo..hi].iter())
                    {
                        // Safety: this row is [out_offsets[v], out_offsets[v+1]),
                        // disjoint from every other vertex's row.
                        unsafe { out_fill.write(cursor, edge_global[owner][e.index()]) };
                    }
                    // in-row: k-way merge of the shards' in-rows by
                    // global edge id (each is already ascending)
                    for (s, win) in windows.iter_mut().enumerate() {
                        let sh = &*shards[s].inner;
                        *win = (sh.in_offsets[v], sh.in_offsets[v + 1]);
                    }
                    let mut cursor = in_offsets[v] as usize;
                    loop {
                        let mut best: Option<(usize, EdgeId)> = None;
                        for (s, win) in windows.iter().enumerate() {
                            if win.0 < win.1 {
                                let local = shards[s].inner.in_edges[win.0 as usize];
                                let gid = edge_global[s][local.index()];
                                if best.is_none_or(|(_, b)| gid < b) {
                                    best = Some((s, gid));
                                }
                            }
                        }
                        let Some((s, gid)) = best else { break };
                        // Safety: same disjoint-row argument as above.
                        unsafe { in_fill.write(cursor, gid) };
                        cursor += 1;
                        windows[s].0 += 1;
                    }
                }
            });
        }

        let live_vertices = n - self.vertex_dead.iter().filter(|&&d| d).count();
        let live_owned = (0..n)
            .filter(|&i| !self.vertex_dead[i] && !self.vertex_ghost[i])
            .count();
        let (out_offsets, in_offsets) = (promote(out_offsets), promote(in_offsets));
        Graph {
            inner: std::sync::Arc::new(GraphInner {
                interner: self.interner,
                vtypes: self.vtypes,
                vprops: self.vprops,
                srcs: self.srcs,
                dsts: self.dsts,
                etypes: self.etypes,
                eprops: self.eprops,
                vertex_dead: if any_vertex_dead {
                    self.vertex_dead
                } else {
                    Vec::new()
                },
                vertex_ghost: if self.any_ghost {
                    self.vertex_ghost
                } else {
                    Vec::new()
                },
                edge_dead: if any_edge_dead {
                    self.edge_dead
                } else {
                    Vec::new()
                },
                live_vertices,
                live_owned,
                live_edges,
                out_offsets,
                out_edges,
                in_offsets,
                in_edges,
            }),
        }
    }
}

/// The offset vectors came from the scratch pool and become part of a
/// long-lived graph: shrink them so pooled over-capacity is not pinned
/// by the published snapshot.
fn promote(mut v: Vec<u32>) -> Vec<u32> {
    v.shrink_to_fit();
    v
}

/// Structural-identity oracle for differential tests: `Ok(())` iff the
/// two graphs are the same dense representation — equal slot layouts,
/// liveness and ghost flags, types and properties (interned symbols
/// resolved through each graph's own interner), endpoints, and CSR
/// adjacency arrays. On mismatch returns a description of the first
/// divergence.
pub fn same_dense_graph(a: &Graph, b: &Graph) -> Result<(), String> {
    fn fail(what: &str, detail: impl std::fmt::Display) -> Result<(), String> {
        Err(format!("{what}: {detail}"))
    }
    let (ia, ib) = (&*a.inner, &*b.inner);
    if ia.vtypes.len() != ib.vtypes.len() {
        return fail(
            "vertex slots",
            format_args!("{} vs {}", ia.vtypes.len(), ib.vtypes.len()),
        );
    }
    if ia.srcs.len() != ib.srcs.len() {
        return fail(
            "edge slots",
            format_args!("{} vs {}", ia.srcs.len(), ib.srcs.len()),
        );
    }
    if (ia.live_vertices, ia.live_owned, ia.live_edges)
        != (ib.live_vertices, ib.live_owned, ib.live_edges)
    {
        return fail(
            "live counts",
            format_args!(
                "({}, {}, {}) vs ({}, {}, {})",
                ia.live_vertices,
                ia.live_owned,
                ia.live_edges,
                ib.live_vertices,
                ib.live_owned,
                ib.live_edges
            ),
        );
    }
    let resolved = |g: &Graph, props: &PropMap| -> Vec<(String, crate::Value)> {
        props
            .iter()
            .map(|(k, v)| (g.resolve(k).to_string(), v.clone()))
            .collect()
    };
    for i in 0..ia.vtypes.len() {
        let v = VertexId(i as u32);
        if a.is_vertex_live(v) != b.is_vertex_live(v) {
            return fail("vertex liveness", v);
        }
        if a.is_vertex_ghost(v) != b.is_vertex_ghost(v) {
            return fail("vertex ghost flag", v);
        }
        if a.vertex_type(v) != b.vertex_type(v) {
            return fail(
                "vertex type",
                format_args!("{v}: {} vs {}", a.vertex_type(v), b.vertex_type(v)),
            );
        }
        if resolved(a, &ia.vprops[i]) != resolved(b, &ib.vprops[i]) {
            return fail("vertex props", v);
        }
    }
    for i in 0..ia.srcs.len() {
        let e = EdgeId(i as u32);
        if a.is_edge_live(e) != b.is_edge_live(e) {
            return fail("edge liveness", e.0);
        }
        if (ia.srcs[i], ia.dsts[i]) != (ib.srcs[i], ib.dsts[i]) {
            return fail(
                "edge endpoints",
                format_args!(
                    "e{}: {}->{} vs {}->{}",
                    i, ia.srcs[i], ia.dsts[i], ib.srcs[i], ib.dsts[i]
                ),
            );
        }
        if a.edge_type(e) != b.edge_type(e) {
            return fail("edge type", i);
        }
        if resolved(a, &ia.eprops[i]) != resolved(b, &ib.eprops[i]) {
            return fail("edge props", i);
        }
    }
    if ia.out_offsets != ib.out_offsets || ia.in_offsets != ib.in_offsets {
        return fail("CSR offsets", "out/in offset arrays differ");
    }
    if ia.out_edges != ib.out_edges || ia.in_edges != ib.in_edges {
        return fail("CSR adjacency", "out/in edge arrays differ");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ScopedExec, SerialExec};
    use crate::graph::GraphBuilder;
    use crate::Value;

    /// A toy lineage graph with props, a tombstoned edge, and a ghost.
    fn toy() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let g0 = b.add_ghost_vertex("File");
        b.set_vertex_prop(j0, "cpu", Value::Int(4));
        let e0 = b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j1, g0, "WRITES_TO");
        b.set_edge_prop(e0, "ts", Value::Int(7));
        b.finish().remove_edges([EdgeId(1)])
    }

    /// Splits `g` into `k` shards by `owner`, plus the edge_global map.
    fn shard_out(g: &Graph, k: usize, owner: &dyn Fn(VertexId) -> usize) -> ShardSet {
        let shards: Vec<Graph> = (0..k).map(|s| g.shard(&|v| owner(v) == s)).collect();
        let mut edge_global = vec![Vec::new(); k];
        for e in g.edges() {
            edge_global[owner(g.edge_src(e))].push(e);
        }
        let owners = (0..g.vertex_slots() as u32)
            .map(|v| owner(VertexId(v)) as u32)
            .collect();
        ShardSet {
            shards,
            owners,
            edge_global,
        }
    }

    struct ShardSet {
        shards: Vec<Graph>,
        owners: Vec<u32>,
        edge_global: Vec<Vec<EdgeId>>,
    }

    #[test]
    fn edit_parallel_matches_edit() {
        let g = toy();
        let a = g.edit().finish();
        let b = g.edit_parallel(&ScopedExec).finish();
        same_dense_graph(&a, &b).expect("parallel clone must be identical");
    }

    #[test]
    fn finish_merged_matches_finish_without_edits() {
        let g = toy();
        for k in [1usize, 2, 3] {
            let owner = move |v: VertexId| v.index() % k;
            let set = shard_out(&g, k, &owner);
            let serial = g.edit().finish();
            let merged =
                g.edit()
                    .finish_merged(&set.shards, &set.owners, &set.edge_global, &SerialExec);
            same_dense_graph(&serial, &merged).unwrap_or_else(|e| panic!("k={k}: {e}"));
        }
    }

    #[test]
    fn finish_merged_matches_finish_with_staged_edits() {
        let g = toy();
        let k = 2usize;
        let owner = move |v: VertexId| v.index() % k;
        // stage the same edits on the global editor and on each shard
        let stage = |mut ed: GraphEditor, ghost_split: bool| -> GraphEditor {
            let nv = if ghost_split {
                ed.add_ghost_vertex("Job")
            } else {
                ed.add_vertex("Job")
            };
            ed.set_vertex_prop(nv, "cpu", Value::Int(9));
            ed
        };
        // global: the new vertex (slot 4) is owned by shard 0 and gets
        // a new edge from j1 (slot 2, owned by shard 0 under v%2)
        let mut ged = stage(g.edit(), false);
        let nv = VertexId(4);
        let ne = ged.add_edge(VertexId(2), nv, "WRITES_TO");
        assert_eq!(ne, EdgeId(3));
        ged.remove_edge(EdgeId(0));
        // shards: broadcast vertex (ghost off-owner), route the edge to
        // the source's owner (shard 0), route the retraction likewise
        let mut shards = Vec::new();
        let mut edge_global = vec![Vec::new(); k];
        for e in g.edges() {
            edge_global[owner(g.edge_src(e))].push(e);
        }
        for s in 0..k {
            let mut ed = g.shard(&|v| owner(v) == s).edit();
            let ed2 = stage(std::mem::replace(&mut ed, g.edit()), s != 0);
            let mut ed = ed2;
            if s == 0 {
                // shard-local edge ids are dense; the new edge lands at
                // this shard's next slot, mapping to global slot 3
                let local = ed.add_edge(VertexId(2), nv, "WRITES_TO");
                edge_global[0].push(EdgeId(3));
                // the retraction targets global edge 0 = shard 0 slot 0
                assert_eq!(edge_global[0][0], EdgeId(0));
                ed.remove_edge(EdgeId(0));
                let _ = local;
            }
            shards.push(ed.finish());
        }
        let owners: Vec<u32> = (0..5).map(|v| owner(VertexId(v)) as u32).collect();
        let serial = {
            let mut ed = stage(g.edit(), false);
            ed.add_edge(VertexId(2), nv, "WRITES_TO");
            ed.remove_edge(EdgeId(0));
            ed.finish()
        };
        let merged = ged.finish_merged(&shards, &owners, &edge_global, &ScopedExec);
        same_dense_graph(&serial, &merged).expect("merged publish must be identical");
    }

    #[test]
    fn same_dense_graph_detects_divergence() {
        let g = toy();
        assert!(same_dense_graph(&g, &g).is_ok());
        let other = g.remove_edges([EdgeId(0)]);
        assert!(same_dense_graph(&g, &other).is_err());
    }
}
