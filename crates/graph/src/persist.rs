//! Checkpoint serialization for [`Graph`].
//!
//! A graph encodes as its logical columns — interner strings, vertex
//! types/properties/flags, edge endpoints/types/properties/flags — and
//! decodes by re-running the **same deterministic CSR build** every
//! in-memory producer uses ([`crate::GraphBuilder::finish`],
//! `GraphEditor::finish`, `Graph::compact`): a stable counting sort of
//! the live edges per direction. The decoded graph is therefore
//! behaviorally identical to the encoded one — same ids, same
//! adjacency order (so identity-targeted LIFO retraction picks the
//! same edge), same statistics — which is what lets crash recovery
//! replay a WAL on top of a checkpoint and land byte-identical to a
//! never-restarted engine.

use crate::codec::{CodecError, Dec, Enc};
use crate::graph::{EdgeId, Graph, GraphInner, VertexId};
use crate::interner::{Interner, Symbol};
use crate::value::{PropMap, Value};

/// Appends `v` to `out` (tag byte + payload).
pub fn encode_value(v: &Value, out: &mut Enc) {
    match v {
        Value::Int(i) => {
            out.u8(0);
            out.i64(*i);
        }
        Value::Float(f) => {
            out.u8(1);
            out.f64(*f);
        }
        Value::Str(s) => {
            out.u8(2);
            out.str(s);
        }
        Value::Bool(b) => {
            out.u8(3);
            out.bool(*b);
        }
    }
}

/// Decodes a [`Value`] written by [`encode_value`].
pub fn decode_value(d: &mut Dec<'_>) -> Result<Value, CodecError> {
    Ok(match d.u8()? {
        0 => Value::Int(d.i64()?),
        1 => Value::Float(d.f64()?),
        2 => Value::Str(d.str()?),
        3 => Value::Bool(d.bool()?),
        _ => return Err(CodecError::Corrupt("unknown value tag")),
    })
}

fn encode_props(p: &PropMap, out: &mut Enc) {
    out.usize(p.len());
    for (k, v) in p.iter() {
        out.u32(k.0);
        encode_value(v, out);
    }
}

fn decode_props(d: &mut Dec<'_>, symbols: usize) -> Result<PropMap, CodecError> {
    let n = d.count()?;
    let mut p = PropMap::new();
    for _ in 0..n {
        let k = d.u32()?;
        if k as usize >= symbols {
            return Err(CodecError::Corrupt("property key symbol out of range"));
        }
        let v = decode_value(d)?;
        p.insert(Symbol(k), v);
    }
    Ok(p)
}

fn encode_flags(flags: &[bool], out: &mut Enc) {
    out.usize(flags.len());
    for &f in flags {
        out.bool(f);
    }
}

fn decode_flags(d: &mut Dec<'_>, expect: usize) -> Result<Vec<bool>, CodecError> {
    let n = d.count()?;
    if n != 0 && n != expect {
        return Err(CodecError::Corrupt("flag vector length mismatch"));
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.bool()?);
    }
    Ok(v)
}

impl Graph {
    /// Appends this graph's logical columns to `out`. Deterministic:
    /// the same graph always encodes to the same bytes.
    pub fn encode(&self, out: &mut Enc) {
        let inner = &*self.inner;
        out.usize(inner.interner.len());
        for (_, s) in inner.interner.iter() {
            out.str(s);
        }
        let n = inner.vtypes.len();
        out.usize(n);
        for t in &inner.vtypes {
            out.u32(t.0);
        }
        for p in &inner.vprops {
            encode_props(p, out);
        }
        encode_flags(&inner.vertex_dead, out);
        encode_flags(&inner.vertex_ghost, out);
        let m = inner.srcs.len();
        out.usize(m);
        for i in 0..m {
            out.u32(inner.srcs[i].0);
            out.u32(inner.dsts[i].0);
            out.u32(inner.etypes[i].0);
        }
        for p in &inner.eprops {
            encode_props(p, out);
        }
        encode_flags(&inner.edge_dead, out);
    }

    /// Decodes a graph written by [`Graph::encode`], rebuilding the CSR
    /// adjacency with the same stable counting sort every in-memory
    /// producer uses, so the result is behaviorally identical to the
    /// graph that was encoded.
    pub fn decode(d: &mut Dec<'_>) -> Result<Graph, CodecError> {
        let nsyms = d.count()?;
        let mut interner = Interner::new();
        for _ in 0..nsyms {
            let s = d.str()?;
            let sym = interner.intern(&s);
            if sym.index() + 1 != interner.len() {
                return Err(CodecError::Corrupt("duplicate interner string"));
            }
        }
        let n = d.count()?;
        let mut vtypes = Vec::with_capacity(n);
        for _ in 0..n {
            let t = d.u32()?;
            if t as usize >= nsyms {
                return Err(CodecError::Corrupt("vertex type symbol out of range"));
            }
            vtypes.push(Symbol(t));
        }
        let mut vprops = Vec::with_capacity(n);
        for _ in 0..n {
            vprops.push(decode_props(d, nsyms)?);
        }
        let vertex_dead = decode_flags(d, n)?;
        let vertex_ghost = decode_flags(d, n)?;

        let m = d.count()?;
        let mut srcs = Vec::with_capacity(m);
        let mut dsts = Vec::with_capacity(m);
        let mut etypes = Vec::with_capacity(m);
        for _ in 0..m {
            let s = d.u32()?;
            let t = d.u32()?;
            if s as usize >= n || t as usize >= n {
                return Err(CodecError::Corrupt("edge endpoint out of range"));
            }
            let e = d.u32()?;
            if e as usize >= nsyms {
                return Err(CodecError::Corrupt("edge type symbol out of range"));
            }
            srcs.push(VertexId(s));
            dsts.push(VertexId(t));
            etypes.push(Symbol(e));
        }
        let mut eprops = Vec::with_capacity(m);
        for _ in 0..m {
            eprops.push(decode_props(d, nsyms)?);
        }
        let edge_dead = decode_flags(d, m)?;

        let edge_is_live = |i: usize| edge_dead.is_empty() || !edge_dead[i];
        let vertex_is_live = |i: usize| vertex_dead.is_empty() || !vertex_dead[i];
        let is_ghost = |i: usize| !vertex_ghost.is_empty() && vertex_ghost[i];

        // The exact CSR build of `GraphEditor::finish`: stable counting
        // sort of live edges by source (out) and by destination (in).
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for i in 0..m {
            if !edge_is_live(i) {
                continue;
            }
            out_offsets[srcs[i].index() + 1] += 1;
            in_offsets[dsts[i].index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let live_edges = out_offsets[n] as usize;
        let mut out_edges = vec![EdgeId(0); live_edges];
        let mut in_edges = vec![EdgeId(0); live_edges];
        let mut out_cursor = crate::scratch::take_u32(n + 1);
        out_cursor.extend_from_slice(&out_offsets);
        let mut in_cursor = crate::scratch::take_u32(n + 1);
        in_cursor.extend_from_slice(&in_offsets);
        for i in 0..m {
            if !edge_is_live(i) {
                continue;
            }
            let s = srcs[i].index();
            let t = dsts[i].index();
            out_edges[out_cursor[s] as usize] = EdgeId(i as u32);
            out_cursor[s] += 1;
            in_edges[in_cursor[t] as usize] = EdgeId(i as u32);
            in_cursor[t] += 1;
        }
        crate::scratch::give_u32(out_cursor);
        crate::scratch::give_u32(in_cursor);

        let live_vertices = (0..n).filter(|&i| vertex_is_live(i)).count();
        let live_owned = (0..n)
            .filter(|&i| vertex_is_live(i) && !is_ghost(i))
            .count();
        let any_vertex_dead = vertex_dead.iter().any(|&x| x);
        let any_edge_dead = edge_dead.iter().any(|&x| x);
        let any_ghost = vertex_ghost.iter().any(|&x| x);

        Ok(Graph {
            inner: std::sync::Arc::new(GraphInner {
                interner,
                vtypes,
                vprops,
                srcs,
                dsts,
                etypes,
                eprops,
                vertex_dead: if any_vertex_dead {
                    vertex_dead
                } else {
                    Vec::new()
                },
                vertex_ghost: if any_ghost { vertex_ghost } else { Vec::new() },
                edge_dead: if any_edge_dead { edge_dead } else { Vec::new() },
                live_vertices,
                live_owned,
                live_edges,
                out_offsets,
                out_edges,
                in_offsets,
                in_edges,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::merge::same_dense_graph;
    use crate::stats::GraphStats;

    fn toy() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        b.set_vertex_prop(j0, "cpu", Value::Int(4));
        b.set_vertex_prop(j1, "name", Value::Str("etl".into()));
        b.set_vertex_prop(f1, "hot", Value::Bool(true));
        let e = b.add_edge(j0, f0, "WRITES_TO");
        b.set_edge_prop(e, "ts", Value::Int(1));
        b.add_edge(f0, j1, "IS_READ_BY");
        let e = b.add_edge(j1, f1, "WRITES_TO");
        b.set_edge_prop(e, "score", Value::Float(0.5));
        b.finish()
    }

    fn round_trip(g: &Graph) -> Graph {
        let mut e = Enc::new();
        g.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = Graph::decode(&mut d).unwrap();
        assert!(d.is_done());
        back
    }

    #[test]
    fn dense_graph_round_trips_exactly() {
        let g = toy();
        let back = round_trip(&g);
        same_dense_graph(&g, &back).unwrap();
        assert_eq!(GraphStats::compute(&g), GraphStats::compute(&back));
        // adjacency order survives (LIFO retraction determinism)
        for v in g.vertices() {
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = back.out_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tombstoned_graph_round_trips_with_dead_slots() {
        let g = toy().remove_vertices([VertexId(1)]);
        assert!(g.vertex_slots() > g.vertex_count());
        let back = round_trip(&g);
        assert_eq!(back.vertex_slots(), g.vertex_slots());
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_slots(), g.edge_slots());
        assert_eq!(back.edge_count(), g.edge_count());
        for i in 0..g.vertex_slots() as u32 {
            assert_eq!(
                back.is_vertex_live(VertexId(i)),
                g.is_vertex_live(VertexId(i))
            );
        }
        assert_eq!(GraphStats::compute(&g), GraphStats::compute(&back));
    }

    #[test]
    fn sharded_graph_round_trips_ghosts() {
        let g = toy().shard(&|v| v.0 % 2 == 0);
        let back = round_trip(&g);
        assert_eq!(back.owned_vertex_count(), g.owned_vertex_count());
        for v in g.vertices() {
            assert_eq!(back.is_vertex_ghost(v), g.is_vertex_ghost(v));
        }
        assert_eq!(GraphStats::compute(&g), GraphStats::compute(&back));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().finish();
        let back = round_trip(&g);
        assert_eq!(back.vertex_slots(), 0);
        assert_eq!(back.edge_slots(), 0);
    }

    #[test]
    fn corrupt_symbol_reference_is_rejected() {
        let g = toy();
        let mut e = Enc::new();
        g.encode(&mut e);
        let mut bytes = e.into_bytes();
        // The first vertex-type symbol sits right after the interner
        // block and the vertex count; stomp it with an out-of-range id.
        let mut probe = Dec::new(&bytes);
        let nsyms = probe.count().unwrap();
        for _ in 0..nsyms {
            probe.str().unwrap();
        }
        probe.usize().unwrap();
        let at = bytes.len() - probe.remaining();
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Graph::decode(&mut Dec::new(&bytes)).is_err());
    }
}
