//! Graph schemas: typed vertices and edges with domain/range constraints.
//!
//! A schema captures the structural constraints the paper mines (§IV.A):
//! which vertex types exist and, for each edge type, which vertex type it
//! may start from (domain) and point to (range). In the running provenance
//! example, `WRITES_TO` only connects `Job → File` and `IS_READ_BY` only
//! `File → Job`, so no job-job or file-file edge can exist.

use std::collections::BTreeSet;
use std::fmt;

/// One edge-type rule: edges named `name` go from vertices of type `src`
/// to vertices of type `dst`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeRule {
    /// Source (domain) vertex type name.
    pub src: String,
    /// Destination (range) vertex type name.
    pub dst: String,
    /// Edge type name.
    pub name: String,
}

/// A property-graph schema: the set of vertex types plus edge rules.
///
/// The same edge type name may appear in several rules with different
/// endpoints (overloading), matching the property-graph model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    vertex_types: BTreeSet<String>,
    edge_rules: Vec<EdgeRule>,
}

/// Error raised when an edge or vertex violates the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The vertex type has not been declared.
    UnknownVertexType(String),
    /// No rule allows this (src type, edge type, dst type) combination.
    EdgeNotAllowed {
        /// Source vertex type of the offending edge.
        src: String,
        /// Edge type name.
        etype: String,
        /// Destination vertex type of the offending edge.
        dst: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownVertexType(t) => write!(f, "unknown vertex type `{t}`"),
            SchemaError::EdgeNotAllowed { src, etype, dst } => {
                write!(f, "edge `{src}-[:{etype}]->{dst}` not allowed by schema")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a vertex type. Idempotent.
    pub fn add_vertex_type(&mut self, name: &str) -> &mut Self {
        self.vertex_types.insert(name.to_string());
        self
    }

    /// Declares an edge rule `src -[:name]-> dst`. Also declares both
    /// endpoint vertex types if missing. Duplicate rules are ignored.
    pub fn add_edge_rule(&mut self, src: &str, name: &str, dst: &str) -> &mut Self {
        self.add_vertex_type(src);
        self.add_vertex_type(dst);
        let rule = EdgeRule {
            src: src.to_string(),
            dst: dst.to_string(),
            name: name.to_string(),
        };
        if !self.edge_rules.contains(&rule) {
            self.edge_rules.push(rule);
        }
        self
    }

    /// All declared vertex type names, sorted.
    pub fn vertex_types(&self) -> impl Iterator<Item = &str> {
        self.vertex_types.iter().map(String::as_str)
    }

    /// All edge rules in declaration order.
    pub fn edge_rules(&self) -> &[EdgeRule] {
        &self.edge_rules
    }

    /// Whether `name` is a declared vertex type.
    pub fn has_vertex_type(&self, name: &str) -> bool {
        self.vertex_types.contains(name)
    }

    /// Whether some rule allows `src -[:etype]-> dst`.
    pub fn allows_edge(&self, src: &str, etype: &str, dst: &str) -> bool {
        self.edge_rules
            .iter()
            .any(|r| r.src == src && r.name == etype && r.dst == dst)
    }

    /// Validates an edge against the schema.
    pub fn check_edge(&self, src: &str, etype: &str, dst: &str) -> Result<(), SchemaError> {
        if !self.has_vertex_type(src) {
            return Err(SchemaError::UnknownVertexType(src.to_string()));
        }
        if !self.has_vertex_type(dst) {
            return Err(SchemaError::UnknownVertexType(dst.to_string()));
        }
        if !self.allows_edge(src, etype, dst) {
            return Err(SchemaError::EdgeNotAllowed {
                src: src.to_string(),
                etype: etype.to_string(),
                dst: dst.to_string(),
            });
        }
        Ok(())
    }

    /// Vertex types that are the domain (source) of at least one edge rule.
    /// These are the types `T_G` over which the heterogeneous estimator
    /// Eq. (3) of the paper sums.
    pub fn source_types(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.edge_rules.iter().map(|r| r.src.as_str()).collect();
        set.into_iter().collect()
    }

    /// Edge rules whose source type is `src`.
    pub fn rules_from<'a>(&'a self, src: &'a str) -> impl Iterator<Item = &'a EdgeRule> + 'a {
        self.edge_rules.iter().filter(move |r| r.src == src)
    }

    /// Whether the schema graph (vertex types as nodes, rules as edges)
    /// contains a directed k-length path from `src` type to `dst` type
    /// that never revisits a vertex type. This is the semantics of the
    /// paper's `schemaKHopPath` constraint-mining rule (Lst. 2).
    pub fn has_k_hop_path(&self, src: &str, dst: &str, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        let mut trail: Vec<&str> = Vec::new();
        self.k_hop_rec(src, dst, k, &mut trail)
    }

    fn k_hop_rec<'a>(
        &'a self,
        cur: &'a str,
        dst: &str,
        k: usize,
        trail: &mut Vec<&'a str>,
    ) -> bool {
        if k == 1 {
            return self.rules_from(cur).any(|r| r.dst == dst);
        }
        trail.push(cur);
        for r in self.rules_from(cur) {
            if !trail.contains(&r.dst.as_str()) && self.k_hop_rec(&r.dst, dst, k - 1, trail) {
                trail.pop();
                return true;
            }
        }
        trail.pop();
        false
    }

    /// Whether the schema graph admits a directed **walk** (vertex types
    /// may repeat) of exactly `k` edges from `src` type to `dst` type.
    /// Computed by level-set dynamic programming, so it terminates on
    /// cyclic schemas. This is the semantics of the bounded-walk
    /// `schemaKHopWalk` mining rule.
    pub fn has_k_hop_walk(&self, src: &str, dst: &str, k: usize) -> bool {
        if k == 0 {
            return src == dst && self.has_vertex_type(src);
        }
        let mut frontier: BTreeSet<&str> = BTreeSet::new();
        frontier.insert(src);
        for _ in 0..k {
            let mut next: BTreeSet<&str> = BTreeSet::new();
            for t in &frontier {
                for r in self.rules_from(t) {
                    next.insert(&r.dst);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                return false;
            }
        }
        frontier.contains(dst)
    }

    /// Convenience constructor for the paper's running provenance schema:
    /// `Job -[:WRITES_TO]-> File`, `File -[:IS_READ_BY]-> Job`.
    pub fn provenance() -> Self {
        let mut s = Schema::new();
        s.add_edge_rule("Job", "WRITES_TO", "File");
        s.add_edge_rule("File", "IS_READ_BY", "Job");
        s
    }

    /// Convenience constructor for the dblp-style publication schema.
    pub fn dblp() -> Self {
        let mut s = Schema::new();
        s.add_edge_rule("Author", "AUTHORED", "Publication");
        s.add_edge_rule("Publication", "IS_AUTHORED_BY", "Author");
        s.add_edge_rule("Publication", "PUBLISHED_IN", "Venue");
        s
    }

    /// Convenience constructor for a homogeneous schema with one vertex
    /// type `name` and one self-loop edge rule `etype`.
    pub fn homogeneous(name: &str, etype: &str) -> Self {
        let mut s = Schema::new();
        s.add_edge_rule(name, etype, name);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_schema_rules() {
        let s = Schema::provenance();
        assert!(s.allows_edge("Job", "WRITES_TO", "File"));
        assert!(s.allows_edge("File", "IS_READ_BY", "Job"));
        assert!(!s.allows_edge("File", "WRITES_TO", "File"));
        assert!(!s.allows_edge("Job", "IS_READ_BY", "File"));
        assert_eq!(s.vertex_types().collect::<Vec<_>>(), vec!["File", "Job"]);
    }

    #[test]
    fn check_edge_errors() {
        let s = Schema::provenance();
        assert!(s.check_edge("Job", "WRITES_TO", "File").is_ok());
        assert_eq!(
            s.check_edge("Task", "WRITES_TO", "File"),
            Err(SchemaError::UnknownVertexType("Task".into()))
        );
        assert!(matches!(
            s.check_edge("File", "WRITES_TO", "Job"),
            Err(SchemaError::EdgeNotAllowed { .. })
        ));
    }

    #[test]
    fn k_hop_paths_respect_parity_in_bipartite_schema() {
        // In the provenance schema only even-length Job→Job paths exist —
        // exactly the implicit constraint §IV.A2 derives. But note the
        // acyclic-trail restriction of schemaKHopPath: a Job→Job path of
        // length 2 visits Job, File, Job and never revisits an
        // *intermediate* type, so k=2 is feasible while k=3 is not.
        let s = Schema::provenance();
        assert!(s.has_k_hop_path("Job", "Job", 2));
        assert!(!s.has_k_hop_path("Job", "Job", 3));
        assert!(s.has_k_hop_path("Job", "File", 1));
        assert!(!s.has_k_hop_path("Job", "File", 2));
        assert!(s.has_k_hop_path("File", "File", 2));
    }

    #[test]
    fn k_hop_zero_is_never_feasible() {
        let s = Schema::provenance();
        assert!(!s.has_k_hop_path("Job", "Job", 0));
    }

    #[test]
    fn homogeneous_schema_allows_all_k() {
        let s = Schema::homogeneous("V", "E");
        // Self-loop in the schema graph: the trail check excludes
        // revisiting, so only k=1 direct hop is derivable by trail
        // semantics... but a self-loop edge means k=1 always works and the
        // recursive case pushes `V` on the trail, blocking reuse.
        assert!(s.has_k_hop_path("V", "V", 1));
    }

    #[test]
    fn k_hop_walks_allow_type_revisits() {
        let s = Schema::provenance();
        assert!(s.has_k_hop_walk("Job", "Job", 2));
        assert!(s.has_k_hop_walk("Job", "Job", 4));
        assert!(s.has_k_hop_walk("Job", "Job", 10));
        assert!(!s.has_k_hop_walk("Job", "Job", 3));
        assert!(s.has_k_hop_walk("Job", "File", 3));
        assert!(s.has_k_hop_walk("Job", "Job", 0));
        assert!(!s.has_k_hop_walk("Job", "File", 0));
    }

    #[test]
    fn source_types_of_dblp() {
        let s = Schema::dblp();
        assert_eq!(s.source_types(), vec!["Author", "Publication"]);
    }

    #[test]
    fn duplicate_rules_ignored() {
        let mut s = Schema::new();
        s.add_edge_rule("A", "E", "B");
        s.add_edge_rule("A", "E", "B");
        assert_eq!(s.edge_rules().len(), 1);
    }

    #[test]
    fn display_errors() {
        let e = SchemaError::EdgeNotAllowed {
            src: "A".into(),
            etype: "E".into(),
            dst: "B".into(),
        };
        assert!(e.to_string().contains("not allowed"));
        assert!(SchemaError::UnknownVertexType("X".into())
            .to_string()
            .contains("unknown"));
    }
}
