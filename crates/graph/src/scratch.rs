//! Take-and-return recycling of the transient buffers behind CSR
//! rebuilds and compaction.
//!
//! Every [`GraphEditor::finish`](crate::GraphEditor::finish) and every
//! [`Graph::compact`](crate::Graph::compact) needs a handful of
//! throwaway `Vec<u32>` cursors sized O(V). On a serving write path
//! that publishes thousands of epochs, reallocating (and faulting in)
//! those buffers per publish is measurable churn; recycling them keeps
//! the allocator out of the hot loop entirely.
//!
//! The pool is a small process-wide stack of buffers behind a `Mutex`
//! — taken at the start of a rebuild, cleared and returned at the end.
//! Contention is no concern: the lock is held for a push/pop, and each
//! engine has exactly one writer thread doing rebuilds. The pool is
//! bounded (both in buffer count and per-buffer capacity) so a one-off
//! giant rebuild cannot pin its peak allocation forever.

use std::sync::Mutex;

/// Buffers kept per pool slot; more rebuilds in flight than this just
/// allocate fresh.
const POOL_DEPTH: usize = 8;

/// Buffers with more capacity than this many elements are dropped on
/// return instead of pooled (≈ 64 MiB of `u32` — a one-off spike
/// should not be pinned forever).
const MAX_POOLED_CAPACITY: usize = 16 << 20;

static U32_POOL: Mutex<Vec<Vec<u32>>> = Mutex::new(Vec::new());

/// Takes a cleared `Vec<u32>` with at least `capacity` spare capacity,
/// reusing a pooled buffer when one is available.
pub(crate) fn take_u32(capacity: usize) -> Vec<u32> {
    let mut pool = U32_POOL.lock().unwrap_or_else(|e| e.into_inner());
    match pool.pop() {
        Some(mut buf) => {
            buf.clear();
            buf.reserve(capacity);
            buf
        }
        None => Vec::with_capacity(capacity),
    }
}

/// Returns a buffer to the pool for the next rebuild.
pub(crate) fn give_u32(buf: Vec<u32>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    let mut pool = U32_POOL.lock().unwrap_or_else(|e| e.into_inner());
    if pool.len() < POOL_DEPTH {
        pool.push(buf);
    }
}

/// A `vec![0u32; len]` equivalent drawn from the pool.
pub(crate) fn take_u32_zeroed(len: usize) -> Vec<u32> {
    let mut buf = take_u32(len);
    buf.resize(len, 0);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_pool() {
        let mut buf = take_u32(100);
        buf.extend(0..100);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        give_u32(buf);
        // the very next take of a fitting size reuses the allocation
        let again = take_u32(50);
        if again.capacity() == cap {
            assert_eq!(again.as_ptr(), ptr);
        }
        assert!(again.is_empty());
        give_u32(again);
    }

    #[test]
    fn zeroed_take_is_all_zero_after_reuse() {
        let mut buf = take_u32(16);
        buf.extend([7u32; 16]);
        give_u32(buf);
        let z = take_u32_zeroed(16);
        assert_eq!(z, vec![0u32; 16]);
        give_u32(z);
    }

    #[test]
    fn oversized_and_empty_buffers_are_not_pooled() {
        give_u32(Vec::new()); // no capacity: dropped silently
        let depth_before = U32_POOL.lock().unwrap().len();
        let huge = Vec::with_capacity(MAX_POOLED_CAPACITY + 1);
        give_u32(huge);
        assert_eq!(U32_POOL.lock().unwrap().len(), depth_before);
    }
}
