//! Graph data properties maintained for the cost model (§V.A).
//!
//! During loading Kaskade maintains (i) vertex cardinality per vertex type
//! and (ii) coarse-grained out-degree distribution summary statistics —
//! the 50th, 90th and 95th percentile out-degree per vertex type. The
//! view-size estimators in `kaskade-core` consume exactly these numbers.

use std::collections::BTreeMap;

use crate::graph::Graph;

/// Summary of the out-degree distribution of one vertex type.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeSummary {
    /// Number of vertices of this type.
    pub cardinality: usize,
    /// 50th percentile (median) out-degree.
    pub p50: usize,
    /// 90th percentile out-degree.
    pub p90: usize,
    /// 95th percentile out-degree.
    pub p95: usize,
    /// Maximum out-degree (the α=100 case).
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
}

impl DegreeSummary {
    /// Percentile lookup for the α values the estimator supports. α must
    /// be in (0, 100]; intermediate values snap to the nearest maintained
    /// percentile (50, 90, 95, 100), matching the coarse-grained summary
    /// statistics the paper keeps.
    pub fn degree_at(&self, alpha: u8) -> usize {
        assert!(alpha > 0 && alpha <= 100, "alpha must be in (0,100]");
        match alpha {
            0..=69 => self.p50,
            70..=92 => self.p90,
            93..=99 => self.p95,
            100 => self.max,
            _ => unreachable!(),
        }
    }
}

/// Per-type degree statistics plus whole-graph totals.
///
/// Stats built by [`GraphStats::compute`] additionally retain compact
/// per-type degree **histograms** (distinct degree → count), which is
/// what makes [`GraphStats::with_changes`] possible: a write batch that
/// touches `t` vertices updates the stats in O(t · log) instead of a
/// full O(V) rescan per publish. Synthetic stats from
/// [`GraphStats::from_parts`] carry no histograms and cannot be updated
/// incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    per_type: BTreeMap<String, DegreeSummary>,
    /// Total vertex count.
    pub vertex_count: usize,
    /// Total edge count.
    pub edge_count: usize,
    /// Whole-graph degree summary (all vertices pooled).
    pub overall: DegreeSummary,
    hist: Option<StatsHist>,
}

/// A multiset of out-degrees as `degree → count`, plus running totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct DegreeHist {
    counts: BTreeMap<usize, usize>,
    n: usize,
    degree_sum: usize,
}

impl DegreeHist {
    fn add(&mut self, d: usize) {
        *self.counts.entry(d).or_insert(0) += 1;
        self.n += 1;
        self.degree_sum += d;
    }

    /// Removes one occurrence of `d`. Panics if absent — that means the
    /// caller's degree bookkeeping diverged from the graph.
    fn remove(&mut self, d: usize) {
        let c = self
            .counts
            .get_mut(&d)
            .unwrap_or_else(|| panic!("degree {d} not present in histogram"));
        *c -= 1;
        if *c == 0 {
            self.counts.remove(&d);
        }
        self.n -= 1;
        self.degree_sum -= d;
    }

    /// Adds every occurrence of `other` into this histogram.
    fn merge_from(&mut self, other: &DegreeHist) {
        for (&d, &c) in &other.counts {
            *self.counts.entry(d).or_insert(0) += c;
        }
        self.n += other.n;
        self.degree_sum += other.degree_sum;
    }

    /// Nearest-rank percentile over the multiset (0 when empty).
    fn percentile(&self, p: f64) -> usize {
        if self.n == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.n as f64).ceil() as usize).clamp(1, self.n);
        let mut seen = 0usize;
        for (&d, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return d;
            }
        }
        *self.counts.keys().next_back().unwrap_or(&0)
    }

    fn summarize(&self) -> DegreeSummary {
        DegreeSummary {
            cardinality: self.n,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p95: self.percentile(95.0),
            max: self.counts.keys().next_back().copied().unwrap_or(0),
            mean: if self.n == 0 {
                0.0
            } else {
                self.degree_sum as f64 / self.n as f64
            },
        }
    }
}

/// The retained histograms behind incrementally maintainable stats.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct StatsHist {
    per_type: BTreeMap<String, DegreeHist>,
    overall: DegreeHist,
}

/// One vertex's contribution to a stats update: its type, its
/// out-degree before the change (`None` = the vertex did not exist),
/// and after (`None` = the vertex was deleted). See
/// [`GraphStats::with_changes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeChange {
    /// The vertex's type name.
    pub vtype: String,
    /// Out-degree before the delta (`None` for an inserted vertex).
    pub before: Option<usize>,
    /// Out-degree after the delta (`None` for a deleted vertex).
    pub after: Option<usize>,
}

impl GraphStats {
    /// Computes statistics for `g` in a single pass over the vertices.
    /// The result retains degree histograms, so it can be maintained
    /// incrementally with [`GraphStats::with_changes`].
    ///
    /// **Ghost vertices are excluded**: on a shard of a partitioned
    /// graph (see [`Graph::shard`]) only owned vertices contribute, so
    /// [`GraphStats::merge`] over per-shard stats reproduces the global
    /// stats exactly — every vertex is counted once, on its owner, and
    /// its local out-degree there equals its global out-degree (all of
    /// a vertex's out-edges live on its owner shard). On unpartitioned
    /// graphs nothing changes.
    pub fn compute(g: &Graph) -> Self {
        let mut hist = StatsHist::default();
        for v in g.vertices() {
            if g.is_vertex_ghost(v) {
                continue;
            }
            let d = g.out_degree(v);
            hist.overall.add(d);
            hist.per_type
                .entry(g.vertex_type(v).to_string())
                .or_default()
                .add(d);
        }
        let per_type = hist
            .per_type
            .iter()
            .map(|(t, h)| (t.clone(), h.summarize()))
            .collect();
        GraphStats {
            per_type,
            vertex_count: g.owned_vertex_count(),
            edge_count: g.edge_count(),
            overall: hist.overall.summarize(),
            hist: Some(hist),
        }
    }

    /// Merges per-shard statistics into global statistics: degree
    /// histograms are unioned per type (and overall), vertex and edge
    /// counts are summed. When each part was computed over one shard of
    /// a partitioned graph, the result is **exactly** what
    /// [`GraphStats::compute`] over the unpartitioned graph returns
    /// (asserted by tests) — the scatter/gather planner in
    /// `kaskade-service` plans against merged stats without ever
    /// touching a global rescan.
    ///
    /// Returns `None` if any part carries no histograms (synthetic
    /// stats from [`GraphStats::from_parts`] cannot be merged) — fall
    /// back to a full compute.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a GraphStats>) -> Option<GraphStats> {
        let mut hist = StatsHist::default();
        let mut vertex_count = 0usize;
        let mut edge_count = 0usize;
        for part in parts {
            let part_hist = part.hist.as_ref()?;
            vertex_count += part.vertex_count;
            edge_count += part.edge_count;
            for (t, h) in &part_hist.per_type {
                hist.per_type.entry(t.clone()).or_default().merge_from(h);
            }
            hist.overall.merge_from(&part_hist.overall);
        }
        let per_type = hist
            .per_type
            .iter()
            .map(|(t, h)| (t.clone(), h.summarize()))
            .collect();
        Some(GraphStats {
            per_type,
            vertex_count,
            edge_count,
            overall: hist.overall.summarize(),
            hist: Some(hist),
        })
    }

    /// Applies a batch of per-vertex degree changes, returning the
    /// successor stats without rescanning the graph. Only the touched
    /// types (and the overall summary) are re-summarized; the result is
    /// **exactly** what [`GraphStats::compute`] on the mutated graph
    /// would produce (asserted by tests).
    ///
    /// Returns `None` when these stats carry no histograms (they came
    /// from [`GraphStats::from_parts`]) — fall back to a full compute.
    pub fn with_changes(
        &self,
        changes: &[DegreeChange],
        vertex_count: usize,
        edge_count: usize,
    ) -> Option<GraphStats> {
        let mut hist = self.hist.clone()?;
        let mut touched: Vec<&str> = Vec::new();
        for ch in changes {
            if ch.before == ch.after {
                continue;
            }
            let h = hist.per_type.entry(ch.vtype.clone()).or_default();
            if let Some(d) = ch.before {
                h.remove(d);
                hist.overall.remove(d);
            }
            if let Some(d) = ch.after {
                h.add(d);
                hist.overall.add(d);
            }
            touched.push(&ch.vtype);
        }
        let mut per_type = self.per_type.clone();
        for t in touched {
            match hist.per_type.get(t) {
                Some(h) if h.n > 0 => {
                    per_type.insert(t.to_string(), h.summarize());
                }
                _ => {
                    // last vertex of the type is gone: compute() on the
                    // mutated graph would not list the type at all
                    per_type.remove(t);
                }
            }
        }
        hist.per_type.retain(|_, h| h.n > 0);
        Some(GraphStats {
            per_type,
            vertex_count,
            edge_count,
            overall: hist.overall.summarize(),
            hist: Some(hist),
        })
    }

    /// Whether these stats can be maintained incrementally (they retain
    /// degree histograms).
    pub fn supports_incremental(&self) -> bool {
        self.hist.is_some()
    }

    /// Builds synthetic statistics from explicit parts — used by the
    /// view selector to cost a query against a view that has not been
    /// materialized yet (its size is only *estimated*). Synthetic stats
    /// carry no histograms (see [`GraphStats::with_changes`]).
    pub fn from_parts(
        per_type: Vec<(String, DegreeSummary)>,
        vertex_count: usize,
        edge_count: usize,
        overall: DegreeSummary,
    ) -> Self {
        GraphStats {
            per_type: per_type.into_iter().collect(),
            vertex_count,
            edge_count,
            overall,
            hist: None,
        }
    }

    /// Degree summary for a vertex type, if present.
    pub fn for_type(&self, vtype: &str) -> Option<&DegreeSummary> {
        self.per_type.get(vtype)
    }

    /// Iterates `(type name, summary)` in type-name order.
    pub fn types(&self) -> impl Iterator<Item = (&str, &DegreeSummary)> {
        self.per_type.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct vertex types observed.
    pub fn type_count(&self) -> usize {
        self.per_type.len()
    }

    /// Appends these statistics to `out` with full fidelity — the
    /// retained histograms included, so decoded stats support
    /// [`GraphStats::with_changes`] exactly like the originals and a
    /// recovered engine keeps maintaining stats incrementally.
    pub fn encode(&self, out: &mut crate::codec::Enc) {
        fn summary(s: &DegreeSummary, out: &mut crate::codec::Enc) {
            out.usize(s.cardinality);
            out.usize(s.p50);
            out.usize(s.p90);
            out.usize(s.p95);
            out.usize(s.max);
            out.f64(s.mean);
        }
        fn hist(h: &DegreeHist, out: &mut crate::codec::Enc) {
            out.usize(h.counts.len());
            for (&d, &c) in &h.counts {
                out.usize(d);
                out.usize(c);
            }
            out.usize(h.n);
            out.usize(h.degree_sum);
        }
        out.usize(self.per_type.len());
        for (t, s) in &self.per_type {
            out.str(t);
            summary(s, out);
        }
        out.usize(self.vertex_count);
        out.usize(self.edge_count);
        summary(&self.overall, out);
        match &self.hist {
            None => out.bool(false),
            Some(sh) => {
                out.bool(true);
                out.usize(sh.per_type.len());
                for (t, h) in &sh.per_type {
                    out.str(t);
                    hist(h, out);
                }
                hist(&sh.overall, out);
            }
        }
    }

    /// Decodes statistics written by [`GraphStats::encode`]. The result
    /// is exactly equal (`==`) to the encoded value.
    pub fn decode(d: &mut crate::codec::Dec<'_>) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{CodecError, Dec};
        fn summary(d: &mut Dec<'_>) -> Result<DegreeSummary, CodecError> {
            Ok(DegreeSummary {
                cardinality: d.usize()?,
                p50: d.usize()?,
                p90: d.usize()?,
                p95: d.usize()?,
                max: d.usize()?,
                mean: d.f64()?,
            })
        }
        fn hist(d: &mut Dec<'_>) -> Result<DegreeHist, CodecError> {
            let n = d.count()?;
            let mut counts = BTreeMap::new();
            for _ in 0..n {
                let deg = d.usize()?;
                let c = d.usize()?;
                counts.insert(deg, c);
            }
            Ok(DegreeHist {
                counts,
                n: d.usize()?,
                degree_sum: d.usize()?,
            })
        }
        let nt = d.count()?;
        let mut per_type = BTreeMap::new();
        for _ in 0..nt {
            let t = d.str()?;
            per_type.insert(t, summary(d)?);
        }
        let vertex_count = d.usize()?;
        let edge_count = d.usize()?;
        let overall = summary(d)?;
        let hists = if d.bool()? {
            let nh = d.count()?;
            let mut ht = BTreeMap::new();
            for _ in 0..nh {
                let t = d.str()?;
                ht.insert(t, hist(d)?);
            }
            Some(StatsHist {
                per_type: ht,
                overall: hist(d)?,
            })
        } else {
            None
        };
        Ok(GraphStats {
            per_type,
            vertex_count,
            edge_count,
            overall,
            hist: hists,
        })
    }
}

/// One point of a complementary cumulative degree distribution:
/// `count` vertices have degree strictly greater than `degree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcdfPoint {
    /// Degree threshold.
    pub degree: usize,
    /// Number of vertices with degree > `degree`.
    pub count: usize,
}

/// Complementary cumulative distribution function of out-degrees
/// (the Fig. 8 plots). Returns points for every distinct degree value.
pub fn degree_ccdf(g: &Graph) -> Vec<CcdfPoint> {
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.out_degree(v)).collect();
    degrees.sort_unstable();
    let n = degrees.len();
    let mut points = Vec::new();
    let mut i = 0;
    while i < n {
        let d = degrees[i];
        // advance past all vertices with this degree
        let mut j = i;
        while j < n && degrees[j] == d {
            j += 1;
        }
        points.push(CcdfPoint {
            degree: d,
            count: n - j,
        });
        i = j;
    }
    points
}

/// Least-squares slope of `log10(count)` against `log10(degree)` over the
/// CCDF points with positive degree and count — the best-fit power-law
/// exponent reported in Fig. 8. Returns `None` with fewer than two usable
/// points.
pub fn power_law_exponent(ccdf: &[CcdfPoint]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = ccdf
        .iter()
        .filter(|p| p.degree > 0 && p.count > 0)
        .map(|p| ((p.degree as f64).log10(), (p.count as f64).log10()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn star(center_out: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let c = b.add_vertex("V");
        for _ in 0..center_out {
            let leaf = b.add_vertex("V");
            b.add_edge(c, leaf, "E");
        }
        b.finish()
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut h = DegreeHist::default();
        for d in 1..=10 {
            h.add(d);
        }
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(90.0), 9);
        assert_eq!(h.percentile(95.0), 10);
        assert_eq!(h.percentile(100.0), 10);
        assert_eq!(DegreeHist::default().percentile(50.0), 0);
        let mut one = DegreeHist::default();
        one.add(7);
        assert_eq!(one.percentile(50.0), 7);
    }

    #[test]
    fn with_changes_matches_compute_after_growth() {
        let g = star(4);
        let stats = GraphStats::compute(&g);
        // append one leaf and one edge from the center: center degree
        // 4 → 5, new leaf appears with degree 0
        let mut ed = g.edit();
        let leaf = ed.add_vertex("V");
        ed.add_edge(crate::VertexId(0), leaf, "E");
        let g2 = ed.finish();
        let changes = [
            DegreeChange {
                vtype: "V".into(),
                before: Some(4),
                after: Some(5),
            },
            DegreeChange {
                vtype: "V".into(),
                before: None,
                after: Some(0),
            },
        ];
        let inc = stats
            .with_changes(&changes, g2.vertex_count(), g2.edge_count())
            .unwrap();
        assert_eq!(inc, GraphStats::compute(&g2));
    }

    #[test]
    fn with_changes_matches_compute_after_retraction() {
        let g = star(3);
        let stats = GraphStats::compute(&g);
        // delete one leaf: the cascade kills one center edge too
        let g2 = g.remove_vertices([crate::VertexId(1)]);
        let changes = [
            DegreeChange {
                vtype: "V".into(),
                before: Some(0),
                after: None,
            },
            DegreeChange {
                vtype: "V".into(),
                before: Some(3),
                after: Some(2),
            },
        ];
        let inc = stats
            .with_changes(&changes, g2.vertex_count(), g2.edge_count())
            .unwrap();
        assert_eq!(inc, GraphStats::compute(&g2));
    }

    #[test]
    fn with_changes_removes_emptied_types() {
        let mut b = GraphBuilder::new();
        b.add_vertex("Job");
        b.add_vertex("File");
        let g = b.finish();
        let stats = GraphStats::compute(&g);
        let g2 = g.remove_vertices([crate::VertexId(1)]);
        let inc = stats
            .with_changes(
                &[DegreeChange {
                    vtype: "File".into(),
                    before: Some(0),
                    after: None,
                }],
                g2.vertex_count(),
                g2.edge_count(),
            )
            .unwrap();
        assert!(inc.for_type("File").is_none());
        assert_eq!(inc, GraphStats::compute(&g2));
    }

    #[test]
    fn from_parts_cannot_update_incrementally() {
        let s = GraphStats::from_parts(
            vec![],
            0,
            0,
            DegreeSummary {
                cardinality: 0,
                p50: 0,
                p90: 0,
                p95: 0,
                max: 0,
                mean: 0.0,
            },
        );
        assert!(!s.supports_incremental());
        assert!(s.with_changes(&[], 0, 0).is_none());
    }

    #[test]
    fn compute_skips_ghosts() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        let f = b.add_ghost_vertex("File");
        b.add_edge(j, f, "WRITES_TO");
        let g = b.finish();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertex_count, 1);
        assert_eq!(s.edge_count, 1);
        assert!(s.for_type("File").is_none(), "ghost type not counted");
        assert_eq!(s.for_type("Job").unwrap().max, 1);
    }

    #[test]
    fn merge_of_shards_equals_global_compute() {
        // a two-type graph with skewed degrees, partitioned two ways
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let j1 = b.add_vertex("Job");
        let mut files = Vec::new();
        for i in 0..6 {
            let f = b.add_vertex("File");
            b.add_edge(if i < 4 { j0 } else { j1 }, f, "WRITES_TO");
            files.push(f);
        }
        b.add_edge(files[0], j1, "IS_READ_BY");
        let g = b.finish();
        let global = GraphStats::compute(&g);
        for shards in [1usize, 2, 3] {
            let parts: Vec<GraphStats> = (0..shards)
                .map(|s| GraphStats::compute(&g.shard(&|v| (v.0 as usize) % shards == s)))
                .collect();
            let merged = GraphStats::merge(parts.iter()).unwrap();
            assert_eq!(merged, global, "{shards} shards");
            assert!(merged.supports_incremental());
        }
    }

    #[test]
    fn merge_refuses_synthetic_stats() {
        let g = star(3);
        let real = GraphStats::compute(&g);
        let synthetic = GraphStats::from_parts(
            vec![],
            0,
            0,
            DegreeSummary {
                cardinality: 0,
                p50: 0,
                p90: 0,
                p95: 0,
                max: 0,
                mean: 0.0,
            },
        );
        assert!(GraphStats::merge([&real, &synthetic]).is_none());
        assert_eq!(GraphStats::merge([&real]).unwrap(), real);
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let g = star(9);
        let s = GraphStats::compute(&g);
        let mut e = crate::codec::Enc::new();
        s.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = crate::codec::Dec::new(&bytes);
        let back = GraphStats::decode(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back, s);
        assert!(back.supports_incremental());
        // synthetic stats (no histograms) round-trip too
        let synth = GraphStats::from_parts(
            vec![(
                "V".into(),
                DegreeSummary {
                    cardinality: 3,
                    p50: 1,
                    p90: 2,
                    p95: 2,
                    max: 4,
                    mean: 1.25,
                },
            )],
            3,
            4,
            DegreeSummary {
                cardinality: 3,
                p50: 1,
                p90: 2,
                p95: 2,
                max: 4,
                mean: 1.25,
            },
        );
        let mut e = crate::codec::Enc::new();
        synth.encode(&mut e);
        let bytes = e.into_bytes();
        let back = GraphStats::decode(&mut crate::codec::Dec::new(&bytes)).unwrap();
        assert_eq!(back, synth);
        assert!(!back.supports_incremental());
    }

    #[test]
    fn stats_of_star() {
        let g = star(9);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertex_count, 10);
        assert_eq!(s.edge_count, 9);
        let v = s.for_type("V").unwrap();
        assert_eq!(v.cardinality, 10);
        assert_eq!(v.max, 9);
        assert_eq!(v.p50, 0); // 9 of 10 vertices have degree 0
        assert!((v.mean - 0.9).abs() < 1e-9);
    }

    #[test]
    fn stats_per_type_separated() {
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        for _ in 0..3 {
            let f = b.add_vertex("File");
            b.add_edge(j, f, "WRITES_TO");
        }
        let g = b.finish();
        let s = GraphStats::compute(&g);
        assert_eq!(s.for_type("Job").unwrap().max, 3);
        assert_eq!(s.for_type("File").unwrap().max, 0);
        assert_eq!(s.type_count(), 2);
        assert!(s.for_type("Task").is_none());
    }

    #[test]
    fn degree_at_snaps_to_percentiles() {
        let d = DegreeSummary {
            cardinality: 10,
            p50: 1,
            p90: 5,
            p95: 7,
            max: 20,
            mean: 2.0,
        };
        assert_eq!(d.degree_at(50), 1);
        assert_eq!(d.degree_at(60), 1);
        assert_eq!(d.degree_at(90), 5);
        assert_eq!(d.degree_at(95), 7);
        assert_eq!(d.degree_at(100), 20);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn degree_at_rejects_zero() {
        let d = DegreeSummary {
            cardinality: 1,
            p50: 0,
            p90: 0,
            p95: 0,
            max: 0,
            mean: 0.0,
        };
        d.degree_at(0);
    }

    #[test]
    fn ccdf_monotone_and_complete() {
        let g = star(5);
        let pts = degree_ccdf(&g);
        // degrees present: 0 (5 leaves) and 5 (1 center)
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].degree, 0);
        assert_eq!(pts[0].count, 1); // one vertex with degree > 0
        assert_eq!(pts[1].degree, 5);
        assert_eq!(pts[1].count, 0);
        // counts are non-increasing
        for w in pts.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
    }

    #[test]
    fn power_law_fit_on_synthetic_power_law() {
        // CCDF points lying exactly on count = 1e6 * degree^-2
        let pts: Vec<CcdfPoint> = (1..=100)
            .map(|d| CcdfPoint {
                degree: d,
                count: (1_000_000.0 / (d as f64 * d as f64)) as usize,
            })
            .collect();
        let slope = power_law_exponent(&pts).unwrap();
        assert!((slope + 2.0).abs() < 0.05, "slope={slope}");
    }

    #[test]
    fn power_law_fit_degenerate() {
        assert!(power_law_exponent(&[]).is_none());
        assert!(power_law_exponent(&[CcdfPoint {
            degree: 1,
            count: 5
        }])
        .is_none());
    }
}
