//! Property values stored on vertices and edges.

use std::cmp::Ordering;
use std::fmt;

use crate::interner::Symbol;

/// A property value in the property-graph data model (§III.A of the paper):
/// vertices and edges carry key–value pairs where keys are interned strings
/// and values are one of the scalar types below.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (e.g. CPU hours, timestamps).
    Int(i64),
    /// 64-bit float (e.g. aggregate scores).
    Float(f64),
    /// String payload (e.g. pipeline names).
    Str(String),
    /// Boolean flag (e.g. `privileged`).
    Bool(bool),
}

impl Value {
    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a float view of numeric values (`Int` is widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total order used by `ORDER BY` and aggregate `MIN`/`MAX`: numerics
    /// compare numerically (NaN sorts last), then strings, then booleans;
    /// mixed non-numeric kinds compare by kind tag.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.kind_tag().cmp(&other.kind_tag()),
        }
    }

    fn kind_tag(&self) -> u8 {
        match self {
            Value::Int(_) | Value::Float(_) => 0,
            Value::Str(_) => 1,
            Value::Bool(_) => 2,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A small sorted association list mapping property keys to values.
///
/// Most vertices carry fewer than a handful of properties, so a sorted
/// `Vec` beats a hash map in both space and lookup time here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropMap {
    entries: Vec<(Symbol, Value)>,
}

impl PropMap {
    /// Creates an empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or overwrites `key`.
    pub fn insert(&mut self, key: Symbol, value: Value) {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: Symbol) -> Option<&Value> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn total_cmp_orders_numerics_across_kinds() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn total_cmp_nan_sorts_consistently() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn propmap_insert_get_overwrite() {
        let mut m = PropMap::new();
        let k1 = Symbol(3);
        let k2 = Symbol(1);
        m.insert(k1, Value::Int(10));
        m.insert(k2, Value::Str("a".into()));
        assert_eq!(m.get(k1), Some(&Value::Int(10)));
        m.insert(k1, Value::Int(20));
        assert_eq!(m.get(k1), Some(&Value::Int(20)));
        assert_eq!(m.len(), 2);
        // keys come back sorted
        let keys: Vec<u32> = m.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn propmap_missing_key() {
        let m = PropMap::new();
        assert!(m.get(Symbol(0)).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
