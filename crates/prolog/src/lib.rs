//! # kaskade-prolog
//!
//! A from-scratch Prolog interpreter — the inference-engine substrate of
//! the Kaskade reproduction (the paper uses SWI-Prolog; §IV). Kaskade's
//! constraint mining rules and view templates (paper Listings 2, 3, 5, 6)
//! run on this engine **verbatim**.
//!
//! The supported subset is exactly what those listings need: facts and
//! rules, unification, arithmetic (`is`, comparisons), lists,
//! negation-as-failure, cut, `findall/3`, `setof/3`, `between/3`,
//! higher-order `call/N` (for `foldl`, `convlist`), plus a pure-Prolog
//! prelude (`member/2`, `append/3`, ...).
//!
//! ```
//! use kaskade_prolog::Database;
//!
//! let mut db = Database::with_prelude();
//! db.consult(
//!     "schemaEdge('Job', 'File', 'WRITES_TO').
//!      schemaEdge('File', 'Job', 'IS_READ_BY').
//!      schemaKHopPath(X,Y,K) :- schemaKHopPath(X,Y,K,[]).
//!      schemaKHopPath(X,Y,1,_) :- schemaEdge(X,Y,_).
//!      schemaKHopPath(X,Y,K,Trail) :-
//!        schemaEdge(X,Z,_), not(member(Z,Trail)),
//!        schemaKHopPath(Z,Y,K1,[X|Trail]), K is K1 + 1.",
//! ).unwrap();
//! assert!(db.has_solution("schemaKHopPath('Job', 'Job', 2)").unwrap());
//! assert!(!db.has_solution("schemaKHopPath('Job', 'Job', 3)").unwrap());
//! ```

#![warn(missing_docs)]

mod parser;
mod solver;
mod term;

pub use parser::{parse_program, parse_query, Clause, ParseError};
pub use solver::{Database, PrologError, Solution};
pub use term::Term;
