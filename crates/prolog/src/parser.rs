//! Parser for ISO-style Prolog clauses (the SWI-compatible subset the
//! Kaskade rules use).
//!
//! Supported syntax: facts and rules (`head :- body.`), atoms (lowercase
//! or `'quoted'`), variables (Uppercase / `_`), integers, compound terms,
//! lists (`[a,b|T]`), the operators `:-`, `,`, `is`, `=`, `\=`, `<`,
//! `=<`, `>`, `>=`, `=:=`, `=\=`, `+`, `-`, `*`, `/`, `//`, `mod`, the
//! prefix negation `\+`, cut `!`, and `%` line comments. This covers all
//! of the paper's Listings 2, 3, 5 and 6 verbatim.

use std::collections::HashMap;
use std::fmt;

use crate::term::Term;

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    /// Symbolic or word operator, e.g. `:-`, `is`, `=<`.
    Op(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Bar,
    /// End-of-clause dot.
    Dot,
    /// Cut `!`.
    Bang,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn next(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let c = self.src[self.pos];
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'|' => {
                self.pos += 1;
                Tok::Bar
            }
            b'!' => {
                self.pos += 1;
                Tok::Bang
            }
            b'\'' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    if self.pos >= self.src.len() {
                        return self.err("unterminated quoted atom");
                    }
                    let ch = self.src[self.pos];
                    if ch == b'\'' {
                        // doubled quote is an escaped quote
                        if self.pos + 1 < self.src.len() && self.src[self.pos + 1] == b'\'' {
                            s.push('\'');
                            self.pos += 2;
                            continue;
                        }
                        self.pos += 1;
                        break;
                    }
                    s.push(ch as char);
                    self.pos += 1;
                }
                Tok::Atom(s)
            }
            b'0'..=b'9' => {
                let mut v: i64 = 0;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    v = v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add((self.src[self.pos] - b'0') as i64))
                        .ok_or(ParseError {
                            offset: start,
                            message: "integer literal overflows i64".into(),
                        })?;
                    self.pos += 1;
                }
                Tok::Int(v)
            }
            b'_' | b'A'..=b'Z' => {
                let s = self.take_ident();
                Tok::Var(s)
            }
            b'a'..=b'z' => {
                let s = self.take_ident();
                // word operators
                if s == "is" || s == "mod" {
                    Tok::Op(s)
                } else {
                    Tok::Atom(s)
                }
            }
            b'.' => {
                // end of clause if followed by whitespace/eof/%
                let nxt = self.src.get(self.pos + 1);
                match nxt {
                    None => {
                        self.pos += 1;
                        Tok::Dot
                    }
                    Some(n) if n.is_ascii_whitespace() || *n == b'%' => {
                        self.pos += 1;
                        Tok::Dot
                    }
                    _ => return self.err("unexpected `.` (not end of clause)"),
                }
            }
            _ => {
                // symbolic operator: longest match from the table
                const SYMS: &[&str] = &[
                    ":-", "=:=", "=\\=", "=<", ">=", "\\=", "\\+", "=", "<", ">", "//", "/", "+",
                    "-", "*",
                ];
                let rest = &self.src[self.pos..];
                let mut found = None;
                for s in SYMS {
                    if rest.starts_with(s.as_bytes()) {
                        found = Some(*s);
                        break;
                    }
                }
                match found {
                    Some(s) => {
                        self.pos += s.len();
                        Tok::Op(s.to_string())
                    }
                    None => return self.err(format!("unexpected character `{}`", c as char)),
                }
            }
        };
        Ok(Some((tok, start)))
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// A parsed clause: `head :- body.` with variables numbered `0..nvars`.
/// Facts have an empty body.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Clause head.
    pub head: Term,
    /// Conjunction of body goals (empty for facts).
    pub body: Vec<Term>,
    /// Number of distinct variables in the clause.
    pub nvars: usize,
    /// Names of the variables (index = variable number); `_` variables
    /// get synthesized names.
    pub var_names: Vec<String>,
}

/// Parser over a token stream.
pub struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    vars: HashMap<String, usize>,
    var_names: Vec<String>,
    fresh_counter: usize,
}

/// Binding power of binary operators (ISO-like priorities, inverted so
/// higher binds tighter).
fn infix_power(op: &str) -> Option<(u8, u8)> {
    // (left bp, right bp); left-assoc yfx => (l, l+1)
    match op {
        "=" | "\\=" | "is" | "<" | "=<" | ">" | ">=" | "=:=" | "=\\=" => Some((10, 11)), // xfx 700
        "+" | "-" => Some((20, 21)),                                                     // yfx 500
        "*" | "/" | "//" | "mod" => Some((30, 31)),                                      // yfx 400
        _ => None,
    }
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        let mut lx = Lexer::new(src);
        let mut toks = Vec::new();
        while let Some(t) = lx.next()? {
            toks.push(t);
        }
        Ok(Parser {
            toks,
            pos: 0,
            vars: HashMap::new(),
            var_names: Vec::new(),
            fresh_counter: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.offset(),
            message: msg.into(),
        })
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn var_index(&mut self, name: &str) -> usize {
        if name == "_" {
            let idx = self.var_names.len();
            self.fresh_counter += 1;
            self.var_names.push(format!("_A{}", self.fresh_counter));
            return idx;
        }
        if let Some(&i) = self.vars.get(name) {
            return i;
        }
        let idx = self.var_names.len();
        self.vars.insert(name.to_string(), idx);
        self.var_names.push(name.to_string());
        idx
    }

    /// Parses one term with the Pratt scheme; `min_bp` excludes looser
    /// operators (used to keep `,` as argument separator).
    fn parse_term(&mut self, min_bp: u8) -> Result<Term, ParseError> {
        let mut lhs = self.parse_primary()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let op = op.clone();
            let Some((l_bp, r_bp)) = infix_power(&op) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.parse_term(r_bp)?;
            lhs = Term::Compound(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Term::Int(v)),
            Some(Tok::Var(name)) => Ok(Term::Var(self.var_index(&name))),
            Some(Tok::Bang) => Ok(Term::atom("!")),
            Some(Tok::Op(op)) if op == "-" => {
                // unary minus on integer literal or expression
                match self.peek() {
                    Some(Tok::Int(v)) => {
                        let v = *v;
                        self.bump();
                        Ok(Term::Int(-v))
                    }
                    _ => {
                        let arg = self.parse_term(40)?;
                        Ok(Term::Compound("-".into(), vec![Term::Int(0), arg]))
                    }
                }
            }
            Some(Tok::Op(op)) if op == "\\+" => {
                let arg = self.parse_term(12)?;
                Ok(Term::Compound("not".into(), vec![arg]))
            }
            Some(Tok::Atom(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.parse_term(0)?);
                        match self.bump() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RParen) => break,
                            other => {
                                return self
                                    .err(format!("expected `,` or `)` in args, found {other:?}"))
                            }
                        }
                    }
                    Ok(Term::Compound(name, args))
                } else {
                    Ok(Term::Atom(name))
                }
            }
            Some(Tok::LParen) => {
                let t = self.parse_conjunction_or_term()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(t)
            }
            Some(Tok::LBracket) => self.parse_list(),
            other => self.err(format!("expected a term, found {other:?}")),
        }
    }

    /// Inside parens, a `,` builds a conjunction term `','(A, B)`.
    fn parse_conjunction_or_term(&mut self) -> Result<Term, ParseError> {
        let first = self.parse_term(0)?;
        if self.peek() == Some(&Tok::Comma) {
            self.bump();
            let rest = self.parse_conjunction_or_term()?;
            Ok(Term::Compound(",".into(), vec![first, rest]))
        } else {
            Ok(first)
        }
    }

    fn parse_list(&mut self) -> Result<Term, ParseError> {
        if self.peek() == Some(&Tok::RBracket) {
            self.bump();
            return Ok(Term::nil());
        }
        let mut items = vec![self.parse_term(0)?];
        loop {
            match self.bump() {
                Some(Tok::Comma) => items.push(self.parse_term(0)?),
                Some(Tok::Bar) => {
                    let tail = self.parse_term(0)?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    return Ok(items
                        .into_iter()
                        .rev()
                        .fold(tail, |acc, h| Term::cons(h, acc)));
                }
                Some(Tok::RBracket) => {
                    return Ok(Term::list(items));
                }
                other => return self.err(format!("expected `,`, `|`, or `]`, found {other:?}")),
            }
        }
    }

    /// Splits a (possibly `','`-nested) goal term into a flat conjunction.
    fn flatten_conjunction(t: Term, out: &mut Vec<Term>) {
        match t {
            Term::Compound(f, args) if f == "," && args.len() == 2 => {
                let mut it = args.into_iter();
                Self::flatten_conjunction(it.next().unwrap(), out);
                Self::flatten_conjunction(it.next().unwrap(), out);
            }
            other => out.push(other),
        }
    }

    fn parse_clause(&mut self) -> Result<Clause, ParseError> {
        self.vars.clear();
        self.var_names.clear();
        let head = self.parse_term(0)?;
        match head {
            Term::Atom(_) | Term::Compound(_, _) => {}
            _ => return self.err("clause head must be an atom or compound term"),
        }
        let mut body = Vec::new();
        match self.bump() {
            Some(Tok::Dot) => {}
            Some(Tok::Op(op)) if op == ":-" => {
                // body: goals separated by top-level commas
                loop {
                    let goal = self.parse_term(0)?;
                    Self::flatten_conjunction(goal, &mut body);
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::Dot) => break,
                        other => {
                            return self.err(format!("expected `,` or `.`, found {other:?}"));
                        }
                    }
                }
            }
            other => return self.err(format!("expected `:-` or `.`, found {other:?}")),
        }
        Ok(Clause {
            head,
            body,
            nvars: self.var_names.len(),
            var_names: self.var_names.clone(),
        })
    }
}

/// Parses a full program: zero or more clauses.
pub fn parse_program(src: &str) -> Result<Vec<Clause>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut clauses = Vec::new();
    while p.peek().is_some() {
        clauses.push(p.parse_clause()?);
    }
    Ok(clauses)
}

/// Parses a query: a conjunction of goals terminated by optional `.`.
/// Returns the goals plus the named variables in first-occurrence order.
pub fn parse_query(src: &str) -> Result<(Vec<Term>, Vec<String>), ParseError> {
    let trimmed = src.trim();
    let with_dot = if trimmed.ends_with('.') {
        trimmed.to_string()
    } else {
        format!("{trimmed}.")
    };
    let mut p = Parser::new(&format!("'$query' :- {with_dot}"))?;
    let clause = p.parse_clause()?;
    if p.peek().is_some() {
        return Err(ParseError {
            offset: p.offset(),
            message: "trailing tokens after query".into(),
        });
    }
    Ok((clause.body, clause.var_names))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse1(src: &str) -> Clause {
        let cs = parse_program(src).unwrap();
        assert_eq!(cs.len(), 1, "expected one clause");
        cs.into_iter().next().unwrap()
    }

    #[test]
    fn parse_fact() {
        let c = parse1("schemaEdge('Job', 'File', 'WRITES_TO').");
        assert_eq!(
            c.head,
            Term::compound(
                "schemaEdge",
                vec![
                    Term::atom("Job"),
                    Term::atom("File"),
                    Term::atom("WRITES_TO")
                ]
            )
        );
        assert!(c.body.is_empty());
        assert_eq!(c.nvars, 0);
    }

    #[test]
    fn parse_rule_with_arith() {
        let c = parse1("f(X, K) :- g(X, K1), K is K1 + 1.");
        assert_eq!(c.body.len(), 2);
        assert_eq!(c.nvars, 3);
        // K is K1+1  =>  is(K, +(K1, 1))
        assert_eq!(
            c.body[1],
            Term::compound(
                "is",
                vec![
                    Term::Var(1),
                    Term::compound("+", vec![Term::Var(2), Term::int(1)])
                ]
            )
        );
    }

    #[test]
    fn parse_paper_rule_schema_k_hop_path() {
        // Lst. 2 of the paper, verbatim.
        let src = "
            schemaKHopPath(X,Y,K) :- schemaKHopPath(X,Y,K,[]).
            schemaKHopPath(X,Y,1,_) :- schemaEdge(X,Y,_).
            schemaKHopPath(X,Y,K,Trail) :-
              schemaEdge(X,Z,_), not(member(Z,Trail)),
              schemaKHopPath(Z,Y,K1,[X|Trail]), K is K1 + 1.
        ";
        let cs = parse_program(src).unwrap();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[2].body.len(), 4);
        assert_eq!(cs[2].body[1].functor(), Some(("not", 1)));
    }

    #[test]
    fn parse_list_syntax() {
        let c = parse1("f([a,b|T], []).");
        let args = match &c.head {
            Term::Compound(_, a) => a,
            _ => panic!(),
        };
        assert_eq!(
            args[0],
            Term::cons(Term::atom("a"), Term::cons(Term::atom("b"), Term::Var(0)))
        );
        assert!(args[1].is_nil());
    }

    #[test]
    fn underscore_vars_are_fresh() {
        let c = parse1("f(_, _, X, X).");
        assert_eq!(c.nvars, 3); // two fresh + one named
    }

    #[test]
    fn comments_are_skipped() {
        let cs = parse_program("% header\nf(a). % trailing\n% again\ng(b).").unwrap();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn negative_literal() {
        let c = parse1("f(-3).");
        assert_eq!(c.head, Term::compound("f", vec![Term::int(-3)]));
    }

    #[test]
    fn prefix_negation_sugar() {
        let c = parse1("f(X) :- \\+ g(X).");
        assert_eq!(
            c.body[0],
            Term::compound("not", vec![Term::compound("g", vec![Term::Var(0)])])
        );
    }

    #[test]
    fn operator_precedence() {
        let c = parse1("t :- X is 1 + 2 * 3 - 4.");
        // ((1 + (2*3)) - 4)
        let expected = Term::compound(
            "is",
            vec![
                Term::Var(0),
                Term::compound(
                    "-",
                    vec![
                        Term::compound(
                            "+",
                            vec![
                                Term::int(1),
                                Term::compound("*", vec![Term::int(2), Term::int(3)]),
                            ],
                        ),
                        Term::int(4),
                    ],
                ),
            ],
        );
        assert_eq!(c.body[0], expected);
    }

    #[test]
    fn parenthesized_conjunction_in_not() {
        let c = parse1("f(X) :- not((g(X), h(X))).");
        let inner = match &c.body[0] {
            Term::Compound(f, args) if f == "not" => &args[0],
            _ => panic!(),
        };
        assert_eq!(inner.functor(), Some((",", 2)));
    }

    #[test]
    fn quoted_atoms_with_specials() {
        let c = parse1("f('2_HOP-JOB_TO_JOB', 'it''s').");
        let args = match &c.head {
            Term::Compound(_, a) => a,
            _ => panic!(),
        };
        assert_eq!(args[0], Term::atom("2_HOP-JOB_TO_JOB"));
        assert_eq!(args[1], Term::atom("it's"));
    }

    #[test]
    fn parse_query_returns_named_vars() {
        let (goals, vars) = parse_query("kHopConnector(X, Y, XT, YT, K)").unwrap();
        assert_eq!(goals.len(), 1);
        assert_eq!(vars, vec!["X", "Y", "XT", "YT", "K"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("f(a)").is_err()); // missing dot
        assert!(parse_program("f(a,).").is_err());
        assert!(parse_program("f(]).").is_err());
        assert!(parse_program(":- .").is_err());
        assert!(parse_program("'unterminated").is_err());
    }

    #[test]
    fn cut_token() {
        let c = parse1("f(X) :- g(X), !, h(X).");
        assert_eq!(c.body[1], Term::atom("!"));
    }

    #[test]
    fn comparison_operators_parse() {
        for op in ["<", "=<", ">", ">=", "=:=", "=\\="] {
            let src = format!("t :- 1 {op} 2.");
            assert!(parse_program(&src).is_ok(), "op {op}");
        }
    }

    #[test]
    fn nested_lists_and_compounds() {
        let c = parse1("f([[1,2],[3]], g(h(x), [a|T])).");
        let args = match &c.head {
            Term::Compound(_, a) => a,
            _ => panic!(),
        };
        let outer = args[0].as_list().unwrap();
        assert_eq!(outer.len(), 2);
        assert_eq!(outer[0].as_list().unwrap().len(), 2);
    }

    #[test]
    fn clause_end_dot_vs_operator() {
        // `.` immediately followed by non-space inside args is an error
        assert!(parse_program("f(a.b).").is_err());
        // but end-of-clause before EOF works
        assert!(parse_program("f(a).").is_ok());
    }

    #[test]
    fn findall_with_compound_template() {
        let c = parse1("f(L) :- findall(p(X,Y), q(X,Y), L).");
        assert_eq!(c.body[0].functor(), Some(("findall", 3)));
    }
}
