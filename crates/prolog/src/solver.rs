//! SLD resolution with backtracking — the inference engine proper.
//!
//! [`Database`] stores clauses indexed by functor/arity; [`Database::query`]
//! runs a goal conjunction and returns bindings for the named variables.
//! The engine supports the SWI-Prolog subset the Kaskade rules need:
//! unification, arithmetic (`is`, comparisons), negation-as-failure
//! (`not/1`, `\+`), cut (`!`), `findall/3`, `setof/3`, `between/3`,
//! `length/2`, `sort/2`, `msort/2`, `call/N`, plus a pure-Prolog prelude
//! (`member/2`, `append/3`, `foldl/4`, ...).
//!
//! Solutions are produced through a callback so enumeration is lazy; a
//! step budget guards against runaway recursion in user rules.

use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

use crate::parser::{parse_program, parse_query, Clause, ParseError};
use crate::term::Term;

/// Errors raised during consult or query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrologError {
    /// Source failed to parse.
    Parse(ParseError),
    /// A goal referenced a predicate with no clauses and no dynamic
    /// declaration (mirrors SWI's unknown-procedure error).
    UnknownPredicate(String, usize),
    /// Arithmetic was applied to an unbound variable.
    NotInstantiated(String),
    /// An arithmetic expression had a non-numeric operand or unknown
    /// function.
    ArithmeticType(String),
    /// Division or modulo by zero.
    DivisionByZero,
    /// The inference step budget was exhausted (guards non-terminating
    /// rule sets).
    StepLimitExceeded(u64),
    /// The resolution depth limit was exceeded (guards unbounded
    /// left-recursion before the Rust stack does).
    DepthLimitExceeded(usize),
    /// A goal was not callable (e.g. calling an integer).
    NotCallable(String),
    /// A clause head had no functor (e.g. a bare variable or integer),
    /// so it cannot be stored under a predicate.
    MalformedClause(String),
}

impl fmt::Display for PrologError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrologError::Parse(e) => write!(f, "{e}"),
            PrologError::UnknownPredicate(name, ar) => {
                write!(f, "unknown predicate {name}/{ar}")
            }
            PrologError::NotInstantiated(ctx) => {
                write!(f, "arguments not sufficiently instantiated in {ctx}")
            }
            PrologError::ArithmeticType(e) => write!(f, "arithmetic type error: {e}"),
            PrologError::DivisionByZero => write!(f, "division by zero"),
            PrologError::StepLimitExceeded(n) => write!(f, "inference step limit exceeded ({n})"),
            PrologError::DepthLimitExceeded(n) => {
                write!(f, "resolution depth limit exceeded ({n})")
            }
            PrologError::NotCallable(t) => write!(f, "goal not callable: {t}"),
            PrologError::MalformedClause(h) => {
                write!(f, "clause head must have a functor, got: {h}")
            }
        }
    }
}

impl std::error::Error for PrologError {}

impl From<ParseError> for PrologError {
    fn from(e: ParseError) -> Self {
        PrologError::Parse(e)
    }
}

/// Pure-Prolog library loaded by [`Database::with_prelude`].
const PRELUDE: &str = r#"
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
reverse(L, R) :- reverse_acc(L, [], R).
reverse_acc([], A, A).
reverse_acc([H|T], A, R) :- reverse_acc(T, [H|A], R).
last([X], X).
last([_|T], X) :- last(T, X).
nth0(0, [X|_], X).
nth0(N, [_|T], X) :- N > 0, N1 is N - 1, nth0(N1, T, X).
foldl(_, [], A, A).
foldl(G, [H|T], A0, A) :- call(G, H, A0, A1), foldl(G, T, A1, A).
maplist(_, []).
maplist(G, [H|T]) :- call(G, H), maplist(G, T).
maplist2(_, [], []).
maplist2(G, [H|T], [H2|T2]) :- call(G, H, H2), maplist2(G, T, T2).
convlist(_, [], []).
convlist(G, [H|T], [X|R]) :- call(G, H, X), convlist(G, T, R).
convlist(G, [H|T], R) :- not(call(G, H, _)), convlist(G, T, R).
sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.
max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).
min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).
"#;

/// First-argument index key: the principal functor of a clause head's
/// first argument. Two non-variable terms with different keys can never
/// unify, so goal resolution skips those clauses without attempting
/// unification (classic first-argument indexing).
#[derive(Debug, Clone, PartialEq, Eq)]
enum ArgKey {
    Atom(String),
    Int(i64),
    Compound(String, usize),
}

fn arg_key(t: &Term) -> Option<ArgKey> {
    match t {
        Term::Atom(a) => Some(ArgKey::Atom(a.clone())),
        Term::Int(i) => Some(ArgKey::Int(*i)),
        Term::Compound(f, args) => Some(ArgKey::Compound(f.clone(), args.len())),
        Term::Var(_) => None,
    }
}

/// Allocation-free conflict test between a (dereferenced) goal first
/// argument and a clause's index key. `true` means unification is
/// impossible.
fn key_conflicts(t: &Term, k: &ArgKey) -> bool {
    match (t, k) {
        (Term::Var(_), _) => false,
        (Term::Atom(a), ArgKey::Atom(b)) => a != b,
        (Term::Int(i), ArgKey::Int(j)) => i != j,
        (Term::Compound(f, args), ArgKey::Compound(g, n)) => f != g || args.len() != *n,
        _ => true, // different term kinds never unify
    }
}

/// A stored clause plus its first-argument index key (None = variable
/// first argument, matches anything).
#[derive(Debug, Clone)]
struct IndexedClause {
    clause: Clause,
    key: Option<ArgKey>,
}

/// A clause database plus dynamic-predicate declarations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    clauses: HashMap<(String, usize), Vec<IndexedClause>>,
    dynamic: HashSet<(String, usize)>,
    /// Inference step budget per query (default 50 million).
    pub max_steps: u64,
    /// Resolution depth limit per query (default 10,000); guards unbounded
    /// left-recursion before the native stack overflows.
    pub max_depth: usize,
}

/// One solution: named query variables with their (resolved) bindings, in
/// first-occurrence order.
pub type Solution = Vec<(String, Term)>;

impl Database {
    /// An empty database (no prelude).
    pub fn new() -> Self {
        Database {
            clauses: HashMap::new(),
            dynamic: HashSet::new(),
            max_steps: 50_000_000,
            max_depth: 10_000,
        }
    }

    /// A database preloaded with the list/arithmetic prelude
    /// (`member/2`, `append/3`, `foldl/4`, ...).
    pub fn with_prelude() -> Self {
        let mut db = Database::new();
        db.consult(PRELUDE).expect("prelude must parse");
        db
    }

    /// Parses and adds all clauses in `src`. Returns how many were added.
    pub fn consult(&mut self, src: &str) -> Result<usize, PrologError> {
        let clauses = parse_program(src)?;
        let n = clauses.len();
        for c in clauses {
            self.assert_clause(c)?;
        }
        Ok(n)
    }

    /// Adds a parsed clause at the end of its predicate (assertz).
    /// Fails with [`PrologError::MalformedClause`] if the head is not an
    /// atom or compound term (e.g. a bare variable or integer).
    pub fn assert_clause(&mut self, clause: Clause) -> Result<(), PrologError> {
        let pred = match clause.head.functor() {
            Some((f, a)) => (f.to_string(), a),
            None => return Err(PrologError::MalformedClause(clause.head.to_string())),
        };
        self.insert_clause(pred, clause);
        Ok(())
    }

    /// Stores a clause whose predicate has already been resolved.
    fn insert_clause(&mut self, pred: (String, usize), clause: Clause) {
        let key = match &clause.head {
            Term::Compound(_, args) => arg_key(&args[0]),
            _ => None,
        };
        self.clauses
            .entry(pred)
            .or_default()
            .push(IndexedClause { clause, key });
    }

    /// Adds a ground fact `functor(args...)`.
    pub fn add_fact(&mut self, functor: &str, args: Vec<Term>) {
        let pred = (functor.to_string(), args.len());
        let head = if args.is_empty() {
            Term::atom(functor)
        } else {
            Term::Compound(functor.to_string(), args)
        };
        self.insert_clause(
            pred,
            Clause {
                head,
                body: vec![],
                nvars: 0,
                var_names: vec![],
            },
        );
    }

    /// Declares `functor/arity` as dynamic: calling it with zero clauses
    /// fails instead of erroring (mirrors SWI `:- dynamic f/N.`).
    pub fn declare_dynamic(&mut self, functor: &str, arity: usize) {
        self.dynamic.insert((functor.to_string(), arity));
    }

    /// Number of clauses for `functor/arity`.
    pub fn clause_count(&self, functor: &str, arity: usize) -> usize {
        self.clauses
            .get(&(functor.to_string(), arity))
            .map_or(0, Vec::len)
    }

    /// Retracts every clause of `functor/arity`, returning how many were
    /// removed. The predicate keeps behaving as dynamic afterwards if it
    /// was declared so.
    pub fn retract_all(&mut self, functor: &str, arity: usize) -> usize {
        self.clauses
            .remove(&(functor.to_string(), arity))
            .map_or(0, |v| v.len())
    }

    /// Runs `query_src` and collects every solution.
    pub fn query(&self, query_src: &str) -> Result<Vec<Solution>, PrologError> {
        self.query_limit(query_src, usize::MAX)
    }

    /// Runs `query_src`, collecting at most `limit` solutions.
    ///
    /// Resolution runs on a dedicated thread with a large stack so that
    /// deep (but bounded) recursion in user rules cannot overflow the
    /// caller's stack; the depth limit still bounds runaway recursion.
    pub fn query_limit(&self, query_src: &str, limit: usize) -> Result<Vec<Solution>, PrologError> {
        run_with_big_stack(|| self.query_limit_inline(query_src, limit))
    }

    fn query_limit_inline(
        &self,
        query_src: &str,
        limit: usize,
    ) -> Result<Vec<Solution>, PrologError> {
        let (goals, var_names) = parse_query(query_src)?;
        let mut machine = Machine::new(self);
        // allocate the query variables
        let nvars = var_names.len();
        machine.bindings.resize(nvars, None);
        let mut solutions = Vec::new();
        machine.solve_all(&goals, &mut |m| {
            let sol: Solution = var_names
                .iter()
                .enumerate()
                .filter(|(_, name)| !name.starts_with('_'))
                .map(|(i, name)| (name.clone(), m.resolve(&Term::Var(i))))
                .collect();
            solutions.push(sol);
            Ok(solutions.len() >= limit)
        })?;
        Ok(solutions)
    }

    /// Whether `query_src` has at least one solution.
    pub fn has_solution(&self, query_src: &str) -> Result<bool, PrologError> {
        Ok(!self.query_limit(query_src, 1)?.is_empty())
    }

    /// Total inference steps consumed by the last call is not retained;
    /// use [`Database::query_with_stats`] to measure.
    pub fn query_with_stats(&self, query_src: &str) -> Result<(Vec<Solution>, u64), PrologError> {
        run_with_big_stack(|| self.query_with_stats_inline(query_src))
    }

    fn query_with_stats_inline(
        &self,
        query_src: &str,
    ) -> Result<(Vec<Solution>, u64), PrologError> {
        let (goals, var_names) = parse_query(query_src)?;
        let mut machine = Machine::new(self);
        machine.bindings.resize(var_names.len(), None);
        let mut solutions = Vec::new();
        machine.solve_all(&goals, &mut |m| {
            let sol: Solution = var_names
                .iter()
                .enumerate()
                .filter(|(_, name)| !name.starts_with('_'))
                .map(|(i, name)| (name.clone(), m.resolve(&Term::Var(i))))
                .collect();
            solutions.push(sol);
            Ok(false)
        })?;
        Ok((solutions, machine.steps))
    }
}

/// Runs `f` on a scoped thread with a 256 MiB stack. SLD resolution uses
/// native-stack recursion (a few Rust frames per resolution level), so a
/// query at the default depth limit of 10,000 needs far more stack than
/// the 2 MiB Rust gives spawned (e.g. test) threads.
fn run_with_big_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    const STACK: usize = 256 * 1024 * 1024;
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(STACK)
            .name("prolog-solver".into())
            .spawn_scoped(scope, f)
            .expect("failed to spawn solver thread")
            .join()
            .expect("solver thread panicked")
    })
}

/// Continuation result: `Ok(true)` means "stop enumerating".
type Cont<'k> = &'k mut dyn FnMut(&mut Machine) -> Result<bool, PrologError>;

/// The resolution machine: binding store plus trail.
struct Machine<'a> {
    db: &'a Database,
    bindings: Vec<Option<Term>>,
    trail: Vec<usize>,
    steps: u64,
    depth: usize,
    call_counter: usize,
    /// When set, unwinding should skip clause alternatives until the
    /// invocation with this id.
    cut_signal: Option<usize>,
}

impl<'a> Machine<'a> {
    fn new(db: &'a Database) -> Self {
        Machine {
            db,
            bindings: Vec::new(),
            trail: Vec::new(),
            steps: 0,
            depth: 0,
            call_counter: 0,
            cut_signal: None,
        }
    }

    fn tick(&mut self) -> Result<(), PrologError> {
        self.steps += 1;
        if self.steps > self.db.max_steps {
            return Err(PrologError::StepLimitExceeded(self.db.max_steps));
        }
        Ok(())
    }

    /// Follows variable bindings one level at a time until reaching a
    /// non-variable or an unbound variable.
    fn deref(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        while let Term::Var(v) = cur {
            match &self.bindings[v] {
                Some(bound) => cur = bound.clone(),
                None => return Term::Var(v),
            }
        }
        cur
    }

    /// Fully resolves a term, substituting all bound variables.
    fn resolve(&self, t: &Term) -> Term {
        match self.deref(t) {
            Term::Compound(f, args) => {
                Term::Compound(f, args.iter().map(|a| self.resolve(a)).collect())
            }
            other => other,
        }
    }

    fn bind(&mut self, v: usize, t: Term) {
        debug_assert!(self.bindings[v].is_none());
        self.bindings[v] = Some(t);
        self.trail.push(v);
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().unwrap();
            self.bindings[v] = None;
        }
    }

    fn unify(&mut self, a: &Term, b: &Term) -> bool {
        let a = self.deref(a);
        let b = self.deref(b);
        match (a, b) {
            (Term::Var(v), Term::Var(w)) if v == w => true,
            (Term::Var(v), other) => {
                self.bind(v, other);
                true
            }
            (other, Term::Var(v)) => {
                self.bind(v, other);
                true
            }
            (Term::Atom(x), Term::Atom(y)) => x == y,
            (Term::Int(x), Term::Int(y)) => x == y,
            (Term::Compound(f, xs), Term::Compound(g, ys)) => {
                f == g && xs.len() == ys.len() && xs.iter().zip(&ys).all(|(x, y)| self.unify(x, y))
            }
            _ => false,
        }
    }

    /// Allocates `n` fresh variables, returning the base index.
    fn fresh_vars(&mut self, n: usize) -> usize {
        let base = self.bindings.len();
        self.bindings.resize(base + n, None);
        base
    }

    /// Copies a resolved term, renaming any remaining unbound variables to
    /// fresh ones (the `copy_term` used by findall).
    fn copy_with_fresh(&mut self, t: &Term, map: &mut HashMap<usize, usize>) -> Term {
        match self.deref(t) {
            Term::Var(v) => {
                let nv = *map.entry(v).or_insert_with(|| {
                    let base = self.bindings.len();
                    self.bindings.push(None);
                    base
                });
                Term::Var(nv)
            }
            Term::Compound(f, args) => {
                let copied = args.iter().map(|a| self.copy_with_fresh(a, map)).collect();
                Term::Compound(f, copied)
            }
            other => other,
        }
    }

    /// Solves a conjunction: calls `k` once per solution; stops early if
    /// `k` returns `Ok(true)`.
    fn solve_all(&mut self, goals: &[Term], k: Cont) -> Result<bool, PrologError> {
        match goals.split_first() {
            None => k(self),
            Some((goal, rest)) => self.solve_goal(goal, rest, k),
        }
    }

    fn solve_goal(&mut self, goal: &Term, rest: &[Term], k: Cont) -> Result<bool, PrologError> {
        self.tick()?;
        let goal = self.deref(goal);
        let (functor, args): (&str, &[Term]) = match &goal {
            Term::Atom(a) => (a.as_str(), &[]),
            Term::Compound(f, args) => (f.as_str(), args.as_slice()),
            other => return Err(PrologError::NotCallable(other.to_string())),
        };
        match (functor, args.len()) {
            ("true", 0) => self.solve_all(rest, k),
            ("fail", 0) | ("false", 0) => Ok(false),
            ("!", 0) => {
                // bare cut outside a clause body: cut to query level —
                // solve rest once, then stop alternatives via signal 0
                let stop = self.solve_all(rest, k)?;
                if !stop {
                    self.cut_signal = Some(0);
                }
                Ok(stop)
            }
            ("$cut", 1) => {
                let id = match self.deref(&args[0]) {
                    Term::Int(i) => i as usize,
                    _ => unreachable!("$cut argument is always an integer"),
                };
                let stop = self.solve_all(rest, k)?;
                if !stop {
                    self.cut_signal = Some(id);
                }
                Ok(stop)
            }
            (",", 2) => {
                // conjunction that survived as a term (e.g. inside not)
                let mut new_goals = vec![args[0].clone(), args[1].clone()];
                new_goals.extend_from_slice(rest);
                self.solve_all(&new_goals, k)
            }
            ("=", 2) => {
                let mark = self.trail.len();
                if self.unify(&args[0], &args[1]) {
                    let stop = self.solve_all(rest, k)?;
                    if stop {
                        return Ok(true);
                    }
                }
                self.undo_to(mark);
                Ok(false)
            }
            ("\\=", 2) => {
                let mark = self.trail.len();
                let unifies = self.unify(&args[0], &args[1]);
                self.undo_to(mark);
                if unifies {
                    Ok(false)
                } else {
                    self.solve_all(rest, k)
                }
            }
            ("is", 2) => {
                let v = self.eval_arith(&args[1])?;
                let mark = self.trail.len();
                if self.unify(&args[0], &Term::Int(v)) {
                    let stop = self.solve_all(rest, k)?;
                    if stop {
                        return Ok(true);
                    }
                }
                self.undo_to(mark);
                Ok(false)
            }
            ("<", 2) | ("=<", 2) | (">", 2) | (">=", 2) | ("=:=", 2) | ("=\\=", 2) => {
                let l = self.eval_arith(&args[0])?;
                let r = self.eval_arith(&args[1])?;
                let holds = match functor {
                    "<" => l < r,
                    "=<" => l <= r,
                    ">" => l > r,
                    ">=" => l >= r,
                    "=:=" => l == r,
                    "=\\=" => l != r,
                    _ => unreachable!(),
                };
                if holds {
                    self.solve_all(rest, k)
                } else {
                    Ok(false)
                }
            }
            ("not", 1) | ("\\+", 1) => {
                let mark = self.trail.len();
                let saved_cut = self.cut_signal.take();
                let mut found = false;
                let inner = args[0].clone();
                self.solve_all(std::slice::from_ref(&inner), &mut |_m| {
                    found = true;
                    Ok(true)
                })?;
                self.undo_to(mark);
                self.cut_signal = saved_cut;
                if found {
                    Ok(false)
                } else {
                    self.solve_all(rest, k)
                }
            }
            ("var", 1) => {
                if matches!(self.deref(&args[0]), Term::Var(_)) {
                    self.solve_all(rest, k)
                } else {
                    Ok(false)
                }
            }
            ("nonvar", 1) => {
                if matches!(self.deref(&args[0]), Term::Var(_)) {
                    Ok(false)
                } else {
                    self.solve_all(rest, k)
                }
            }
            ("atom", 1) => {
                if matches!(self.deref(&args[0]), Term::Atom(_)) {
                    self.solve_all(rest, k)
                } else {
                    Ok(false)
                }
            }
            ("integer", 1) => {
                if matches!(self.deref(&args[0]), Term::Int(_)) {
                    self.solve_all(rest, k)
                } else {
                    Ok(false)
                }
            }
            ("ground", 1) => {
                if self.resolve(&args[0]).is_ground() {
                    self.solve_all(rest, k)
                } else {
                    Ok(false)
                }
            }
            ("between", 3) => self.builtin_between(args, rest, k),
            ("length", 2) => self.builtin_length(args, rest, k),
            ("findall", 3) => self.builtin_findall(args, rest, k),
            ("setof", 3) => self.builtin_setof(args, rest, k),
            ("sort", 2) => self.builtin_sort(args, rest, true, k),
            ("msort", 2) => self.builtin_sort(args, rest, false, k),
            ("call", n) if n >= 1 => {
                let target = self.deref(&args[0]);
                let extra = &args[1..];
                let combined = match target {
                    Term::Atom(a) => {
                        if extra.is_empty() {
                            Term::Atom(a)
                        } else {
                            Term::Compound(a, extra.to_vec())
                        }
                    }
                    Term::Compound(f, mut base) => {
                        base.extend_from_slice(extra);
                        Term::Compound(f, base)
                    }
                    other => return Err(PrologError::NotCallable(other.to_string())),
                };
                // call/N is opaque to cut: give it its own barrier
                let saved = self.cut_signal.take();
                let r = self.solve_goal(&combined, rest, k);
                if self.cut_signal.is_some() && !matches!(r, Ok(true)) {
                    self.cut_signal = None;
                }
                if self.cut_signal.is_none() {
                    self.cut_signal = saved;
                }
                r
            }
            _ => self.solve_user_predicate(&goal, functor, args.len(), rest, k),
        }
    }

    fn solve_user_predicate(
        &mut self,
        goal: &Term,
        functor: &str,
        arity: usize,
        rest: &[Term],
        k: Cont,
    ) -> Result<bool, PrologError> {
        let key = (functor.to_string(), arity);
        let Some(clauses) = self.db.clauses.get(&key) else {
            if self.db.dynamic.contains(&key) {
                return Ok(false);
            }
            return Err(PrologError::UnknownPredicate(functor.to_string(), arity));
        };
        self.call_counter += 1;
        let my_id = self.call_counter;
        self.depth += 1;
        if self.depth > self.db.max_depth {
            self.depth -= 1;
            return Err(PrologError::DepthLimitExceeded(self.db.max_depth));
        }
        let result = self.run_clauses(goal, clauses, my_id, rest, k);
        self.depth -= 1;
        result
    }

    fn run_clauses(
        &mut self,
        goal: &Term,
        clauses: &[IndexedClause],
        my_id: usize,
        rest: &[Term],
        k: Cont,
    ) -> Result<bool, PrologError> {
        // first-argument indexing: a bound, non-variable first argument
        // of the goal prunes clauses with a conflicting index key
        let goal_first: Option<Term> = match goal {
            Term::Compound(_, args) => Some(self.deref(&args[0])),
            _ => None,
        };
        for indexed in clauses {
            if let (Some(gf), Some(ck)) = (&goal_first, &indexed.key) {
                if key_conflicts(gf, ck) {
                    continue; // cannot unify — skip without renaming
                }
            }
            let clause = &indexed.clause;
            let mark = self.trail.len();
            let base = self.fresh_vars(clause.nvars);
            let head = clause.head.offset_vars(base);
            if self.unify(goal, &head) {
                let mut new_goals: Vec<Term> = Vec::with_capacity(clause.body.len() + rest.len());
                for g in &clause.body {
                    let g = g.offset_vars(base);
                    // wire cut to this invocation
                    if g == Term::atom("!") {
                        new_goals.push(Term::compound("$cut", vec![Term::Int(my_id as i64)]));
                    } else {
                        new_goals.push(g);
                    }
                }
                new_goals.extend_from_slice(rest);
                if self.solve_all(&new_goals, k)? {
                    return Ok(true);
                }
            }
            self.undo_to(mark);
            if let Some(sig) = self.cut_signal {
                if sig == my_id {
                    self.cut_signal = None;
                }
                break;
            }
        }
        Ok(false)
    }

    fn builtin_between(
        &mut self,
        args: &[Term],
        rest: &[Term],
        k: Cont,
    ) -> Result<bool, PrologError> {
        let lo = self.eval_arith(&args[0])?;
        let hi = self.eval_arith(&args[1])?;
        match self.deref(&args[2]) {
            Term::Int(x) => {
                if lo <= x && x <= hi {
                    self.solve_all(rest, k)
                } else {
                    Ok(false)
                }
            }
            Term::Var(v) => {
                for x in lo..=hi {
                    self.tick()?;
                    let mark = self.trail.len();
                    self.bind(v, Term::Int(x));
                    if self.solve_all(rest, k)? {
                        return Ok(true);
                    }
                    self.undo_to(mark);
                    if self.cut_signal.is_some() {
                        break;
                    }
                }
                Ok(false)
            }
            other => Err(PrologError::ArithmeticType(format!(
                "between/3 third argument: {other}"
            ))),
        }
    }

    fn builtin_length(
        &mut self,
        args: &[Term],
        rest: &[Term],
        k: Cont,
    ) -> Result<bool, PrologError> {
        let list = self.resolve(&args[0]);
        if let Some(items) = list.as_list() {
            let n = items.len() as i64;
            let mark = self.trail.len();
            if self.unify(&args[1], &Term::Int(n)) {
                let stop = self.solve_all(rest, k)?;
                if stop {
                    return Ok(true);
                }
            }
            self.undo_to(mark);
            return Ok(false);
        }
        // list unbound: N must be bound — build a list of fresh vars
        if let Term::Int(n) = self.deref(&args[1]) {
            if n < 0 {
                return Ok(false);
            }
            let base = self.fresh_vars(n as usize);
            let fresh = Term::list(
                (0..n as usize)
                    .map(|i| Term::Var(base + i))
                    .collect::<Vec<_>>(),
            );
            let mark = self.trail.len();
            if self.unify(&args[0], &fresh) {
                let stop = self.solve_all(rest, k)?;
                if stop {
                    return Ok(true);
                }
            }
            self.undo_to(mark);
            return Ok(false);
        }
        Err(PrologError::NotInstantiated("length/2".into()))
    }

    fn builtin_findall(
        &mut self,
        args: &[Term],
        rest: &[Term],
        k: Cont,
    ) -> Result<bool, PrologError> {
        let template = args[0].clone();
        let goal = args[1].clone();
        let mark = self.trail.len();
        let saved_cut = self.cut_signal.take();
        let mut collected: Vec<Term> = Vec::new();
        self.solve_all(std::slice::from_ref(&goal), &mut |m| {
            let mut map = HashMap::new();
            let copy = m.copy_with_fresh(&template, &mut map);
            collected.push(copy);
            Ok(false)
        })?;
        self.undo_to(mark);
        self.cut_signal = saved_cut;
        let list = Term::list(collected);
        let mark = self.trail.len();
        if self.unify(&args[2], &list) {
            let stop = self.solve_all(rest, k)?;
            if stop {
                return Ok(true);
            }
        }
        self.undo_to(mark);
        Ok(false)
    }

    fn builtin_setof(
        &mut self,
        args: &[Term],
        rest: &[Term],
        k: Cont,
    ) -> Result<bool, PrologError> {
        // Simplified setof: findall + sort + dedupe; fails on empty set.
        let template = args[0].clone();
        let goal = args[1].clone();
        let mark = self.trail.len();
        let saved_cut = self.cut_signal.take();
        let mut collected: Vec<Term> = Vec::new();
        self.solve_all(std::slice::from_ref(&goal), &mut |m| {
            collected.push(m.resolve(&template));
            Ok(false)
        })?;
        self.undo_to(mark);
        self.cut_signal = saved_cut;
        if collected.is_empty() {
            return Ok(false);
        }
        collected.sort_by(term_order);
        collected.dedup();
        let list = Term::list(collected);
        let mark = self.trail.len();
        if self.unify(&args[2], &list) {
            let stop = self.solve_all(rest, k)?;
            if stop {
                return Ok(true);
            }
        }
        self.undo_to(mark);
        Ok(false)
    }

    fn builtin_sort(
        &mut self,
        args: &[Term],
        rest: &[Term],
        dedupe: bool,
        k: Cont,
    ) -> Result<bool, PrologError> {
        let list = self.resolve(&args[0]);
        let Some(items) = list.as_list() else {
            return Err(PrologError::NotInstantiated("sort/2".into()));
        };
        let mut items: Vec<Term> = items.into_iter().cloned().collect();
        items.sort_by(term_order);
        if dedupe {
            items.dedup();
        }
        let sorted = Term::list(items);
        let mark = self.trail.len();
        if self.unify(&args[1], &sorted) {
            let stop = self.solve_all(rest, k)?;
            if stop {
                return Ok(true);
            }
        }
        self.undo_to(mark);
        Ok(false)
    }

    fn eval_arith(&self, t: &Term) -> Result<i64, PrologError> {
        match self.deref(t) {
            Term::Int(i) => Ok(i),
            Term::Var(_) => Err(PrologError::NotInstantiated("arithmetic".into())),
            Term::Atom(a) => Err(PrologError::ArithmeticType(format!("atom `{a}`"))),
            Term::Compound(f, args) => match (f.as_str(), args.len()) {
                ("+", 2) => Ok(self
                    .eval_arith(&args[0])?
                    .wrapping_add(self.eval_arith(&args[1])?)),
                ("-", 2) => Ok(self
                    .eval_arith(&args[0])?
                    .wrapping_sub(self.eval_arith(&args[1])?)),
                ("*", 2) => Ok(self
                    .eval_arith(&args[0])?
                    .wrapping_mul(self.eval_arith(&args[1])?)),
                ("//", 2) | ("/", 2) => {
                    let d = self.eval_arith(&args[1])?;
                    if d == 0 {
                        return Err(PrologError::DivisionByZero);
                    }
                    Ok(self.eval_arith(&args[0])?.div_euclid(d))
                }
                ("mod", 2) => {
                    let d = self.eval_arith(&args[1])?;
                    if d == 0 {
                        return Err(PrologError::DivisionByZero);
                    }
                    Ok(self.eval_arith(&args[0])?.rem_euclid(d))
                }
                ("min", 2) => Ok(self.eval_arith(&args[0])?.min(self.eval_arith(&args[1])?)),
                ("max", 2) => Ok(self.eval_arith(&args[0])?.max(self.eval_arith(&args[1])?)),
                ("abs", 1) => Ok(self.eval_arith(&args[0])?.abs()),
                ("-", 1) => Ok(-self.eval_arith(&args[0])?),
                _ => Err(PrologError::ArithmeticType(format!(
                    "unknown function {}/{}",
                    f,
                    args.len()
                ))),
            },
        }
    }
}

/// Standard order of terms: Var < Int < Atom < Compound, then structural.
fn term_order(a: &Term, b: &Term) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    use Term::*;
    fn rank(t: &Term) -> u8 {
        match t {
            Var(_) => 0,
            Int(_) => 1,
            Atom(_) => 2,
            Compound(_, _) => 3,
        }
    }
    match (a, b) {
        (Var(x), Var(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Atom(x), Atom(y)) => x.cmp(y),
        (Compound(f, xs), Compound(g, ys)) => xs
            .len()
            .cmp(&ys.len())
            .then_with(|| f.cmp(g))
            .then_with(|| {
                for (x, y) in xs.iter().zip(ys) {
                    let o = term_order(x, y);
                    if o != Equal {
                        return o;
                    }
                }
                Equal
            }),
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(src: &str) -> Database {
        let mut d = Database::with_prelude();
        d.consult(src).unwrap();
        d
    }

    fn first_int(db: &Database, q: &str, var: &str) -> i64 {
        let sols = db.query(q).unwrap();
        sols[0]
            .iter()
            .find(|(n, _)| n == var)
            .unwrap()
            .1
            .int_value()
            .unwrap()
    }

    #[test]
    fn facts_and_unification() {
        let d = db("edge(a, b). edge(b, c). edge(a, c).");
        let sols = d.query("edge(a, X)").unwrap();
        let xs: Vec<String> = sols
            .iter()
            .map(|s| s[0].1.atom_name().unwrap().to_string())
            .collect();
        assert_eq!(xs, vec!["b", "c"]);
    }

    #[test]
    fn conjunction_backtracking() {
        let d = db("edge(a,b). edge(b,c). path2(X,Z) :- edge(X,Y), edge(Y,Z).");
        let sols = d.query("path2(a, Z)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1, Term::atom("c"));
    }

    #[test]
    fn recursion_transitive_closure() {
        let d = db("edge(a,b). edge(b,c). edge(c,d).
             reach(X,Y) :- edge(X,Y).
             reach(X,Y) :- edge(X,Z), reach(Z,Y).");
        let sols = d.query("reach(a, Y)").unwrap();
        let ys: Vec<&str> = sols.iter().map(|s| s[0].1.atom_name().unwrap()).collect();
        assert_eq!(ys, vec!["b", "c", "d"]);
    }

    #[test]
    fn arithmetic_is() {
        let d = db("double(X, Y) :- Y is X * 2.");
        assert_eq!(first_int(&d, "double(21, Y)", "Y"), 42);
        assert_eq!(first_int(&d, "X is 7 + 3 * 2 - 1", "X"), 12);
        assert_eq!(first_int(&d, "X is 17 // 5", "X"), 3);
        assert_eq!(first_int(&d, "X is 17 mod 5", "X"), 2);
        assert_eq!(first_int(&d, "X is min(3, 9)", "X"), 3);
        assert_eq!(first_int(&d, "X is max(3, 9)", "X"), 9);
        assert_eq!(first_int(&d, "X is abs(-4)", "X"), 4);
    }

    #[test]
    fn arithmetic_errors() {
        let d = Database::with_prelude();
        assert!(matches!(
            d.query("X is 1 // 0"),
            Err(PrologError::DivisionByZero)
        ));
        assert!(matches!(
            d.query("X is Y + 1"),
            Err(PrologError::NotInstantiated(_))
        ));
        assert!(matches!(
            d.query("X is foo + 1"),
            Err(PrologError::ArithmeticType(_))
        ));
    }

    #[test]
    fn comparisons() {
        let d = Database::with_prelude();
        assert!(d.has_solution("1 < 2").unwrap());
        assert!(!d.has_solution("2 < 1").unwrap());
        assert!(d.has_solution("2 =< 2").unwrap());
        assert!(d.has_solution("3 > 2").unwrap());
        assert!(d.has_solution("3 >= 3").unwrap());
        assert!(d.has_solution("1 + 1 =:= 2").unwrap());
        assert!(d.has_solution("1 =\\= 2").unwrap());
    }

    #[test]
    fn negation_as_failure() {
        let d = db("edge(a,b). lonely(X) :- node(X), not(edge(X, _)). node(a). node(c).");
        let sols = d.query("lonely(X)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1, Term::atom("c"));
    }

    #[test]
    fn member_and_append_from_prelude() {
        let d = Database::with_prelude();
        let sols = d.query("member(X, [1,2,3])").unwrap();
        assert_eq!(sols.len(), 3);
        let sols = d.query("append([1,2], [3], L)").unwrap();
        assert_eq!(
            sols[0][0].1,
            Term::list(vec![Term::int(1), Term::int(2), Term::int(3)])
        );
        // append in generative mode
        let sols = d.query("append(A, B, [1,2])").unwrap();
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn between_generates_and_checks() {
        let d = Database::with_prelude();
        let sols = d.query("between(2, 5, X)").unwrap();
        let xs: Vec<i64> = sols.iter().map(|s| s[0].1.int_value().unwrap()).collect();
        assert_eq!(xs, vec![2, 3, 4, 5]);
        assert!(d.has_solution("between(1, 10, 7)").unwrap());
        assert!(!d.has_solution("between(1, 10, 11)").unwrap());
        assert!(!d.has_solution("between(5, 1, X)").unwrap());
    }

    #[test]
    fn length_both_modes() {
        let d = Database::with_prelude();
        assert_eq!(first_int(&d, "length([a,b,c], N)", "N"), 3);
        let sols = d.query("length(L, 2)").unwrap();
        assert_eq!(sols.len(), 1);
        // resulting list has 2 elements (unbound vars)
        let l = &sols[0][0].1;
        assert_eq!(l.as_list().map(|v| v.len()), Some(2)); // proper spine of 2 fresh vars
        let l2 = d.query("length(L, 0)").unwrap();
        assert!(l2[0][0].1.is_nil());
    }

    #[test]
    fn findall_collects_all() {
        let d = db("p(1). p(2). p(3).");
        let sols = d.query("findall(X, p(X), L)").unwrap();
        assert_eq!(
            sols[0].iter().find(|(n, _)| n == "L").unwrap().1,
            Term::list(vec![Term::int(1), Term::int(2), Term::int(3)])
        );
    }

    #[test]
    fn findall_empty_gives_nil() {
        let mut d = Database::with_prelude();
        d.declare_dynamic("q", 1);
        let sols = d.query("findall(X, q(X), L)").unwrap();
        assert!(sols[0].iter().find(|(n, _)| n == "L").unwrap().1.is_nil());
    }

    #[test]
    fn findall_does_not_leak_bindings() {
        let d = db("p(1). p(2).");
        let sols = d.query("findall(X, p(X), L), X = 99").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols[0].iter().find(|(n, _)| n == "X").unwrap().1,
            Term::int(99)
        );
    }

    #[test]
    fn setof_sorts_and_dedupes() {
        let d = db("p(3). p(1). p(3). p(2).");
        let sols = d.query("setof(X, p(X), L)").unwrap();
        assert_eq!(
            sols[0].iter().find(|(n, _)| n == "L").unwrap().1,
            Term::list(vec![Term::int(1), Term::int(2), Term::int(3)])
        );
    }

    #[test]
    fn setof_fails_on_empty() {
        let mut d = Database::with_prelude();
        d.declare_dynamic("q", 1);
        assert!(!d.has_solution("setof(X, q(X), L)").unwrap());
    }

    #[test]
    fn sort_and_msort() {
        let d = Database::with_prelude();
        let s = d.query("sort([3,1,2,1], L)").unwrap();
        assert_eq!(
            s[0][0].1,
            Term::list(vec![Term::int(1), Term::int(2), Term::int(3)])
        );
        let m = d.query("msort([3,1,2,1], L)").unwrap();
        assert_eq!(
            m[0][0].1,
            Term::list(vec![Term::int(1), Term::int(1), Term::int(2), Term::int(3)])
        );
    }

    #[test]
    fn cut_prunes_alternatives() {
        let d = db("first(X) :- member(X, [1,2,3]), !.");
        let sols = d.query("first(X)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1, Term::int(1));
    }

    #[test]
    fn cut_only_local_to_predicate() {
        let d = db("a(X) :- b(X).
             a(99).
             b(X) :- member(X, [1,2]), !.");
        // cut inside b prunes b's alternatives, but a/1 still tries a(99)
        let sols = d.query("a(X)").unwrap();
        let xs: Vec<i64> = sols.iter().map(|s| s[0].1.int_value().unwrap()).collect();
        assert_eq!(xs, vec![1, 99]);
    }

    #[test]
    fn call_n_builds_goals() {
        let d = db("add(A, B, C) :- C is A + B.");
        assert_eq!(first_int(&d, "call(add, 1, 2, X)", "X"), 3);
        assert_eq!(first_int(&d, "call(add(1), 2, X)", "X"), 3);
        assert_eq!(first_int(&d, "G = add(1, 2), call(G, X)", "X"), 3);
    }

    #[test]
    fn foldl_from_prelude() {
        let d = db("sum(X, A, B) :- B is A + X.");
        assert_eq!(first_int(&d, "foldl(sum, [1,2,3,4], 0, S)", "S"), 10);
    }

    #[test]
    fn convlist_skips_failures() {
        let d = db("half(X, Y) :- 0 =:= X mod 2, Y is X // 2.");
        let sols = d.query("convlist(half, [1,2,3,4], L)").unwrap();
        assert_eq!(
            sols[0].iter().find(|(n, _)| n == "L").unwrap().1,
            Term::list(vec![Term::int(1), Term::int(2)])
        );
    }

    #[test]
    fn unknown_predicate_errors() {
        let d = Database::with_prelude();
        assert!(matches!(
            d.query("nosuchpred(X)"),
            Err(PrologError::UnknownPredicate(_, 1))
        ));
    }

    #[test]
    fn dynamic_predicate_fails_quietly() {
        let mut d = Database::with_prelude();
        d.declare_dynamic("maybe", 2);
        assert!(!d.has_solution("maybe(a, b)").unwrap());
    }

    #[test]
    fn type_check_builtins() {
        let d = Database::with_prelude();
        assert!(d.has_solution("atom(foo)").unwrap());
        assert!(!d.has_solution("atom(1)").unwrap());
        assert!(d.has_solution("integer(3)").unwrap());
        assert!(d.has_solution("var(X)").unwrap());
        assert!(d.has_solution("X = 1, nonvar(X)").unwrap());
        assert!(d.has_solution("ground(f(a, 1))").unwrap());
        assert!(!d.has_solution("ground(f(a, X))").unwrap());
    }

    #[test]
    fn query_limit_stops_early() {
        let d = Database::with_prelude();
        let sols = d.query_limit("between(1, 1000000, X)", 5).unwrap();
        assert_eq!(sols.len(), 5);
    }

    #[test]
    fn step_limit_guards_infinite_recursion() {
        let mut d = db("loop :- loop.");
        d.max_steps = 10_000;
        assert!(matches!(
            d.query("loop"),
            Err(PrologError::StepLimitExceeded(_) | PrologError::DepthLimitExceeded(_))
        ));
    }

    #[test]
    fn schema_k_hop_path_paper_rule() {
        // End-to-end check of the paper's Lst. 2 on the provenance schema.
        let d = db("schemaEdge('Job', 'File', 'WRITES_TO').
             schemaEdge('File', 'Job', 'IS_READ_BY').
             schemaKHopPath(X,Y,K) :- schemaKHopPath(X,Y,K,[]).
             schemaKHopPath(X,Y,1,_) :- schemaEdge(X,Y,_).
             schemaKHopPath(X,Y,K,Trail) :-
               schemaEdge(X,Z,_), not(member(Z,Trail)),
               schemaKHopPath(Z,Y,K1,[X|Trail]), K is K1 + 1.");
        // Job→Job only via even path length 2 (acyclic trail bounds it)
        assert!(d.has_solution("schemaKHopPath('Job', 'Job', 2)").unwrap());
        assert!(!d.has_solution("schemaKHopPath('Job', 'Job', 3)").unwrap());
        assert!(d.has_solution("schemaKHopPath('File', 'File', 2)").unwrap());
        assert!(d.has_solution("schemaKHopPath('Job', 'File', 1)").unwrap());
        assert!(!d.has_solution("schemaKHopPath('File', 'File', 4)").unwrap());
    }

    #[test]
    fn solutions_resolve_compound_bindings() {
        let d = db("pair(X, Y, p(X, Y)). p2(P) :- pair(1, 2, P).");
        let sols = d.query("p2(P)").unwrap();
        assert_eq!(
            sols[0][0].1,
            Term::compound("p", vec![Term::int(1), Term::int(2)])
        );
    }

    #[test]
    fn first_arg_indexing_preserves_semantics() {
        // many clauses with distinct first-arg atoms: only the matching
        // one fires, and variable goals still see all of them
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("big(k{i}, {i}).\n"));
        }
        let d = db(&src);
        let sols = d.query("big(k42, V)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1, Term::int(42));
        assert_eq!(d.query("big(K, V)").unwrap().len(), 200);
        // compound first args index by functor/arity
        let d2 = db("f(g(1), a). f(g(2), b). f(h(1), c). f(X, d).");
        assert_eq!(d2.query("f(g(1), R)").unwrap().len(), 2); // g(1) + var clause
        assert_eq!(d2.query("f(h(9), R)").unwrap().len(), 1); // only the var clause (h(1) fails unification)
    }

    #[test]
    fn retract_all_removes_predicate() {
        let mut d = db("p(1). p(2).");
        assert_eq!(d.clause_count("p", 1), 2);
        assert_eq!(d.retract_all("p", 1), 2);
        assert_eq!(d.retract_all("p", 1), 0);
        d.declare_dynamic("p", 1);
        assert!(!d.has_solution("p(X)").unwrap());
    }

    #[test]
    fn query_with_stats_counts_steps() {
        let d = db("p(1). p(2).");
        let (sols, steps) = d.query_with_stats("p(X)").unwrap();
        assert_eq!(sols.len(), 2);
        assert!(steps > 0);
    }

    #[test]
    fn malformed_clause_head_is_an_error_not_a_panic() {
        let mut d = Database::new();
        for head in [Term::Var(0), Term::int(42)] {
            let err = d
                .assert_clause(Clause {
                    head,
                    body: vec![],
                    nvars: 1,
                    var_names: vec![],
                })
                .unwrap_err();
            assert!(matches!(err, PrologError::MalformedClause(_)));
            assert!(err.to_string().contains("clause head must have a functor"));
        }
        // the database stays usable after the rejection
        d.add_fact("p", vec![Term::int(1)]);
        assert!(d.has_solution("p(1)").unwrap());
    }
}
