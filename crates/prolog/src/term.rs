//! Prolog term representation.
//!
//! Terms are the universal data structure of the inference engine: atoms,
//! integers, variables, and compound terms. Lists are the usual sugar over
//! `'.'/2` and `[]`. Variables are plain indices into the solver's binding
//! store; clauses store variables numbered `0..nvars` and are renamed
//! apart at call time by offsetting.

use std::fmt;

/// A Prolog term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An atom, e.g. `job`, `'File'`, `[]`.
    Atom(String),
    /// An integer.
    Int(i64),
    /// A variable, identified by its slot in the binding store.
    Var(usize),
    /// A compound term `functor(args...)`. Lists use functor `"."` with
    /// two args (head, tail).
    Compound(String, Vec<Term>),
}

impl Term {
    /// Convenience atom constructor.
    pub fn atom(name: &str) -> Term {
        Term::Atom(name.to_string())
    }

    /// Convenience integer constructor.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::Atom("[]".to_string())
    }

    /// List cons cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Compound(".".to_string(), vec![head, tail])
    }

    /// Builds a proper list from an iterator of elements.
    pub fn list<I: IntoIterator<Item = Term>>(items: I) -> Term
    where
        I::IntoIter: DoubleEndedIterator,
    {
        items
            .into_iter()
            .rev()
            .fold(Term::nil(), |tail, h| Term::cons(h, tail))
    }

    /// Convenience compound constructor.
    pub fn compound(functor: &str, args: Vec<Term>) -> Term {
        Term::Compound(functor.to_string(), args)
    }

    /// Whether this term is the empty list atom.
    pub fn is_nil(&self) -> bool {
        matches!(self, Term::Atom(a) if a == "[]")
    }

    /// Functor name and arity; atoms have arity 0.
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Term::Atom(a) => Some((a, 0)),
            Term::Compound(f, args) => Some((f, args.len())),
            _ => None,
        }
    }

    /// If this term is a proper list (ground spine), returns its elements.
    pub fn as_list(&self) -> Option<Vec<&Term>> {
        let mut items = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::Atom(a) if a == "[]" => return Some(items),
                Term::Compound(f, args) if f == "." && args.len() == 2 => {
                    items.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// The atom's name, if this is an atom.
    pub fn atom_name(&self) -> Option<&str> {
        match self {
            Term::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn int_value(&self) -> Option<i64> {
        match self {
            Term::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Renames every variable by adding `offset` (clause renaming-apart).
    pub fn offset_vars(&self, offset: usize) -> Term {
        match self {
            Term::Var(v) => Term::Var(v + offset),
            Term::Compound(f, args) => Term::Compound(
                f.clone(),
                args.iter().map(|a| a.offset_vars(offset)).collect(),
            ),
            other => other.clone(),
        }
    }

    /// Collects all variable indices occurring in the term.
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Term::Compound(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }
}

/// Quotes an atom for display if it is not a plain lowercase identifier.
fn fmt_atom(a: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let plain = !a.is_empty()
        && a.chars().next().unwrap().is_ascii_lowercase()
        && a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    let symbolic = a == "[]" || a == "!" || a.chars().all(|c| "+-*/\\^<>=~:.?@#&".contains(c));
    if plain || symbolic {
        write!(f, "{a}")
    } else {
        write!(f, "'{a}'")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Atom(a) => fmt_atom(a, f),
            Term::Int(i) => write!(f, "{i}"),
            Term::Var(v) => write!(f, "_G{v}"),
            Term::Compound(func, args) if func == "." && args.len() == 2 => {
                // list syntax
                write!(f, "[")?;
                write!(f, "{}", args[0])?;
                let mut tail = &args[1];
                loop {
                    match tail {
                        Term::Atom(a) if a == "[]" => break,
                        Term::Compound(func2, args2) if func2 == "." && args2.len() == 2 => {
                            write!(f, ",{}", args2[0])?;
                            tail = &args2[1];
                        }
                        other => {
                            write!(f, "|{other}")?;
                            break;
                        }
                    }
                }
                write!(f, "]")
            }
            Term::Compound(func, args) => {
                fmt_atom(func, f)?;
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_roundtrip() {
        let l = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        let elems = l.as_list().unwrap();
        assert_eq!(elems.len(), 3);
        assert_eq!(elems[0], &Term::int(1));
        assert_eq!(l.to_string(), "[1,2,3]");
    }

    #[test]
    fn empty_list() {
        assert!(Term::nil().is_nil());
        assert_eq!(Term::nil().as_list().unwrap().len(), 0);
        assert_eq!(Term::list(vec![]).to_string(), "[]");
    }

    #[test]
    fn improper_list_display() {
        let t = Term::cons(Term::int(1), Term::Var(0));
        assert_eq!(t.to_string(), "[1|_G0]");
        assert!(t.as_list().is_none());
    }

    #[test]
    fn display_quoting() {
        assert_eq!(Term::atom("job").to_string(), "job");
        assert_eq!(Term::atom("Job").to_string(), "'Job'");
        assert_eq!(Term::atom("WRITES_TO").to_string(), "'WRITES_TO'");
        assert_eq!(
            Term::compound("f", vec![Term::atom("a"), Term::int(-2)]).to_string(),
            "f(a,-2)"
        );
    }

    #[test]
    fn offset_vars_shifts_all() {
        let t = Term::compound(
            "f",
            vec![Term::Var(0), Term::cons(Term::Var(1), Term::nil())],
        );
        let s = t.offset_vars(10);
        let mut vars = Vec::new();
        s.collect_vars(&mut vars);
        assert_eq!(vars, vec![10, 11]);
    }

    #[test]
    fn groundness() {
        assert!(Term::atom("a").is_ground());
        assert!(Term::list(vec![Term::int(1)]).is_ground());
        assert!(!Term::compound("f", vec![Term::Var(3)]).is_ground());
    }

    #[test]
    fn functor_and_accessors() {
        assert_eq!(Term::atom("a").functor(), Some(("a", 0)));
        assert_eq!(
            Term::compound("f", vec![Term::int(1)]).functor(),
            Some(("f", 1))
        );
        assert_eq!(Term::Var(0).functor(), None);
        assert_eq!(Term::int(5).int_value(), Some(5));
        assert_eq!(Term::atom("x").atom_name(), Some("x"));
    }
}
