//! Abstract syntax for Kaskade's hybrid query language (§III-B).
//!
//! Queries combine Cypher-style graph pattern matching (`MATCH` with
//! variable-length paths, as in Listing 1 of the paper) with SQL-style
//! relational constructs (`SELECT` / `WHERE` / `GROUP BY` / aggregates).
//! The AST is fully public: the view-based query rewriter in
//! `kaskade-core` edits patterns programmatically (replacing a path
//! segment with a connector-edge hop, §V-C).

use kaskade_graph::Value;

/// A node pattern `(var:Label)` — label optional.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePattern {
    /// Binding variable name.
    pub var: String,
    /// Required vertex type, if any.
    pub label: Option<String>,
}

/// An edge pattern between two node variables.
///
/// `-[:ETYPE]->` is a single hop of a given type; `-[r*L..U]->` is a
/// variable-length path of `L..=U` hops (any or given edge type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePattern {
    /// Source node variable.
    pub src: String,
    /// Destination node variable.
    pub dst: String,
    /// Required edge type, if any (applies to every hop).
    pub etype: Option<String>,
    /// `Some((lo, hi))` for a variable-length path of `lo..=hi` hops;
    /// `None` for a single mandatory hop.
    pub hops: Option<(usize, usize)>,
}

impl EdgePattern {
    /// A single-hop edge of the given type.
    pub fn hop(src: &str, etype: &str, dst: &str) -> Self {
        EdgePattern {
            src: src.to_string(),
            dst: dst.to_string(),
            etype: Some(etype.to_string()),
            hops: None,
        }
    }

    /// A variable-length path (`lo..=hi` hops) of optional edge type.
    pub fn var_length(src: &str, dst: &str, etype: Option<&str>, lo: usize, hi: usize) -> Self {
        EdgePattern {
            src: src.to_string(),
            dst: dst.to_string(),
            etype: etype.map(str::to_string),
            hops: Some((lo, hi)),
        }
    }
}

/// A `MATCH ... RETURN ...` graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPattern {
    /// Node patterns, in order of first appearance. Variables repeat
    /// across path elements to express joins.
    pub nodes: Vec<NodePattern>,
    /// Edge patterns connecting node variables.
    pub edges: Vec<EdgePattern>,
    /// `RETURN var AS alias` projections.
    pub returns: Vec<(String, String)>,
}

impl GraphPattern {
    /// Looks up a node pattern by variable name.
    pub fn node(&self, var: &str) -> Option<&NodePattern> {
        self.nodes.iter().find(|n| n.var == var)
    }

    /// Adds a node pattern if the variable is not yet present; if it is,
    /// fills in a missing label.
    pub fn add_node(&mut self, var: &str, label: Option<&str>) {
        match self.nodes.iter_mut().find(|n| n.var == var) {
            Some(n) => {
                if n.label.is_none() {
                    n.label = label.map(str::to_string);
                }
            }
            None => self.nodes.push(NodePattern {
                var: var.to_string(),
                label: label.map(str::to_string),
            }),
        }
    }
}

/// Aggregate functions of the relational fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`COUNT(*)` or `COUNT(expr)`).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Minimum by the total value order.
    Min,
    /// Maximum by the total value order.
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column of the input relation (a pattern variable or an alias
    /// from an inner query).
    Column(String),
    /// A property access `var.key` where `var` is bound to a vertex.
    Prop(String, String),
    /// A literal value.
    Literal(Value),
    /// An aggregate over an expression; `None` is `COUNT(*)`.
    Agg(AggFunc, Option<Box<Expr>>),
    /// `id(var)` — the **stable external id** of the vertex bound to a
    /// pattern variable (or inner-query alias). External ids are minted
    /// by clients and survive slot compaction, so `id(v) = <ext>` names
    /// one vertex forever. The expression is not evaluable by the plain
    /// executor: the serving layer resolves it through its external-id
    /// table and turns the equality into a pinned single-slot anchor
    /// scan (see [`Query::split_extid_anchors`]).
    VertexIdOf(String),
}

impl Expr {
    /// Whether the expression contains an aggregate.
    pub fn has_agg(&self) -> bool {
        matches!(self, Expr::Agg(_, _))
    }
}

/// Comparison operators of the `WHERE` fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A conjunctive predicate: `lhs op rhs [AND ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// AND-combined comparisons.
    pub conjuncts: Vec<(Expr, CmpOp, Expr)>,
}

/// The source of a `SELECT`: either a graph pattern or a nested select.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// `FROM ( MATCH ... RETURN ... )`
    Match(GraphPattern),
    /// `FROM ( SELECT ... )`
    Subquery(Box<SelectStmt>),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projections: `(expr, output name)`.
    pub items: Vec<(Expr, String)>,
    /// Input relation.
    pub from: Source,
    /// Optional conjunctive filter.
    pub where_clause: Option<Predicate>,
    /// Grouping expressions (empty = one implicit group if aggregates
    /// are present, otherwise row-per-row).
    pub group_by: Vec<Expr>,
    /// `ORDER BY` keys: `(expr, descending)`.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n` row cap.
    pub limit: Option<usize>,
}

/// A full query: either a bare pattern or a select over one.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Bare `MATCH ... RETURN ...`.
    Match(GraphPattern),
    /// `SELECT ...` (possibly nested).
    Select(SelectStmt),
}

impl Query {
    /// The innermost graph pattern, if the query bottoms out in one.
    pub fn pattern(&self) -> Option<&GraphPattern> {
        match self {
            Query::Match(p) => Some(p),
            Query::Select(s) => {
                let mut src = &s.from;
                loop {
                    match src {
                        Source::Match(p) => return Some(p),
                        Source::Subquery(inner) => src = &inner.from,
                    }
                }
            }
        }
    }

    /// Splits `id(v) = <ext>` equality conjuncts out of the query.
    ///
    /// Scans the `WHERE` clause of the `SELECT` that sits **directly on
    /// the `MATCH` source** (the only level whose columns are pattern
    /// bindings) for conjuncts of the form `id(name) = <int literal>`
    /// (either operand order), where `name` is a `RETURN` alias or a
    /// pattern variable. Each such conjunct names exactly one vertex by
    /// its stable external id, so an engine with an external-id table
    /// can replace the post-hoc filter with a pinned single-slot anchor
    /// scan ([`crate::PatternPlan::new_pinned`]).
    ///
    /// Returns `None` when the query has no such conjunct; otherwise
    /// returns the query with those conjuncts removed plus the
    /// `(pattern variable, external id)` pairs. Conjuncts using `id()`
    /// with any other shape (non-equality, unknown variable, non-integer
    /// operand) are left in place and will fail at evaluation time.
    pub fn split_extid_anchors(&self) -> Option<(Query, Vec<(String, u64)>)> {
        let Query::Select(_) = self else { return None };
        let mut out = self.clone();
        // walk to the select directly over the MATCH source
        let Query::Select(s) = &mut out else {
            unreachable!()
        };
        let mut sel: &mut SelectStmt = s;
        let pattern = loop {
            match &mut sel.from {
                Source::Match(p) => break p.clone(),
                Source::Subquery(inner) => sel = inner,
            }
        };
        let var_of = |name: &str| -> Option<String> {
            pattern
                .returns
                .iter()
                .find(|(_, alias)| alias == name)
                .map(|(var, _)| var.clone())
                .or_else(|| pattern.node(name).map(|n| n.var.clone()))
        };
        let mut anchors = Vec::new();
        if let Some(pred) = &mut sel.where_clause {
            pred.conjuncts.retain(|(l, op, r)| {
                if *op != CmpOp::Eq {
                    return true;
                }
                let (name, ext) = match (l, r) {
                    (Expr::VertexIdOf(v), Expr::Literal(Value::Int(e)))
                    | (Expr::Literal(Value::Int(e)), Expr::VertexIdOf(v))
                        if *e >= 0 =>
                    {
                        (v, *e as u64)
                    }
                    _ => return true,
                };
                match var_of(name) {
                    Some(var) => {
                        anchors.push((var, ext));
                        false
                    }
                    None => true,
                }
            });
            if pred.conjuncts.is_empty() {
                sel.where_clause = None;
            }
        }
        if anchors.is_empty() {
            None
        } else {
            Some((out, anchors))
        }
    }

    /// Mutable access to the innermost graph pattern.
    pub fn pattern_mut(&mut self) -> Option<&mut GraphPattern> {
        match self {
            Query::Match(p) => Some(p),
            Query::Select(s) => {
                let mut src = &mut s.from;
                loop {
                    match src {
                        Source::Match(p) => return Some(p),
                        Source::Subquery(inner) => src = &mut inner.from,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_merges_labels() {
        let mut p = GraphPattern {
            nodes: vec![],
            edges: vec![],
            returns: vec![],
        };
        p.add_node("a", None);
        p.add_node("a", Some("Job"));
        assert_eq!(p.nodes.len(), 1);
        assert_eq!(p.node("a").unwrap().label.as_deref(), Some("Job"));
        // existing label is not overwritten
        p.add_node("a", Some("File"));
        assert_eq!(p.node("a").unwrap().label.as_deref(), Some("Job"));
    }

    #[test]
    fn edge_constructors() {
        let e = EdgePattern::hop("a", "E", "b");
        assert_eq!(e.hops, None);
        let v = EdgePattern::var_length("a", "b", None, 0, 8);
        assert_eq!(v.hops, Some((0, 8)));
        assert_eq!(v.etype, None);
    }

    #[test]
    fn query_pattern_reaches_through_nesting() {
        let p = GraphPattern {
            nodes: vec![NodePattern {
                var: "a".into(),
                label: None,
            }],
            edges: vec![],
            returns: vec![("a".into(), "A".into())],
        };
        let inner = SelectStmt {
            items: vec![(Expr::Column("A".into()), "A".into())],
            from: Source::Match(p.clone()),
            where_clause: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        let outer = Query::Select(SelectStmt {
            items: vec![(Expr::Column("A".into()), "A".into())],
            from: Source::Subquery(Box::new(inner)),
            where_clause: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        });
        assert_eq!(outer.pattern(), Some(&p));
    }

    #[test]
    fn split_extid_anchors_strips_resolvable_conjuncts() {
        let q = crate::parse(
            "SELECT A FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS A, f AS F) \
             WHERE id(A) = 42 AND 7 = id(f) AND A.CPU > 3",
        )
        .unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        // alias `A` maps to pattern var `a`; `f` is a direct var name
        assert_eq!(
            anchors,
            vec![("a".to_string(), 42u64), ("f".to_string(), 7u64)]
        );
        let Query::Select(s) = &stripped else {
            panic!()
        };
        let pred = s.where_clause.as_ref().unwrap();
        assert_eq!(pred.conjuncts.len(), 1, "only the CPU filter remains");
        // stripping the only conjunct clears the WHERE clause entirely
        let q =
            crate::parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A) WHERE id(A) = 1").unwrap();
        let (stripped, _) = q.split_extid_anchors().unwrap();
        let Query::Select(s) = &stripped else {
            panic!()
        };
        assert!(s.where_clause.is_none());
        // non-equality, unknown names, and anchor-free queries pass through
        assert!(
            crate::parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A) WHERE id(A) > 1")
                .unwrap()
                .split_extid_anchors()
                .is_none()
        );
        assert!(
            crate::parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A) WHERE id(zz) = 1")
                .unwrap()
                .split_extid_anchors()
                .is_none()
        );
        assert!(crate::parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A)")
            .unwrap()
            .split_extid_anchors()
            .is_none());
        assert!(crate::parse("MATCH (a:Job) RETURN a")
            .unwrap()
            .split_extid_anchors()
            .is_none());
    }

    #[test]
    fn expr_agg_detection() {
        assert!(Expr::Agg(AggFunc::Sum, Some(Box::new(Expr::Column("x".into())))).has_agg());
        assert!(!Expr::Column("x".into()).has_agg());
    }
}
