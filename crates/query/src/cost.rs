//! Query evaluation cost model (the `EvalCost(q)` of §V-A).
//!
//! The paper relies on Neo4j's cost-based optimizer as a proxy for the
//! cost of evaluating a query on the raw graph: a reasonable ordering
//! between label scans and expansions. This module provides the same
//! shape of model for our engine: a pattern is costed as an anchor scan
//! followed by expand steps, where each expansion multiplies the
//! estimated row count by the out-degree summary statistic of the
//! source label (α-percentile, default the median). Variable-length
//! expansion of up to `h` hops contributes `deg^h`.
//!
//! Absolute numbers are meaningless; only comparisons between plans
//! (e.g. raw query vs. view-based rewriting) matter — exactly how the
//! paper uses EvalCost.

use kaskade_graph::GraphStats;

use crate::ast::{GraphPattern, Query, Source};

/// Cost model knobs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Degree percentile used for expansion factors (paper default: 50
    /// for cost, 95 for size upper bounds).
    pub alpha: u8,
    /// Relative weight of producing one output row vs. expanding one
    /// edge (both normalized to 1.0 by default).
    pub row_weight: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 50,
            row_weight: 1.0,
        }
    }
}

impl CostModel {
    fn degree(&self, stats: &GraphStats, label: Option<&str>) -> f64 {
        let summary = match label {
            Some(l) => match stats.for_type(l) {
                Some(s) => s,
                None => return 0.0,
            },
            None => &stats.overall,
        };
        // avoid hard zeros: a label that exists but has median degree 0
        // still costs something to probe
        (summary.degree_at(self.alpha) as f64).max(0.5)
    }

    fn cardinality(&self, stats: &GraphStats, label: Option<&str>) -> f64 {
        match label {
            Some(l) => stats.for_type(l).map_or(0.0, |s| s.cardinality as f64),
            None => stats.vertex_count as f64,
        }
    }

    /// Estimated cost of matching `pattern`: anchor scan + expansions,
    /// mirroring the greedy plan of [`crate::PatternPlan`].
    pub fn pattern_cost(&self, stats: &GraphStats, pattern: &GraphPattern) -> f64 {
        if pattern.nodes.is_empty() {
            return 0.0;
        }
        // anchor: most selective node
        let anchor = pattern
            .nodes
            .iter()
            .map(|n| self.cardinality(stats, n.label.as_deref()))
            .fold(f64::INFINITY, f64::min);
        let mut rows = anchor.max(1.0);
        let mut cost = anchor;
        let mut remaining: Vec<&crate::ast::EdgePattern> = pattern.edges.iter().collect();
        // charge edges in written order (a proxy for the greedy plan)
        while let Some(e) = remaining.first().copied() {
            remaining.remove(0);
            let src_label = pattern.node(&e.src).and_then(|n| n.label.as_deref());
            let deg = self.degree(stats, src_label);
            let factor = match e.hops {
                None => deg,
                Some((_, hi)) => {
                    // sum_{d=1..hi} deg^d, capped to avoid overflow
                    let mut f = 0.0;
                    let mut p = 1.0;
                    for _ in 0..hi.min(32) {
                        p = (p * deg).min(1e18);
                        f += p;
                    }
                    f.max(1.0)
                }
            };
            rows = (rows * factor).min(1e18);
            cost += rows;
        }
        cost + rows * self.row_weight
    }

    /// Estimated cost of a full query: the innermost pattern dominates;
    /// each relational layer adds a linear pass over its input rows.
    pub fn query_cost(&self, stats: &GraphStats, q: &Query) -> f64 {
        match q {
            Query::Match(p) => self.pattern_cost(stats, p),
            Query::Select(s) => {
                let mut cost = 0.0;
                let mut src = &s.from;
                let mut layers = 1.0;
                loop {
                    match src {
                        Source::Match(p) => {
                            let pc = self.pattern_cost(stats, p);
                            cost += pc + layers * self.row_weight;
                            break;
                        }
                        Source::Subquery(inner) => {
                            layers += 1.0;
                            src = &inner.from;
                        }
                    }
                }
                cost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use kaskade_graph::{GraphBuilder, GraphStats};

    fn stats() -> GraphStats {
        // one Job writes 10 files, each file read by 2 jobs
        let mut b = GraphBuilder::new();
        let j = b.add_vertex("Job");
        for _ in 0..10 {
            let f = b.add_vertex("File");
            b.add_edge(j, f, "WRITES_TO");
            for _ in 0..2 {
                let r = b.add_vertex("Job");
                b.add_edge(f, r, "IS_READ_BY");
            }
        }
        GraphStats::compute(&b.finish())
    }

    fn cost(src: &str) -> f64 {
        let q = parse(src).unwrap();
        CostModel::default().query_cost(&stats(), &q)
    }

    #[test]
    fn longer_patterns_cost_more() {
        let one = cost("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f");
        let two = cost(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        );
        assert!(two > one, "two={two} one={one}");
    }

    #[test]
    fn variable_length_costs_more_than_fixed() {
        let fixed = cost("MATCH (a:File)-[:X]->(b:File) RETURN a, b");
        let var = cost("MATCH (a:File)-[e*1..8]->(b:File) RETURN a, b");
        assert!(var >= fixed);
    }

    #[test]
    fn missing_label_costs_nothing_extra() {
        let c = cost("MATCH (t:Task) RETURN t");
        assert_eq!(c, 0.0 + 1.0); // zero scan + row pass
    }

    #[test]
    fn unlabeled_scan_uses_vertex_count() {
        let c = cost("MATCH (v) RETURN v");
        assert!(c >= 31.0); // 31 vertices
    }

    #[test]
    fn cost_monotone_in_alpha() {
        let q = parse("MATCH (a:Job)-[e*1..4]->(b) RETURN a, b").unwrap();
        let s = stats();
        let lo = CostModel {
            alpha: 50,
            ..Default::default()
        }
        .query_cost(&s, &q);
        let hi = CostModel {
            alpha: 100,
            ..Default::default()
        }
        .query_cost(&s, &q);
        assert!(hi >= lo);
    }
}
