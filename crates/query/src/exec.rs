//! Relational execution over pattern-match results: projection,
//! filtering, grouping and aggregation (the SQL fragment of §III-B).

use std::collections::HashMap;

use kaskade_graph::{Graph, Value, VertexId};

use crate::ast::{AggFunc, CmpOp, Expr, GraphPattern, Predicate, Query, SelectStmt, Source};
use crate::plan::{ExecError, PatternPlan};

/// The result of executing one `MATCH` pattern: RETURN aliases plus
/// sorted, deduplicated rows of vertex bindings (see
/// [`PatternPlan::execute`]).
pub type PatternRows = (Vec<String>, Vec<Vec<VertexId>>);

/// A value flowing through the relational operators: either a graph
/// vertex (from a pattern binding) or a scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// A vertex binding.
    Vertex(VertexId),
    /// A scalar value.
    Val(Value),
    /// SQL-style null (e.g. AVG of an empty group).
    Null,
}

impl Datum {
    /// Numeric view (vertices have none).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Val(v) => v.as_f64(),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Val(v) => v.as_int(),
            _ => None,
        }
    }

    /// The vertex id, if this datum is a vertex.
    pub fn as_vertex(&self) -> Option<VertexId> {
        match self {
            Datum::Vertex(v) => Some(*v),
            _ => None,
        }
    }

    /// Hashable normalization used as a grouping key (floats by bit
    /// pattern).
    fn key(&self) -> DatumKey {
        match self {
            Datum::Vertex(v) => DatumKey::Vertex(v.0),
            Datum::Val(Value::Int(i)) => DatumKey::Int(*i),
            Datum::Val(Value::Float(f)) => DatumKey::Float(f.to_bits()),
            Datum::Val(Value::Str(s)) => DatumKey::Str(s.clone()),
            Datum::Val(Value::Bool(b)) => DatumKey::Bool(*b),
            Datum::Null => DatumKey::Null,
        }
    }
}

impl std::fmt::Display for Datum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Datum::Vertex(v) => write!(f, "{v}"),
            Datum::Val(v) => write!(f, "{v}"),
            Datum::Null => write!(f, "NULL"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DatumKey {
    Vertex(u32),
    Int(i64),
    Float(u64),
    Str(String),
    Bool(bool),
    Null,
}

/// A result table: named columns and rows of data.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column names.
    pub columns: Vec<String>,
    /// Row-major data.
    pub rows: Vec<Vec<Datum>>,
}

impl Table {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a 1×1 table (convenience for COUNT queries).
    pub fn scalar(&self) -> Option<&Datum> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }
}

/// Total order on datums for ORDER BY: values by [`Value::total_cmp`],
/// then vertices by id, then NULL last; across kinds: values < vertices
/// < null.
fn datum_cmp(a: &Datum, b: &Datum) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Datum::Val(x), Datum::Val(y)) => x.total_cmp(y),
        (Datum::Vertex(x), Datum::Vertex(y)) => x.cmp(y),
        (Datum::Null, Datum::Null) => Equal,
        (Datum::Val(_), _) => Less,
        (_, Datum::Val(_)) => Greater,
        (Datum::Vertex(_), _) => Less,
        (_, Datum::Vertex(_)) => Greater,
    }
}

/// Executes a full query against a graph.
pub fn execute(g: &Graph, q: &Query) -> Result<Table, ExecError> {
    execute_with_pattern(g, q, &|p| {
        let plan = PatternPlan::new(g, p)?;
        Ok(plan.execute(g))
    })
}

/// Executes a full query, sourcing every `MATCH` pattern's rows from
/// `pattern_exec` instead of the built-in matcher. The relational
/// pipeline (WHERE / GROUP BY / aggregates / ORDER BY / LIMIT) runs
/// unchanged over the supplied rows.
///
/// This is the gather half of sharded execution: the provider fans the
/// pattern out with [`PatternPlan::execute_anchored`] (one disjoint
/// anchor range per shard), merges the sorted row sets, and the
/// relational stage then sees exactly the row set an unsharded
/// [`execute`] would have produced — making the final table
/// byte-identical, ordering included.
pub fn execute_with_pattern(
    g: &Graph,
    q: &Query,
    pattern_exec: &dyn Fn(&GraphPattern) -> Result<PatternRows, ExecError>,
) -> Result<Table, ExecError> {
    match q {
        Query::Match(p) => Ok(match_table(pattern_exec(p)?)),
        Query::Select(s) => execute_select(g, s, pattern_exec),
    }
}

/// Lifts pattern rows into a relational [`Table`] of vertex datums.
fn match_table((columns, vrows): PatternRows) -> Table {
    Table {
        columns,
        rows: vrows
            .into_iter()
            .map(|r| r.into_iter().map(Datum::Vertex).collect())
            .collect(),
    }
}

fn execute_select(
    g: &Graph,
    s: &SelectStmt,
    pattern_exec: &dyn Fn(&GraphPattern) -> Result<PatternRows, ExecError>,
) -> Result<Table, ExecError> {
    let input = match &s.from {
        Source::Match(p) => match_table(pattern_exec(p)?),
        Source::Subquery(inner) => execute_select(g, inner, pattern_exec)?,
    };

    // WHERE
    let rows: Vec<&Vec<Datum>> = match &s.where_clause {
        None => input.rows.iter().collect(),
        Some(pred) => {
            let mut kept = Vec::new();
            for row in &input.rows {
                if eval_predicate(g, &input.columns, row, pred)? {
                    kept.push(row);
                }
            }
            kept
        }
    };

    let has_agg = s.items.iter().any(|(e, _)| e.has_agg());
    let columns: Vec<String> = s.items.iter().map(|(_, a)| a.clone()).collect();

    if !has_agg && s.group_by.is_empty() {
        // plain projection
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut r = Vec::with_capacity(s.items.len());
            for (e, _) in &s.items {
                r.push(eval_scalar(g, &input.columns, row, e)?);
            }
            out.push(r);
        }
        let mut table = Table { columns, rows: out };
        apply_order_and_limit(g, s, &mut table)?;
        return Ok(table);
    }

    // group rows
    let mut groups: HashMap<Vec<DatumKey>, Vec<&Vec<Datum>>> = HashMap::new();
    let mut group_order: Vec<Vec<DatumKey>> = Vec::new();
    for row in rows {
        let mut key = Vec::with_capacity(s.group_by.len());
        for e in &s.group_by {
            key.push(eval_scalar(g, &input.columns, row, e)?.key());
        }
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                group_order.push(key);
                Vec::new()
            })
            .push(row);
    }
    // with no GROUP BY but aggregates: one implicit group (even if empty)
    if s.group_by.is_empty() && groups.is_empty() {
        groups.insert(vec![], vec![]);
        group_order.push(vec![]);
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in &group_order {
        let members = &groups[key];
        let mut r = Vec::with_capacity(s.items.len());
        for (e, _) in &s.items {
            r.push(eval_with_agg(g, &input.columns, members, e)?);
        }
        out.push(r);
    }
    let mut table = Table { columns, rows: out };
    apply_order_and_limit(g, s, &mut table)?;
    Ok(table)
}

/// Applies ORDER BY (over the *output* columns, by alias or positional
/// re-evaluation) and LIMIT to a finished table.
fn apply_order_and_limit(g: &Graph, s: &SelectStmt, table: &mut Table) -> Result<(), ExecError> {
    if !s.order_by.is_empty() {
        // resolve each key: if the expression matches an output alias or
        // a projected expression, sort on that column; otherwise it must
        // be evaluable against the output row (e.g. Prop on a projected
        // vertex column)
        let mut keys: Vec<Vec<Datum>> = Vec::with_capacity(table.rows.len());
        for row in &table.rows {
            let mut k = Vec::with_capacity(s.order_by.len());
            for (e, _) in &s.order_by {
                // alias match first
                let d = match e {
                    Expr::Column(name) if table.column_index(name).is_some() => {
                        row[table.column_index(name).unwrap()].clone()
                    }
                    _ => {
                        // positional: identical projected expression
                        match s.items.iter().position(|(pe, _)| pe == e) {
                            Some(i) => row[i].clone(),
                            None => eval_scalar(g, &table.columns, row, e)?,
                        }
                    }
                };
                k.push(d);
            }
            keys.push(k);
        }
        let mut idx: Vec<usize> = (0..table.rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (i, (_, desc)) in s.order_by.iter().enumerate() {
                let o = datum_cmp(&keys[a][i], &keys[b][i]);
                let o = if *desc { o.reverse() } else { o };
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            a.cmp(&b) // stable tie-break
        });
        let mut reordered = Vec::with_capacity(table.rows.len());
        for i in idx {
            reordered.push(table.rows[i].clone());
        }
        table.rows = reordered;
    }
    if let Some(n) = s.limit {
        table.rows.truncate(n);
    }
    Ok(())
}

/// Evaluates a scalar (non-aggregate) expression over one row.
fn eval_scalar(g: &Graph, columns: &[String], row: &[Datum], e: &Expr) -> Result<Datum, ExecError> {
    match e {
        Expr::Literal(v) => Ok(Datum::Val(v.clone())),
        Expr::Column(name) => {
            let i = columns
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| ExecError::UnknownColumn(name.clone()))?;
            Ok(row[i].clone())
        }
        Expr::Prop(var, key) => {
            let i = columns
                .iter()
                .position(|c| c == var)
                .ok_or_else(|| ExecError::UnknownColumn(var.clone()))?;
            match &row[i] {
                Datum::Vertex(v) => Ok(g
                    .vertex_prop(*v, key)
                    .map(|p| Datum::Val(p.clone()))
                    .unwrap_or(Datum::Null)),
                _ => Err(ExecError::NotAVertex(var.clone())),
            }
        }
        Expr::Agg(_, _) => Err(ExecError::MisplacedAggregate),
        // graphs store slot ids, not external ids; an `id()` that was
        // not resolved into a pinned anchor by the serving layer (see
        // `Query::split_extid_anchors`) cannot be answered here
        Expr::VertexIdOf(_) => Err(ExecError::Unsupported(
            "id() requires external-id resolution by the serving engine".into(),
        )),
    }
}

/// Evaluates an expression that may be an aggregate, over a group.
fn eval_with_agg(
    g: &Graph,
    columns: &[String],
    group: &[&Vec<Datum>],
    e: &Expr,
) -> Result<Datum, ExecError> {
    match e {
        Expr::Agg(func, inner) => match func {
            AggFunc::Count => match inner {
                None => Ok(Datum::Val(Value::Int(group.len() as i64))),
                Some(inner) => {
                    let mut n = 0i64;
                    for row in group {
                        if !matches!(eval_scalar(g, columns, row, inner)?, Datum::Null) {
                            n += 1;
                        }
                    }
                    Ok(Datum::Val(Value::Int(n)))
                }
            },
            AggFunc::Sum | AggFunc::Avg => {
                let inner = inner.as_ref().ok_or(ExecError::MisplacedAggregate)?;
                let mut sum_i: i64 = 0;
                let mut sum_f: f64 = 0.0;
                let mut all_int = true;
                let mut n = 0usize;
                for row in group {
                    match eval_scalar(g, columns, row, inner)? {
                        Datum::Val(Value::Int(v)) => {
                            sum_i = sum_i.wrapping_add(v);
                            sum_f += v as f64;
                            n += 1;
                        }
                        Datum::Val(Value::Float(v)) => {
                            all_int = false;
                            sum_f += v;
                            n += 1;
                        }
                        Datum::Null => {}
                        _ => return Err(ExecError::NotAVertex("aggregate input".into())),
                    }
                }
                if n == 0 {
                    return Ok(if *func == AggFunc::Sum {
                        Datum::Val(Value::Int(0))
                    } else {
                        Datum::Null
                    });
                }
                Ok(match func {
                    AggFunc::Sum if all_int => Datum::Val(Value::Int(sum_i)),
                    AggFunc::Sum => Datum::Val(Value::Float(sum_f)),
                    _ => Datum::Val(Value::Float(sum_f / n as f64)),
                })
            }
            AggFunc::Min | AggFunc::Max => {
                let inner = inner.as_ref().ok_or(ExecError::MisplacedAggregate)?;
                let mut best: Option<Value> = None;
                for row in group {
                    if let Datum::Val(v) = eval_scalar(g, columns, row, inner)? {
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let keep_new = match func {
                                    AggFunc::Min => v.total_cmp(&b) == std::cmp::Ordering::Less,
                                    _ => v.total_cmp(&b) == std::cmp::Ordering::Greater,
                                };
                                if keep_new {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                }
                Ok(best.map(Datum::Val).unwrap_or(Datum::Null))
            }
        },
        // non-aggregate in a grouped query: take it from the first row
        // (callers group by these expressions, so it is constant within
        // the group; empty implicit groups yield Null)
        other => match group.first() {
            Some(row) => eval_scalar(g, columns, row, other),
            None => Ok(Datum::Null),
        },
    }
}

fn eval_predicate(
    g: &Graph,
    columns: &[String],
    row: &[Datum],
    pred: &Predicate,
) -> Result<bool, ExecError> {
    for (l, op, r) in &pred.conjuncts {
        let lv = eval_scalar(g, columns, row, l)?;
        let rv = eval_scalar(g, columns, row, r)?;
        let (Datum::Val(lv), Datum::Val(rv)) = (&lv, &rv) else {
            // null or vertex comparisons are false (SQL-ish semantics)
            return Ok(false);
        };
        let ord = lv.total_cmp(rv);
        let pass = match op {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        };
        if !pass {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use kaskade_graph::GraphBuilder;

    /// j0 -w-> f0 -r-> j1 -w-> f1 -r-> j2 ; j0 -w-> f2 -r-> j3
    /// CPU: j0=1, j1=10, j2=100, j3=1000; pipelines p0/p1 alternating.
    fn lineage() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        let f2 = b.add_vertex("File");
        let j3 = b.add_vertex("Job");
        for (v, cpu, p) in [
            (j0, 1, "p0"),
            (j1, 10, "p1"),
            (j2, 100, "p0"),
            (j3, 1000, "p1"),
        ] {
            b.set_vertex_prop(v, "CPU", Value::Int(cpu));
            b.set_vertex_prop(v, "pipelineName", Value::Str(p.into()));
        }
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j1, f1, "WRITES_TO");
        b.add_edge(f1, j2, "IS_READ_BY");
        b.add_edge(j0, f2, "WRITES_TO");
        b.add_edge(f2, j3, "IS_READ_BY");
        b.finish()
    }

    fn exec(g: &Graph, src: &str) -> Table {
        execute(g, &parse(src).unwrap()).unwrap()
    }

    #[test]
    fn bare_match_returns_vertices() {
        let g = lineage();
        let t = exec(&g, "MATCH (j:Job) RETURN j");
        assert_eq!(t.columns, vec!["j"]);
        assert_eq!(t.len(), 4);
        assert!(matches!(t.rows[0][0], Datum::Vertex(_)));
    }

    #[test]
    fn count_star_vertex_count() {
        let g = lineage();
        let t = exec(&g, "SELECT COUNT(*) FROM (MATCH (v) RETURN v)");
        assert_eq!(t.scalar().unwrap().as_int(), Some(7));
    }

    #[test]
    fn projection_of_props() {
        let g = lineage();
        let t = exec(&g, "SELECT J.CPU FROM (MATCH (j:Job) RETURN j AS J)");
        let mut cpus: Vec<i64> = t.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        cpus.sort_unstable();
        assert_eq!(cpus, vec![1, 10, 100, 1000]);
    }

    #[test]
    fn where_filters() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT J FROM (MATCH (j:Job) RETURN j AS J) WHERE J.CPU > 50",
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn where_on_string() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT J FROM (MATCH (j:Job) RETURN j AS J) WHERE J.pipelineName = 'p0'",
        );
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn group_by_with_sum() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT J.pipelineName, SUM(J.CPU) FROM (MATCH (j:Job) RETURN j AS J)
             GROUP BY J.pipelineName",
        );
        assert_eq!(t.len(), 2);
        let mut rows: Vec<(String, i64)> = t
            .rows
            .iter()
            .map(|r| {
                let Datum::Val(Value::Str(s)) = &r[0] else {
                    panic!()
                };
                (s.clone(), r[1].as_int().unwrap())
            })
            .collect();
        rows.sort();
        assert_eq!(rows, vec![("p0".into(), 101), ("p1".into(), 1010)]);
    }

    #[test]
    fn avg_returns_float() {
        let g = lineage();
        let t = exec(&g, "SELECT AVG(J.CPU) FROM (MATCH (j:Job) RETURN j AS J)");
        let Datum::Val(Value::Float(avg)) = t.rows[0][0] else {
            panic!()
        };
        assert!((avg - 277.75).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT MIN(J.CPU), MAX(J.CPU) FROM (MATCH (j:Job) RETURN j AS J)",
        );
        assert_eq!(t.rows[0][0].as_int(), Some(1));
        assert_eq!(t.rows[0][1].as_int(), Some(1000));
    }

    #[test]
    fn aggregates_on_empty_input() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT COUNT(*), SUM(J.CPU), AVG(J.CPU) FROM
             (SELECT J FROM (MATCH (j:Job) RETURN j AS J) WHERE J.CPU > 99999)",
        );
        assert_eq!(t.rows[0][0].as_int(), Some(0));
        assert_eq!(t.rows[0][1].as_int(), Some(0));
        assert_eq!(t.rows[0][2], Datum::Null);
    }

    #[test]
    fn listing_1_blast_radius_end_to_end() {
        let g = lineage();
        let t = exec(&g, crate::listings::LISTING_1);
        // inner query: one row per (A,B) downstream pair with
        // T_CPU = SUM over that pair's rows = B.CPU (pairs are deduped).
        // outer: AVG(T_CPU) per pipeline of A.
        // p0: A=j0 with pairs (j0,j1),(j0,j2),(j0,j3) -> (10+100+1000)/3
        // p1: A=j1 with pair (j1,j2) -> 100
        assert_eq!(t.len(), 2);
        let mut rows: Vec<(String, f64)> = t
            .rows
            .iter()
            .map(|r| {
                let Datum::Val(Value::Str(s)) = &r[0] else {
                    panic!()
                };
                (s.clone(), r[1].as_f64().unwrap())
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        assert!((rows[0].1 - 370.0).abs() < 1e-9, "p0 avg: {:?}", rows[0]);
        assert_eq!(rows[0].0, "p0");
        assert_eq!(rows[1], ("p1".to_string(), 100.0));
    }

    #[test]
    fn nested_group_by_column_passthrough() {
        let g = lineage();
        // inner groups by vertex pairs, outer consumes alias column
        let t = exec(
            &g,
            "SELECT A, SUM(B.CPU) AS T FROM (
               MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job)
               RETURN a AS A, b AS B
             ) GROUP BY A, B",
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.columns, vec!["A", "T"]);
    }

    #[test]
    fn unknown_column_errors() {
        let g = lineage();
        let q = parse("SELECT Z FROM (MATCH (j:Job) RETURN j AS J)").unwrap();
        assert!(matches!(execute(&g, &q), Err(ExecError::UnknownColumn(_))));
    }

    #[test]
    fn prop_on_scalar_column_errors() {
        let g = lineage();
        let q = parse("SELECT T.CPU FROM (SELECT COUNT(*) AS T FROM (MATCH (j:Job) RETURN j))")
            .unwrap();
        assert!(matches!(execute(&g, &q), Err(ExecError::NotAVertex(_))));
    }

    #[test]
    fn missing_property_is_null_and_skipped_by_aggs() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("Job");
        b.set_vertex_prop(a, "CPU", Value::Int(5));
        b.add_vertex("Job"); // no CPU
        let g = b.finish();
        let t = exec(
            &g,
            "SELECT COUNT(J.CPU), SUM(J.CPU) FROM (MATCH (j:Job) RETURN j AS J)",
        );
        assert_eq!(t.rows[0][0].as_int(), Some(1));
        assert_eq!(t.rows[0][1].as_int(), Some(5));
    }

    #[test]
    fn order_by_desc_with_limit() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT J.CPU FROM (MATCH (j:Job) RETURN j AS J) ORDER BY J.CPU DESC LIMIT 2",
        );
        let cpus: Vec<i64> = t.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(cpus, vec![1000, 100]);
    }

    #[test]
    fn order_by_alias_column() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT J.pipelineName AS P, SUM(J.CPU) AS S FROM (MATCH (j:Job) RETURN j AS J)
             GROUP BY J.pipelineName ORDER BY S DESC",
        );
        let sums: Vec<i64> = t.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(sums, vec![1010, 101]);
    }

    #[test]
    fn limit_zero_and_overlong() {
        let g = lineage();
        let t = exec(&g, "SELECT J FROM (MATCH (j:Job) RETURN j AS J) LIMIT 0");
        assert!(t.is_empty());
        let t = exec(&g, "SELECT J FROM (MATCH (j:Job) RETURN j AS J) LIMIT 99");
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn where_comparing_two_props() {
        let g = lineage();
        // jobs whose CPU exceeds 50 AND pipeline p0 — cross-conjunct
        let t = exec(
            &g,
            "SELECT J FROM (MATCH (j:Job) RETURN j AS J)
             WHERE J.CPU > 50 AND J.pipelineName = 'p0'",
        );
        assert_eq!(t.len(), 1); // j2 (CPU=100, p0)
    }

    #[test]
    fn where_on_missing_property_is_false() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT F FROM (MATCH (f:File) RETURN f AS F) WHERE F.CPU > 0",
        );
        assert!(t.is_empty());
    }

    #[test]
    fn count_on_vertex_column_counts_non_null() {
        let g = lineage();
        let t = exec(&g, "SELECT COUNT(J) FROM (MATCH (j:Job) RETURN j AS J)");
        assert_eq!(t.scalar().unwrap().as_int(), Some(4));
    }

    #[test]
    fn literal_projection() {
        let g = lineage();
        let t = exec(
            &g,
            "SELECT 42, J FROM (MATCH (j:Job) RETURN j AS J) LIMIT 1",
        );
        assert_eq!(t.rows[0][0].as_int(), Some(42));
    }

    #[test]
    fn datum_display() {
        assert_eq!(Datum::Val(Value::Int(3)).to_string(), "3");
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Vertex(VertexId(7)).to_string(), "v7");
    }

    #[test]
    fn group_order_is_deterministic() {
        let g = lineage();
        let a = exec(
            &g,
            "SELECT J.pipelineName, COUNT(*) FROM (MATCH (j:Job) RETURN j AS J) GROUP BY J.pipelineName",
        );
        let b2 = exec(
            &g,
            "SELECT J.pipelineName, COUNT(*) FROM (MATCH (j:Job) RETURN j AS J) GROUP BY J.pipelineName",
        );
        assert_eq!(a, b2);
    }
}
