//! # kaskade-query
//!
//! The hybrid SQL + Cypher query language and execution engine of the
//! Kaskade reproduction (replaces Neo4j's Cypher runtime; §III-B).
//!
//! Queries express path traversals with Cypher-style `MATCH` graph
//! patterns — including variable-length paths — and filtering /
//! aggregation with SQL-style `SELECT` / `WHERE` / `GROUP BY`:
//!
//! ```
//! use kaskade_graph::{GraphBuilder, Value};
//! use kaskade_query::{execute, parse};
//!
//! let mut b = GraphBuilder::new();
//! let j1 = b.add_vertex("Job");
//! let f = b.add_vertex("File");
//! let j2 = b.add_vertex("Job");
//! b.set_vertex_prop(j2, "CPU", Value::Int(7));
//! b.add_edge(j1, f, "WRITES_TO");
//! b.add_edge(f, j2, "IS_READ_BY");
//! let g = b.finish();
//!
//! let q = parse(
//!     "SELECT SUM(B.CPU) FROM (
//!        MATCH (a:Job)-[:WRITES_TO]->(x:File) (x:File)-[:IS_READ_BY]->(b:Job)
//!        RETURN a AS A, b AS B)",
//! ).unwrap();
//! let t = execute(&g, &q).unwrap();
//! assert_eq!(t.scalar().unwrap().as_int(), Some(7));
//! ```
//!
//! The AST ([`ast`]) is public and mutable so that Kaskade's view-based
//! rewriter can splice connector edges into patterns (§V-C).

#![warn(missing_docs)]

pub mod ast;
mod cost;
mod exec;
mod parser;
mod plan;

pub use ast::{
    AggFunc, CmpOp, EdgePattern, Expr, GraphPattern, NodePattern, Predicate, Query, SelectStmt,
    Source,
};
pub use cost::CostModel;
pub use exec::{execute, execute_with_pattern, Datum, PatternRows, Table};
pub use parser::{parse, QueryParseError};
pub use plan::{ExecError, PatternPlan};

/// The paper's Listing 1 (job blast radius over the raw graph) and
/// Listing 4 (the same query rewritten over a 2-hop job-to-job
/// connector), used by tests, examples and benchmarks.
pub mod listings {
    /// Listing 1: job blast radius over the raw provenance graph.
    pub const LISTING_1: &str = "
        SELECT A.pipelineName, AVG(T_CPU) FROM (
          SELECT A, SUM(B.CPU) AS T_CPU FROM (
            MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
                  (q_f1:File)-[r*0..8]->(q_f2:File)
                  (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
            RETURN q_j1 as A, q_j2 as B
          ) GROUP BY A, B
        ) GROUP BY A.pipelineName";

    /// Listing 4: blast radius rewritten over the job-to-job 2-hop
    /// connector. Hop bounds `1..5` cover the same raw-path window
    /// (2..10 raw hops) as Listing 1's `1 + 0..8 + 1`.
    pub const LISTING_4: &str = "
        SELECT A.pipelineName, AVG(T_CPU) FROM (
          SELECT A, SUM(B.CPU) AS T_CPU FROM (
            MATCH (q_j1:Job)-[:JOB_TO_JOB_2_HOP*1..5]->(q_j2:Job)
            RETURN q_j1 as A, q_j2 as B
          ) GROUP BY A, B
        ) GROUP BY A.pipelineName";
}
