//! Parser for the hybrid SQL + Cypher query language.
//!
//! Accepts exactly the style of the paper's Listing 1/Listing 4:
//!
//! ```text
//! SELECT A.pipelineName, AVG(T_CPU) FROM (
//!   SELECT A, SUM(B.CPU) AS T_CPU FROM (
//!     MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
//!           (q_f1:File)-[r*0..8]->(q_f2:File)
//!           (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
//!     RETURN q_j1 as A, q_j2 as B
//!   ) GROUP BY A, B
//! ) GROUP BY A.pipelineName
//! ```
//!
//! Keywords are case-insensitive; pattern elements may be juxtaposed or
//! comma-separated; `-[r*0..8]->` is a variable-length path and
//! `-[:TYPE*1..4]->` a typed one.

use std::fmt;

use kaskade_graph::Value;

use crate::ast::{
    AggFunc, CmpOp, EdgePattern, Expr, GraphPattern, Predicate, Query, SelectStmt, Source,
};

/// A query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    DotDot,
    Colon,
    Star,
    ArrowStart, // -[
    ArrowEnd,   // ]->
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, QueryParseError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let err = |i: usize, m: &str| QueryParseError {
        offset: i,
        message: m.to_string(),
    };
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            b'(' => {
                toks.push((Tok::LParen, start));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, start));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, start));
                i += 1;
            }
            b':' => {
                toks.push((Tok::Colon, start));
                i += 1;
            }
            b'*' => {
                toks.push((Tok::Star, start));
                i += 1;
            }
            b'.' => {
                if b.get(i + 1) == Some(&b'.') {
                    toks.push((Tok::DotDot, start));
                    i += 2;
                } else {
                    toks.push((Tok::Dot, start));
                    i += 1;
                }
            }
            b'-' => {
                if b.get(i + 1) == Some(&b'[') {
                    toks.push((Tok::ArrowStart, start));
                    i += 2;
                } else {
                    return Err(err(
                        i,
                        "expected `-[` (only right-directed edges supported)",
                    ));
                }
            }
            b']' => {
                if b.get(i + 1) == Some(&b'-') && b.get(i + 2) == Some(&b'>') {
                    toks.push((Tok::ArrowEnd, start));
                    i += 3;
                } else {
                    return Err(err(i, "expected `]->`"));
                }
            }
            b'=' => {
                toks.push((Tok::Eq, start));
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'>') {
                    toks.push((Tok::Ne, start));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, start));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, start));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, start));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, start));
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != b'\'' {
                    s.push(b[i] as char);
                    i += 1;
                }
                if i >= b.len() {
                    return Err(err(start, "unterminated string literal"));
                }
                i += 1;
                toks.push((Tok::Str(s), start));
            }
            b'0'..=b'9' => {
                let mut j = i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                // float only when a single dot followed by a digit
                if j < b.len() && b[j] == b'.' && j + 1 < b.len() && b[j + 1].is_ascii_digit() {
                    let mut k = j + 1;
                    while k < b.len() && b[k].is_ascii_digit() {
                        k += 1;
                    }
                    let f: f64 = src[i..k]
                        .parse()
                        .map_err(|_| err(start, "bad float literal"))?;
                    toks.push((Tok::Float(f), start));
                    i = k;
                } else {
                    let v: i64 = src[i..j]
                        .parse()
                        .map_err(|_| err(start, "bad integer literal"))?;
                    toks.push((Tok::Int(v), start));
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push((Tok::Ident(src[i..j].to_string()), start));
                i = j;
            }
            _ => return Err(err(i, &format!("unexpected character `{}`", c as char))),
        }
    }
    Ok(toks)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, QueryParseError> {
        Err(QueryParseError {
            offset: self.offset(),
            message: msg.into(),
        })
    }

    /// Case-insensitive keyword check.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), QueryParseError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, QueryParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn parse_query(&mut self) -> Result<Query, QueryParseError> {
        if self.at_kw("MATCH") {
            Ok(Query::Match(self.parse_match()?))
        } else if self.at_kw("SELECT") {
            Ok(Query::Select(self.parse_select()?))
        } else {
            self.err("query must start with SELECT or MATCH")
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt, QueryParseError> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            let e = self.parse_expr()?;
            let alias = if self.eat_kw("AS") {
                self.ident()?
            } else {
                default_alias(&e)
            };
            items.push((e, alias));
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_kw("FROM")?;
        self.expect(Tok::LParen, "`(` after FROM")?;
        let from = if self.at_kw("MATCH") {
            Source::Match(self.parse_match()?)
        } else if self.at_kw("SELECT") {
            Source::Subquery(Box::new(self.parse_select()?))
        } else {
            return self.err("FROM source must be MATCH or SELECT");
        };
        self.expect(Tok::RParen, "`)` closing FROM source")?;
        let where_clause = if self.eat_kw("WHERE") {
            let mut conjuncts = Vec::new();
            loop {
                let l = self.parse_expr()?;
                let op = match self.bump() {
                    Some(Tok::Eq) => CmpOp::Eq,
                    Some(Tok::Ne) => CmpOp::Ne,
                    Some(Tok::Lt) => CmpOp::Lt,
                    Some(Tok::Le) => CmpOp::Le,
                    Some(Tok::Gt) => CmpOp::Gt,
                    Some(Tok::Ge) => CmpOp::Ge,
                    other => return self.err(format!("expected comparison, found {other:?}")),
                };
                let r = self.parse_expr()?;
                conjuncts.push((l, op, r));
                if !self.eat_kw("AND") {
                    break;
                }
            }
            Some(Predicate { conjuncts })
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if self.peek() == Some(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Tok::Int(v)) if v >= 0 => Some(v as usize),
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, QueryParseError> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.bump();
                Ok(Expr::Literal(Value::Int(v)))
            }
            Some(Tok::Float(v)) => {
                let v = *v;
                self.bump();
                Ok(Expr::Literal(Value::Float(v)))
            }
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Tok::Ident(name)) => {
                let agg = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let (Some(agg), Some(&Tok::LParen)) = (agg, self.peek2()) {
                    self.bump(); // name
                    self.bump(); // (
                    let inner = if self.peek() == Some(&Tok::Star) {
                        self.bump();
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect(Tok::RParen, "`)` closing aggregate")?;
                    return Ok(Expr::Agg(agg, inner));
                }
                // `id(var)`: the stable external id of a bound vertex
                if name.eq_ignore_ascii_case("ID") && self.peek2() == Some(&Tok::LParen) {
                    self.bump(); // id
                    self.bump(); // (
                    let var = self.ident()?;
                    self.expect(Tok::RParen, "`)` closing id()")?;
                    return Ok(Expr::VertexIdOf(var));
                }
                let name = self.ident()?;
                if self.peek() == Some(&Tok::Dot) {
                    self.bump();
                    let key = self.ident()?;
                    Ok(Expr::Prop(name, key))
                } else {
                    Ok(Expr::Column(name))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn parse_match(&mut self) -> Result<GraphPattern, QueryParseError> {
        self.expect_kw("MATCH")?;
        let mut pattern = GraphPattern {
            nodes: vec![],
            edges: vec![],
            returns: vec![],
        };
        // one or more path elements, comma- or juxtaposition-separated
        loop {
            self.parse_path(&mut pattern)?;
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
                continue;
            }
            if self.peek() == Some(&Tok::LParen) {
                continue; // juxtaposed next path element
            }
            break;
        }
        self.expect_kw("RETURN")?;
        loop {
            let var = self.ident()?;
            let alias = if self.eat_kw("AS") {
                self.ident()?
            } else {
                var.clone()
            };
            pattern.returns.push((var, alias));
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(pattern)
    }

    /// `(a:T)-[..]->(b:T2)-[..]->(c)` — a chain of nodes and edges.
    fn parse_path(&mut self, pattern: &mut GraphPattern) -> Result<(), QueryParseError> {
        let mut prev = self.parse_node(pattern)?;
        while self.peek() == Some(&Tok::ArrowStart) {
            let edge = self.parse_edge()?;
            let next = self.parse_node(pattern)?;
            pattern.edges.push(EdgePattern {
                src: prev,
                dst: next.clone(),
                etype: edge.0,
                hops: edge.1,
            });
            prev = next;
        }
        Ok(())
    }

    fn parse_node(&mut self, pattern: &mut GraphPattern) -> Result<String, QueryParseError> {
        self.expect(Tok::LParen, "`(` starting node pattern")?;
        // anonymous node `()` gets a fresh variable
        if self.peek() == Some(&Tok::RParen) {
            self.bump();
            let var = format!("_anon{}", pattern.nodes.len());
            pattern.add_node(&var, None);
            return Ok(var);
        }
        let var = self.ident()?;
        let label = if self.peek() == Some(&Tok::Colon) {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(Tok::RParen, "`)` closing node pattern")?;
        pattern.add_node(&var, label.as_deref());
        Ok(var)
    }

    /// Parses `-[ [var] [:TYPE] [*L..U] ]->`, returning (etype, hops).
    #[allow(clippy::type_complexity)]
    fn parse_edge(&mut self) -> Result<(Option<String>, Option<(usize, usize)>), QueryParseError> {
        self.expect(Tok::ArrowStart, "`-[`")?;
        // optional variable name (ignored — paths are not bound to vars)
        if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() != Some(&Tok::Dot) {
            self.bump();
        }
        let etype = if self.peek() == Some(&Tok::Colon) {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        let hops = if self.peek() == Some(&Tok::Star) {
            self.bump();
            let lo = match self.bump() {
                Some(Tok::Int(v)) if v >= 0 => v as usize,
                other => return self.err(format!("expected hop lower bound, found {other:?}")),
            };
            self.expect(Tok::DotDot, "`..` in hop range")?;
            let hi = match self.bump() {
                Some(Tok::Int(v)) if v >= 0 => v as usize,
                other => return self.err(format!("expected hop upper bound, found {other:?}")),
            };
            if hi < lo {
                return self.err("hop upper bound below lower bound");
            }
            Some((lo, hi))
        } else {
            None
        };
        self.expect(Tok::ArrowEnd, "`]->`")?;
        Ok((etype, hops))
    }
}

fn default_alias(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.clone(),
        Expr::Prop(v, k) => format!("{v}.{k}"),
        Expr::Literal(v) => v.to_string(),
        Expr::Agg(f, Some(inner)) => format!("{}({})", f.name(), default_alias(inner)),
        Expr::Agg(f, None) => format!("{}(*)", f.name()),
        Expr::VertexIdOf(v) => format!("id({v})"),
    }
}

/// Parses a hybrid SQL+Cypher query.
pub fn parse(src: &str) -> Result<Query, QueryParseError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let q = p.parse_query()?;
    if p.peek().is_some() {
        return p.err("trailing tokens after query");
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 1, verbatim.
    const LISTING_1: &str = "
        SELECT A.pipelineName, AVG(T_CPU) FROM (
          SELECT A, SUM(B.CPU) AS T_CPU FROM (
            MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
                  (q_f1:File)-[r*0..8]->(q_f2:File)
                  (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
            RETURN q_j1 as A, q_j2 as B
          ) GROUP BY A, B
        ) GROUP BY A.pipelineName";

    /// The paper's Listing 4 (rewritten over the 2-hop connector).
    const LISTING_4: &str = "
        SELECT A.pipelineName, AVG(T_CPU) FROM (
          SELECT A, SUM(B.CPU) AS T_CPU FROM (
            MATCH (q_j1:Job)-[:JOB_TO_JOB_2_HOP*1..4]->(q_j2:Job)
            RETURN q_j1 as A, q_j2 as B
          ) GROUP BY A, B
        ) GROUP BY A.pipelineName";

    #[test]
    fn parses_listing_1() {
        let q = parse(LISTING_1).unwrap();
        let p = q.pattern().unwrap();
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.edges.len(), 3);
        assert_eq!(p.edges[0].etype.as_deref(), Some("WRITES_TO"));
        assert_eq!(p.edges[1].hops, Some((0, 8)));
        assert_eq!(p.edges[1].etype, None);
        assert_eq!(p.edges[2].etype.as_deref(), Some("IS_READ_BY"));
        assert_eq!(
            p.returns,
            vec![
                ("q_j1".to_string(), "A".to_string()),
                ("q_j2".to_string(), "B".to_string())
            ]
        );
        // outer select: A.pipelineName, AVG(T_CPU)
        let Query::Select(outer) = &q else { panic!() };
        assert_eq!(outer.items.len(), 2);
        assert_eq!(
            outer.items[0].0,
            Expr::Prop("A".into(), "pipelineName".into())
        );
        assert!(outer.items[1].0.has_agg());
        assert_eq!(outer.group_by.len(), 1);
    }

    #[test]
    fn parses_listing_4_connector_rewrite() {
        let q = parse(LISTING_4).unwrap();
        let p = q.pattern().unwrap();
        assert_eq!(p.edges.len(), 1);
        assert_eq!(p.edges[0].etype.as_deref(), Some("JOB_TO_JOB_2_HOP"));
        assert_eq!(p.edges[0].hops, Some((1, 4)));
    }

    #[test]
    fn bare_match() {
        let q = parse("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f").unwrap();
        let Query::Match(p) = &q else { panic!() };
        assert_eq!(p.returns.len(), 2);
        assert_eq!(p.returns[0], ("a".to_string(), "a".to_string()));
    }

    #[test]
    fn node_scan_pattern() {
        let q = parse("MATCH (v:Job) RETURN v").unwrap();
        let p = q.pattern().unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.nodes.len(), 1);
    }

    #[test]
    fn anonymous_nodes() {
        let q = parse("MATCH (a)-[:E]->() RETURN a").unwrap();
        let p = q.pattern().unwrap();
        assert_eq!(p.nodes.len(), 2);
        assert!(p.nodes[1].var.starts_with("_anon"));
    }

    #[test]
    fn where_clause() {
        let q =
            parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A) WHERE A.CPU > 100 AND A.CPU <= 500")
                .unwrap();
        let Query::Select(s) = q else { panic!() };
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts.len(), 2);
        assert_eq!(w.conjuncts[0].1, CmpOp::Gt);
        assert_eq!(w.conjuncts[1].1, CmpOp::Le);
    }

    #[test]
    fn count_star() {
        let q = parse("SELECT COUNT(*) FROM (MATCH (a) RETURN a)").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items[0].0, Expr::Agg(AggFunc::Count, None));
        assert_eq!(s.items[0].1, "COUNT(*)");
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select A from (match (a:Job) return a as A) group by A").is_ok());
    }

    #[test]
    fn string_literals() {
        let q =
            parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A) WHERE A.pipelineName = 'pipeline3'")
                .unwrap();
        let Query::Select(s) = q else { panic!() };
        let (_, _, r) = &s.where_clause.unwrap().conjuncts[0];
        assert_eq!(*r, Expr::Literal(Value::Str("pipeline3".into())));
    }

    #[test]
    fn shared_variables_join_paths() {
        let q = parse(
            "MATCH (a:Job)-[:WRITES_TO]->(f:File), (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        )
        .unwrap();
        let p = q.pattern().unwrap();
        assert_eq!(p.nodes.len(), 3); // a, f, b — f deduplicated
    }

    #[test]
    fn parse_errors() {
        assert!(parse("FOO").is_err());
        assert!(parse("MATCH (a RETURN a").is_err());
        assert!(parse("MATCH (a)-[:E]-(b) RETURN a").is_err()); // undirected
        assert!(parse("MATCH (a)-[*3..1]->(b) RETURN a").is_err()); // bad range
        assert!(parse("SELECT FROM (MATCH (a) RETURN a)").is_err());
        assert!(parse("MATCH (a) RETURN a extra").is_err());
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse(
            "SELECT J.CPU FROM (MATCH (j:Job) RETURN j AS J)
             ORDER BY J.CPU DESC, J.pipelineName LIMIT 3",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].1, "first key is DESC");
        assert!(!s.order_by[1].1, "second key defaults to ASC");
        assert_eq!(s.limit, Some(3));
        assert!(parse("SELECT A FROM (MATCH (a) RETURN a AS A) LIMIT x").is_err());
    }

    #[test]
    fn id_of_vertex_expression() {
        let q = parse("SELECT A FROM (MATCH (a:Job) RETURN a AS A) WHERE id(A) = 42").unwrap();
        let Query::Select(s) = q else { panic!() };
        let (l, op, r) = &s.where_clause.unwrap().conjuncts[0];
        assert_eq!(*l, Expr::VertexIdOf("A".into()));
        assert_eq!(*op, CmpOp::Eq);
        assert_eq!(*r, Expr::Literal(Value::Int(42)));
        // `id` without a call stays an ordinary column reference
        let q = parse("SELECT id FROM (MATCH (a:Job) RETURN a AS id)").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items[0].0, Expr::Column("id".into()));
        // default alias
        let q = parse("SELECT id(A) FROM (MATCH (a:Job) RETURN a AS A)").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items[0].1, "id(A)");
        assert!(parse("SELECT A FROM (MATCH (a) RETURN a AS A) WHERE id() = 1").is_err());
    }

    #[test]
    fn typed_variable_length() {
        let q = parse("MATCH (a:User)-[:FOLLOWS*1..3]->(b:User) RETURN a, b").unwrap();
        let p = q.pattern().unwrap();
        assert_eq!(p.edges[0].etype.as_deref(), Some("FOLLOWS"));
        assert_eq!(p.edges[0].hops, Some((1, 3)));
    }
}
