//! Graph pattern matching: planning and execution of `MATCH` clauses.
//!
//! A [`GraphPattern`] is compiled into a sequence of steps (anchor scan,
//! edge expansion, variable-length expansion, bound-pair check) by a
//! greedy planner that starts from the most selective labeled node and
//! always extends along a bound endpoint — the standard
//! scan-then-expand strategy of graph engines like Neo4j, which the
//! paper's cost model assumes (§V-A).
//!
//! ## Variable-length semantics
//!
//! A `-[*lo..hi]->` pattern matches **distinct** destination vertices
//! whose BFS shortest-path distance `d` from the source satisfies
//! `lo <= d <= hi` (following only edges of the given type, if any).
//! This reachability semantics is what the paper's traversal queries
//! need ("jobs up to 10 hops away", k-hop ego-neighborhoods) and keeps
//! view-based rewritings exactly equivalent; it avoids the path-
//! multiplicity blowup of full path enumeration. For the same reason,
//! `RETURN` projects with DISTINCT semantics (see
//! [`PatternPlan::execute`]).

use std::collections::VecDeque;
use std::fmt;

use kaskade_graph::{Graph, Symbol, VertexId};

use crate::ast::GraphPattern;

/// Errors raised while planning or executing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A RETURN item references a variable not bound by the pattern.
    UnknownVariable(String),
    /// An expression referenced a column the input relation lacks.
    UnknownColumn(String),
    /// A property access was applied to a non-vertex column.
    NotAVertex(String),
    /// An aggregate appeared in an illegal position (e.g. WHERE).
    MisplacedAggregate,
    /// The query shape is unsupported (details in message).
    Unsupported(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownVariable(v) => write!(f, "unknown pattern variable `{v}`"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::NotAVertex(v) => write!(f, "column `{v}` is not a vertex"),
            ExecError::MisplacedAggregate => write!(f, "aggregate not allowed here"),
            ExecError::Unsupported(m) => write!(f, "unsupported query: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One planned matching step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// Enumerate all vertices for node slot (label-filtered).
    Scan(usize),
    /// Expand a single-hop edge pattern from a bound slot.
    Expand {
        edge: usize,
        /// true: src bound, expand out-edges; false: dst bound, in-edges.
        forward: bool,
    },
    /// Both endpoints bound: verify connectivity.
    Check(usize),
}

/// A compiled pattern: node slots, label symbols, and step order.
pub struct PatternPlan<'p> {
    pattern: &'p GraphPattern,
    /// Variable name per slot.
    vars: Vec<String>,
    steps: Vec<Step>,
    /// Per-slot pinned vertex (external-id anchors): a pinned slot may
    /// bind only that exact vertex, and its scan visits one slot.
    pins: Vec<Option<VertexId>>,
}

impl<'p> PatternPlan<'p> {
    /// Greedily plans `pattern` against `g`'s statistics (label
    /// cardinalities).
    pub fn new(g: &Graph, pattern: &'p GraphPattern) -> Result<Self, ExecError> {
        Self::new_pinned(g, pattern, &[])
    }

    /// Like [`PatternPlan::new`], but with some pattern variables
    /// **pinned** to concrete vertices (resolved `id(v) = <ext>`
    /// anchors). A pinned variable has cardinality 1, so the planner
    /// anchors the match on it: the plan's first step degenerates from
    /// a label scan into a single-slot probe, and every other binding
    /// of that variable (via expansion) must agree with the pin.
    pub fn new_pinned(
        g: &Graph,
        pattern: &'p GraphPattern,
        pinned: &[(String, VertexId)],
    ) -> Result<Self, ExecError> {
        let vars: Vec<String> = pattern.nodes.iter().map(|n| n.var.clone()).collect();
        let slot_of = |v: &str| -> Result<usize, ExecError> {
            vars.iter()
                .position(|x| x == v)
                .ok_or_else(|| ExecError::UnknownVariable(v.to_string()))
        };
        for (v, _) in &pattern.returns {
            slot_of(v)?;
        }
        for e in &pattern.edges {
            slot_of(&e.src)?;
            slot_of(&e.dst)?;
        }

        let mut pins: Vec<Option<VertexId>> = vec![None; pattern.nodes.len()];
        for (var, v) in pinned {
            pins[slot_of(var)?] = Some(*v);
        }

        // label cardinalities for anchor choice; a pinned slot is the
        // most selective start possible (exactly one candidate)
        let mut label_count = vec![usize::MAX; pattern.nodes.len()];
        for (i, n) in pattern.nodes.iter().enumerate() {
            label_count[i] = if pins[i].is_some() {
                0
            } else {
                match &n.label {
                    Some(l) => g.vertices_of_type(l).count(),
                    None => g.vertex_count(),
                }
            };
        }

        let n_edges = pattern.edges.len();
        let mut bound = vec![false; pattern.nodes.len()];
        let mut used = vec![false; n_edges];
        let mut steps = Vec::new();
        loop {
            // 1. prefer an edge with at least one bound endpoint
            let mut picked = None;
            // prefer single-hop over variable-length expansions
            for pass in 0..2 {
                for (ei, e) in pattern.edges.iter().enumerate() {
                    if used[ei] {
                        continue;
                    }
                    let is_var = e.hops.is_some();
                    if (pass == 0 && is_var) || (pass == 1 && !is_var) {
                        continue;
                    }
                    let s = slot_of(&e.src)?;
                    let d = slot_of(&e.dst)?;
                    if bound[s] || bound[d] {
                        picked = Some((ei, s, d));
                        break;
                    }
                }
                if picked.is_some() {
                    break;
                }
            }
            if let Some((ei, s, d)) = picked {
                used[ei] = true;
                if bound[s] && bound[d] {
                    steps.push(Step::Check(ei));
                } else if bound[s] {
                    steps.push(Step::Expand {
                        edge: ei,
                        forward: true,
                    });
                    bound[d] = true;
                } else {
                    steps.push(Step::Expand {
                        edge: ei,
                        forward: false,
                    });
                    bound[s] = true;
                }
                continue;
            }
            // 2. otherwise scan the most selective unbound node that has
            //    edges, or any remaining unbound node
            let next = (0..pattern.nodes.len())
                .filter(|&i| !bound[i])
                .min_by_key(|&i| label_count[i]);
            match next {
                Some(i) => {
                    steps.push(Step::Scan(i));
                    bound[i] = true;
                }
                None => break,
            }
        }
        Ok(PatternPlan {
            pattern,
            vars,
            steps,
            pins,
        })
    }

    fn slot(&self, var: &str) -> usize {
        self.vars.iter().position(|v| v == var).expect("validated")
    }

    /// Executes the plan, returning the RETURN projection with
    /// **DISTINCT** semantics: one row per distinct binding of the
    /// projected variables. Distinctness is what makes view-based
    /// rewritings exactly equivalent (a connector edge contracts *all*
    /// parallel paths between its endpoints into one edge, so the raw
    /// query must not count path multiplicity either). Returns
    /// `(aliases, rows of vertices)`.
    pub fn execute(&self, g: &Graph) -> (Vec<String>, Vec<Vec<VertexId>>) {
        self.execute_anchored(g, &|_| true)
    }

    /// Like [`PatternPlan::execute`], but the plan's **anchor scan**
    /// (its first step, which enumerates candidate vertices before
    /// anything is bound) only considers vertices accepted by `anchor`.
    ///
    /// This is the scatter half of sharded query execution: running the
    /// same plan once per shard with disjoint, jointly exhaustive
    /// anchor predicates partitions the matching work, and because
    /// rows come back sorted and deduplicated, the sorted-merge of the
    /// per-shard row sets is **identical** to one unrestricted
    /// [`PatternPlan::execute`] — every match is anchored at exactly
    /// one vertex, and DISTINCT projection absorbs any overlap from
    /// later, unrestricted steps.
    pub fn execute_anchored(
        &self,
        g: &Graph,
        anchor: &dyn Fn(VertexId) -> bool,
    ) -> (Vec<String>, Vec<Vec<VertexId>>) {
        let label_syms: Vec<Option<Option<Symbol>>> = self
            .pattern
            .nodes
            .iter()
            .map(|n| n.label.as_ref().map(|l| g.symbol(l)))
            .collect();
        // `Some(None)` above means: label required but absent from graph
        // → zero matches possible for that slot.
        let etype_syms: Vec<Option<Option<Symbol>>> = self
            .pattern
            .edges
            .iter()
            .map(|e| e.etype.as_ref().map(|t| g.symbol(t)))
            .collect();

        let ret_slots: Vec<usize> = self
            .pattern
            .returns
            .iter()
            .map(|(v, _)| self.slot(v))
            .collect();
        let aliases: Vec<String> = self
            .pattern
            .returns
            .iter()
            .map(|(_, a)| a.clone())
            .collect();

        let mut binding: Vec<Option<VertexId>> = vec![None; self.pattern.nodes.len()];
        let mut rows = Vec::new();
        let ctx = MatchCtx {
            g,
            plan: self,
            label_syms: &label_syms,
            etype_syms: &etype_syms,
            anchor,
        };
        ctx.run(0, &mut binding, &mut |b| {
            rows.push(
                ret_slots
                    .iter()
                    .map(|&s| b[s].expect("bound"))
                    .collect::<Vec<_>>(),
            );
        });
        rows.sort();
        rows.dedup();
        (aliases, rows)
    }
}

struct MatchCtx<'a, 'p> {
    g: &'a Graph,
    plan: &'a PatternPlan<'p>,
    label_syms: &'a [Option<Option<Symbol>>],
    etype_syms: &'a [Option<Option<Symbol>>],
    /// Filter on the first (anchor) scan's candidates; `|_| true`
    /// outside sharded execution.
    anchor: &'a dyn Fn(VertexId) -> bool,
}

impl MatchCtx<'_, '_> {
    fn label_ok(&self, slot: usize, v: VertexId) -> bool {
        match &self.label_syms[slot] {
            None => true,
            Some(None) => false, // label not present in the graph at all
            Some(Some(sym)) => self.g.vertex_type_sym(v) == *sym,
        }
    }

    /// A pinned slot may only bind its pinned vertex.
    fn pin_ok(&self, slot: usize, v: VertexId) -> bool {
        self.plan.pins[slot].is_none_or(|p| p == v)
    }

    fn etype_ok(&self, ei: usize, e: kaskade_graph::EdgeId) -> bool {
        match &self.etype_syms[ei] {
            None => true,
            Some(None) => false,
            Some(Some(sym)) => self.g.edge_type_sym(e) == *sym,
        }
    }

    fn run(
        &self,
        step_idx: usize,
        binding: &mut Vec<Option<VertexId>>,
        emit: &mut dyn FnMut(&[Option<VertexId>]),
    ) {
        let Some(step) = self.plan.steps.get(step_idx) else {
            emit(binding);
            return;
        };
        match step {
            Step::Scan(slot) => {
                let slot = *slot;
                // the first step is always a scan (nothing is bound
                // yet); only it is anchor-restricted — later scans of
                // disconnected components run unrestricted on every
                // shard and DISTINCT projection absorbs the overlap
                let anchored = step_idx == 0;
                // a pinned slot probes exactly one vertex slot instead
                // of scanning (the external-id anchored fast path)
                let candidates: Box<dyn Iterator<Item = VertexId>> = match self.plan.pins[slot] {
                    Some(v) => Box::new(std::iter::once(v).filter(|&v| self.g.is_vertex_live(v))),
                    None => Box::new(self.g.vertices()),
                };
                for v in candidates {
                    if anchored && !(self.anchor)(v) {
                        continue;
                    }
                    if self.label_ok(slot, v) {
                        binding[slot] = Some(v);
                        self.run(step_idx + 1, binding, emit);
                        binding[slot] = None;
                    }
                }
            }
            Step::Expand { edge, forward } => {
                let e = &self.plan.pattern.edges[*edge];
                let (from_slot, to_slot) = if *forward {
                    (self.plan.slot(&e.src), self.plan.slot(&e.dst))
                } else {
                    (self.plan.slot(&e.dst), self.plan.slot(&e.src))
                };
                let from = binding[from_slot].expect("planner bound this slot");
                match e.hops {
                    None => {
                        // single hop: enumerate matching edges
                        if *forward {
                            for (eid, w) in self.g.out_edges(from) {
                                if self.etype_ok(*edge, eid)
                                    && self.label_ok(to_slot, w)
                                    && self.pin_ok(to_slot, w)
                                {
                                    binding[to_slot] = Some(w);
                                    self.run(step_idx + 1, binding, emit);
                                    binding[to_slot] = None;
                                }
                            }
                        } else {
                            for (eid, w) in self.g.in_edges(from) {
                                if self.etype_ok(*edge, eid)
                                    && self.label_ok(to_slot, w)
                                    && self.pin_ok(to_slot, w)
                                {
                                    binding[to_slot] = Some(w);
                                    self.run(step_idx + 1, binding, emit);
                                    binding[to_slot] = None;
                                }
                            }
                        }
                    }
                    Some((lo, hi)) => {
                        let reach =
                            var_reach(self.g, from, lo, hi, self.etype_syms[*edge], *forward);
                        for w in reach {
                            if self.label_ok(to_slot, w) && self.pin_ok(to_slot, w) {
                                binding[to_slot] = Some(w);
                                self.run(step_idx + 1, binding, emit);
                                binding[to_slot] = None;
                            }
                        }
                    }
                }
            }
            Step::Check(ei) => {
                let e = &self.plan.pattern.edges[*ei];
                let s = binding[self.plan.slot(&e.src)].expect("bound");
                let d = binding[self.plan.slot(&e.dst)].expect("bound");
                let ok = match e.hops {
                    None => self
                        .g
                        .out_edges(s)
                        .any(|(eid, w)| w == d && self.etype_ok(*ei, eid)),
                    Some((lo, hi)) => {
                        var_reach(self.g, s, lo, hi, self.etype_syms[*ei], true).contains(&d)
                    }
                };
                if ok {
                    self.run(step_idx + 1, binding, emit);
                }
            }
        }
    }
}

/// Distinct vertices whose shortest-path distance (over optionally
/// type-filtered edges, in the given direction) from `src` lies in
/// `lo..=hi`. Includes `src` itself when `lo == 0`.
fn var_reach(
    g: &Graph,
    src: VertexId,
    lo: usize,
    hi: usize,
    etype: Option<Option<Symbol>>,
    forward: bool,
) -> Vec<VertexId> {
    if matches!(etype, Some(None)) {
        // edge type absent from graph
        return if lo == 0 { vec![src] } else { vec![] };
    }
    let etype = etype.flatten();
    let mut visited = vec![false; g.vertex_slots()];
    visited[src.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back((src, 0usize));
    let mut out = Vec::new();
    if lo == 0 {
        out.push(src);
    }
    while let Some((v, d)) = queue.pop_front() {
        if d == hi {
            continue;
        }
        let edges: Box<dyn Iterator<Item = (kaskade_graph::EdgeId, VertexId)>> = if forward {
            Box::new(g.out_edges(v))
        } else {
            Box::new(g.in_edges(v))
        };
        for (eid, w) in edges {
            if visited[w.index()] {
                continue;
            }
            if let Some(t) = etype {
                if g.edge_type_sym(eid) != t {
                    continue;
                }
            }
            visited[w.index()] = true;
            if d + 1 >= lo {
                out.push(w);
            }
            queue.push_back((w, d + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use kaskade_graph::GraphBuilder;

    fn lineage() -> Graph {
        // j0 -w-> f0 -r-> j1 -w-> f1 -r-> j2 ; j0 -w-> f2 -r-> j3
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let _j2 = b.add_vertex("Job");
        let f2 = b.add_vertex("File");
        let _j3 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j1, f1, "WRITES_TO");
        b.add_edge(f1, VertexId(4), "IS_READ_BY");
        b.add_edge(j0, f2, "WRITES_TO");
        b.add_edge(f2, VertexId(6), "IS_READ_BY");
        b.finish()
    }

    fn run(g: &Graph, src: &str) -> Vec<Vec<u32>> {
        let q = parse(src).unwrap();
        let p = q.pattern().unwrap().clone();
        let plan = PatternPlan::new(g, &p).unwrap();
        let (_, rows) = plan.execute(g);
        let mut out: Vec<Vec<u32>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(|v| v.0).collect())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn single_node_scan() {
        let g = lineage();
        let rows = run(&g, "MATCH (j:Job) RETURN j");
        assert_eq!(rows, vec![vec![0], vec![2], vec![4], vec![6]]);
    }

    #[test]
    fn single_hop_typed() {
        let g = lineage();
        let rows = run(&g, "MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f");
        assert_eq!(rows, vec![vec![0, 1], vec![0, 5], vec![2, 3]]);
    }

    #[test]
    fn two_hop_join() {
        let g = lineage();
        let rows = run(
            &g,
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
        );
        assert_eq!(rows, vec![vec![0, 2], vec![0, 6], vec![2, 4]]);
    }

    #[test]
    fn variable_length_any_type() {
        let g = lineage();
        // files within 0..8 of f0 (vertex 1): itself and f1 (vertex 3)
        let rows = run(&g, "MATCH (x:File)-[r*0..8]->(y:File) RETURN x, y");
        assert!(rows.contains(&vec![1, 1])); // 0 hops
        assert!(rows.contains(&vec![1, 3])); // f0 -> j1 -> f1
        assert!(!rows.contains(&vec![3, 1])); // no backward reach
    }

    #[test]
    fn variable_length_lower_bound_excludes_source() {
        let g = lineage();
        let rows = run(&g, "MATCH (x:File)-[r*1..8]->(y:File) RETURN x, y");
        assert!(!rows.contains(&vec![1, 1]));
        assert!(rows.contains(&vec![1, 3]));
    }

    #[test]
    fn listing_1_pattern_blast_radius_pairs() {
        let g = lineage();
        let rows = run(
            &g,
            "MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
                   (q_f1:File)-[r*0..8]->(q_f2:File)
                   (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
             RETURN q_j1 as A, q_j2 as B",
        );
        // downstream pairs: (j0,j1)=(0,2), (j0,j2)=(0,4), (j0,j3)=(0,6), (j1,j2)=(2,4)
        assert_eq!(rows, vec![vec![0, 2], vec![0, 4], vec![0, 6], vec![2, 4]]);
    }

    #[test]
    fn check_step_on_cyclic_pattern() {
        // triangle a->b->c->a: pattern with all three edges
        let mut b = GraphBuilder::new();
        let x = b.add_vertex("V");
        let y = b.add_vertex("V");
        let z = b.add_vertex("V");
        b.add_edge(x, y, "E");
        b.add_edge(y, z, "E");
        b.add_edge(z, x, "E");
        let g = b.finish();
        let rows = run(
            &g,
            "MATCH (a:V)-[:E]->(b:V) (b:V)-[:E]->(c:V) (c:V)-[:E]->(a:V) RETURN a, b, c",
        );
        assert_eq!(rows.len(), 3); // three rotations
    }

    #[test]
    fn label_absent_from_graph_matches_nothing() {
        let g = lineage();
        assert!(run(&g, "MATCH (t:Task) RETURN t").is_empty());
        assert!(run(&g, "MATCH (a:Job)-[:NO_SUCH]->(b:File) RETURN a, b").is_empty());
    }

    #[test]
    fn unknown_return_variable_is_error() {
        let g = lineage();
        let q = parse("MATCH (a:Job) RETURN a").unwrap();
        let mut p = q.pattern().unwrap().clone();
        p.returns[0].0 = "zz".into();
        assert!(matches!(
            PatternPlan::new(&g, &p),
            Err(ExecError::UnknownVariable(_))
        ));
    }

    #[test]
    fn disconnected_pattern_is_cartesian() {
        let g = lineage();
        let rows = run(&g, "MATCH (a:Job) (b:File) RETURN a, b");
        assert_eq!(rows.len(), 4 * 3);
    }

    #[test]
    fn anchored_union_equals_unrestricted_execute() {
        let g = lineage();
        for src in [
            "MATCH (j:Job) RETURN j",
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b",
            "MATCH (x:File)-[r*0..8]->(y:File) RETURN x, y",
            "MATCH (a:Job) (b:File) RETURN a, b", // disconnected
        ] {
            let q = parse(src).unwrap();
            let p = q.pattern().unwrap().clone();
            let plan = PatternPlan::new(&g, &p).unwrap();
            let (cols, full) = plan.execute(&g);
            for shards in [1u32, 2, 3] {
                let mut merged = Vec::new();
                for s in 0..shards {
                    let (c, rows) = plan.execute_anchored(&g, &|v| v.0 % shards == s);
                    assert_eq!(c, cols);
                    merged.extend(rows);
                }
                merged.sort();
                merged.dedup();
                assert_eq!(merged, full, "{src} over {shards} shards");
            }
        }
    }

    #[test]
    fn pinned_variable_becomes_a_single_slot_anchor_probe() {
        let g = lineage();
        let q = parse("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f").unwrap();
        let p = q.pattern().unwrap().clone();
        // pin the job: the plan anchors on it (single-slot scan first)
        let plan = PatternPlan::new_pinned(&g, &p, &[("a".into(), VertexId(2))]).unwrap();
        assert_eq!(plan.steps[0], Step::Scan(0));
        let (_, rows) = plan.execute(&g);
        assert_eq!(rows, vec![vec![VertexId(2), VertexId(3)]]);
        // pinning the non-anchor side works through expansion too
        let plan = PatternPlan::new_pinned(&g, &p, &[("f".into(), VertexId(5))]).unwrap();
        let (_, rows) = plan.execute(&g);
        assert_eq!(rows, vec![vec![VertexId(0), VertexId(5)]]);
        // a pin that contradicts the slot's label matches nothing
        let plan = PatternPlan::new_pinned(&g, &p, &[("a".into(), VertexId(1))]).unwrap();
        assert!(plan.execute(&g).1.is_empty());
        // a pin on a tombstoned vertex matches nothing
        let dead = lineage().remove_vertices([VertexId(2)]);
        let plan = PatternPlan::new_pinned(&dead, &p, &[("a".into(), VertexId(2))]).unwrap();
        assert!(plan.execute(&dead).1.is_empty());
        // pinning an unknown variable is a planning error
        assert!(matches!(
            PatternPlan::new_pinned(&g, &p, &[("zz".into(), VertexId(0))]),
            Err(ExecError::UnknownVariable(_))
        ));
    }

    #[test]
    fn var_reach_respects_type_filter() {
        let g = lineage();
        // WRITES_TO-only walk from j0 can only reach files at hop 1
        let rows = run(&g, "MATCH (a:Job)-[:WRITES_TO*1..8]->(x:File) RETURN a, x");
        assert_eq!(rows, vec![vec![0, 1], vec![0, 5], vec![2, 3]]);
    }
}
