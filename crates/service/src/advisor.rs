//! The self-driving view-admission loop: a background control task
//! that closes the loop between the paper's offline advisor (§V
//! enumeration + knapsack selection) and the live serving runtime.
//!
//! ```text
//!   readers ──► benefit counters ┐                  ┌─► CreateView ─┐
//!              (per served view) ├─► Advisor tick ──┤               ├─► submit_ddl
//!   readers ──► miss log         ┘   (enumerate +   └─► DropView  ──┘   (own epoch,
//!              (normalized ASTs)      select_views                       WAL-logged)
//!                                     + hysteresis)
//! ```
//!
//! Each tick drains one window of workload evidence from the engine's
//! [`Metrics`] sensors — the normalized shapes of queries no view
//! could answer, and the benefit counters of queries a view did
//! answer — re-runs §V-B [`select_views`] against the **live** graph
//! statistics, diffs the chosen set against the live catalog, and
//! issues [`DdlOp`]s through the engine's own DDL write path (so every
//! migration is WAL-durable, epoch-published, and invalidates the plan
//! cache exactly like a hand-issued DDL).
//!
//! Three hysteresis guards keep the loop from thrashing under noisy or
//! oscillating workloads:
//!
//! - **dwell** ([`AdvisorConfig::min_dwell_epochs`]): a view must
//!   survive this many published epochs before the advisor may drop
//!   it, so one quiet window cannot evict a view the workload still
//!   wants;
//! - **migration cap** ([`AdvisorConfig::max_migrations_per_tick`]):
//!   at most this many DDLs per tick, so a workload cliff migrates the
//!   catalog over several epochs instead of one publish storm;
//! - **evidence floor** ([`AdvisorConfig::min_misses`]): creations
//!   need at least this many misses in the window, so a single stray
//!   query cannot trigger a materialization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use kaskade_core::{select_views, DdlOp, SelectionConfig, ViewId};
use kaskade_query::Query;

use crate::drive::ServingBackend;
use crate::metrics::Metrics;
use crate::trace::{Stage, Tracer};

/// Tuning knobs of the [`Advisor`] control loop.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Pause between ticks of the background loop (ignored by
    /// [`advise_once`], which callers pace themselves).
    pub every: Duration,
    /// Space budget in edges handed to [`select_views`] — the same
    /// knapsack capacity as [`SelectionConfig::budget_edges`], now
    /// enforced continuously instead of once at startup.
    pub budget_edges: u64,
    /// Degree percentile for view-size estimation (paper default 95).
    pub alpha: u8,
    /// Epochs a view must survive before the advisor may drop it.
    pub min_dwell_epochs: u64,
    /// Cap on DDLs (creates plus drops) issued per tick.
    pub max_migrations_per_tick: usize,
    /// Minimum misses in a window before any view is created.
    pub min_misses: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        let sel = SelectionConfig::default();
        AdvisorConfig {
            every: Duration::from_millis(250),
            budget_edges: sel.budget_edges,
            alpha: sel.alpha,
            min_dwell_epochs: 2,
            max_migrations_per_tick: 2,
            min_misses: 2,
        }
    }
}

/// Cross-tick memory of the control loop: when each live view was
/// first seen (for dwell) and its benefit counter at the last tick
/// (so a window's benefit is a delta, not a lifetime total).
#[derive(Debug, Default)]
pub struct AdvisorState {
    /// `(view, epoch first seen)` — creation epoch for views the
    /// advisor created, observation epoch for pre-existing ones.
    seen_at: Vec<(ViewId, u64)>,
    /// `(view, answered)` benefit counters as of the previous tick.
    last_answered: Vec<(ViewId, u64)>,
}

/// What one advisor tick decided (for logs, tests, and the CLI's
/// `--expect-adaptation` gate).
#[derive(Debug, Clone, Default)]
pub struct AdvisorTick {
    /// View definition ids the tick created.
    pub created: Vec<String>,
    /// View slots the tick dropped.
    pub dropped: Vec<ViewId>,
    /// Total misses drained from the window.
    pub misses_seen: u64,
    /// Distinct missed shapes that fed selection.
    pub shapes_seen: usize,
}

impl AdvisorTick {
    /// Total migrations (creates plus drops) this tick issued.
    pub fn migrations(&self) -> usize {
        self.created.len() + self.dropped.len()
    }
}

/// Runs one tick of the control loop inline: drain the sensors, re-run
/// selection against the live statistics, diff, and issue DDL under
/// the hysteresis guards. The background [`Advisor`] calls this on its
/// cadence; tests and the CLI gate call it directly for determinism.
pub fn advise_once<B: ServingBackend>(
    engine: &B,
    cfg: &AdvisorConfig,
    state: &mut AdvisorState,
    tracer: &Tracer,
) -> AdvisorTick {
    let mut span = tracer.span(Stage::Advise);
    let metrics: &Metrics = engine.sensor_metrics();
    let misses = metrics.drain_misses();
    let benefits = metrics.view_benefits();
    let mut tick = AdvisorTick {
        misses_seen: misses.iter().map(|m| m.count).sum(),
        shapes_seen: misses.len(),
        ..AdvisorTick::default()
    };

    // weight each missed shape by its hit count (capped so one hot
    // shape cannot starve the rest of the workload out of the
    // knapsack's improvement sums)
    let workload: Vec<Query> = misses
        .iter()
        .flat_map(|m| std::iter::repeat_n(m.query.clone(), m.count.min(8) as usize))
        .collect();

    // diff the chosen set against the live catalog under one snapshot
    let (epoch, live, creations) = engine.with_current_state(|epoch, snap| {
        let live: Vec<(ViewId, String)> = snap
            .catalog()
            .iter_with_ids()
            .map(|(id, v)| (id, v.def.id()))
            .collect();
        let creations: Vec<kaskade_core::ViewDef> = if workload.is_empty() {
            Vec::new()
        } else {
            let sel = SelectionConfig {
                budget_edges: cfg.budget_edges,
                alpha: cfg.alpha,
            };
            select_views(snap.graph(), snap.stats(), snap.schema(), &workload, &sel)
                .chosen()
                .into_iter()
                .filter(|def| !live.iter().any(|(_, id)| *id == def.id()))
                .cloned()
                .collect()
        };
        (epoch, live, creations)
    });

    // dwell bookkeeping: stamp newly observed views, forget dead slots
    state
        .seen_at
        .retain(|(id, _)| live.iter().any(|(l, _)| l == id));
    for &(id, _) in &live {
        if !state.seen_at.iter().any(|&(s, _)| s == id) {
            state.seen_at.push((id, epoch));
        }
    }

    // benefit over THIS window: lifetime counter minus last tick's
    let answered_in_window = |id: ViewId| {
        let now = benefits
            .iter()
            .find(|b| b.id == id)
            .map_or(0, |b| b.answered);
        let before = state
            .last_answered
            .iter()
            .find(|(l, _)| *l == id)
            .map_or(0, |&(_, n)| n);
        now.saturating_sub(before)
    };

    // drop candidates: live views that earned nothing this window and
    // have dwelled long enough. Only considered once there is fresh
    // workload evidence — an idle engine (no queries at all) is not
    // evidence that its views are useless.
    let saw_queries = tick.misses_seen > 0 || benefits.iter().any(|b| answered_in_window(b.id) > 0);
    let mut drops: Vec<ViewId> = if saw_queries {
        live.iter()
            .filter(|(id, _)| answered_in_window(*id) == 0)
            .filter(|(id, _)| {
                state
                    .seen_at
                    .iter()
                    .find(|(s, _)| s == id)
                    .is_some_and(|&(_, at)| epoch.saturating_sub(at) >= cfg.min_dwell_epochs)
            })
            .map(|&(id, _)| id)
            .collect()
    } else {
        Vec::new()
    };
    // drop the longest-idle (oldest) first, deterministically
    drops.sort_by_key(|id| id.index());

    let mut budget = cfg.max_migrations_per_tick;
    if tick.misses_seen >= cfg.min_misses {
        for def in &creations {
            if budget == 0 {
                break;
            }
            if engine.submit_ddl(DdlOp::CreateView(def.clone())) {
                tick.created.push(def.id());
                budget -= 1;
            }
        }
    }
    for id in drops {
        if budget == 0 {
            break;
        }
        if engine.submit_ddl(DdlOp::DropView(id)) {
            tick.dropped.push(id);
            budget -= 1;
        }
    }
    if tick.migrations() > 0 {
        engine.flush_writes();
        metrics.record_advisor_migrations(tick.migrations());
    }

    // remember this tick's lifetime counters for the next window
    state.last_answered = benefits.iter().map(|b| (b.id, b.answered)).collect();
    // newly created views start their dwell clock at the epoch their
    // DDL published (flushed above, so the cell has advanced past it)
    let epoch_now = engine.with_current_state(|e, _| e);
    for created in &tick.created {
        engine.with_current_state(|_, snap| {
            if let Some((id, _)) = snap
                .catalog()
                .iter_with_ids()
                .map(|(id, v)| (id, v.def.id()))
                .find(|(_, did)| did == created)
            {
                state.seen_at.push((id, epoch_now));
            }
        });
    }

    span.set_epoch(epoch_now);
    span.set_detail(format!(
        "misses={} shapes={} create={} drop={}",
        tick.misses_seen,
        tick.shapes_seen,
        tick.created.len(),
        tick.dropped.len()
    ));
    tick
}

/// The background control task: [`advise_once`] on a fixed cadence
/// against a shared engine, stoppable and joinable. Dropping the
/// handle stops the loop.
#[derive(Debug)]
pub struct Advisor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
    ticks: Arc<AtomicU64>,
    migrations: Arc<AtomicU64>,
}

impl Advisor {
    /// Spawns the control loop against `engine`, ticking every
    /// [`AdvisorConfig::every`]. Spans land in `tracer` under the
    /// `advise` stage.
    pub fn start<B>(engine: Arc<B>, tracer: Arc<Tracer>, cfg: AdvisorConfig) -> Advisor
    where
        B: ServingBackend + Send + Sync + 'static,
    {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let ticks = Arc::new(AtomicU64::new(0));
        let migrations = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let ticks = Arc::clone(&ticks);
            let migrations = Arc::clone(&migrations);
            std::thread::Builder::new()
                .name("kaskade-advisor".into())
                .spawn(move || {
                    let mut state = AdvisorState::default();
                    loop {
                        {
                            let (lock, cvar) = &*stop;
                            let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                            while !*stopped {
                                let (guard, timeout) = cvar
                                    .wait_timeout(stopped, cfg.every)
                                    .unwrap_or_else(|e| e.into_inner());
                                stopped = guard;
                                if timeout.timed_out() {
                                    break;
                                }
                            }
                            if *stopped {
                                return;
                            }
                        }
                        let tick = advise_once(&*engine, &cfg, &mut state, &tracer);
                        ticks.fetch_add(1, Ordering::Relaxed);
                        migrations.fetch_add(tick.migrations() as u64, Ordering::Relaxed);
                    }
                })
                .expect("spawn advisor worker")
        };
        Advisor {
            stop,
            handle: Some(handle),
            ticks,
            migrations,
        }
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Total migrations (creates plus drops) issued so far.
    pub fn migrations(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Stops the loop and joins the thread. Idempotent; also runs on
    /// drop.
    pub fn stop(&mut self) {
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Advisor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use kaskade_core::{ConnectorDef, Kaskade, ViewDef};
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::Schema;
    use kaskade_query::{listings::LISTING_1, parse};

    fn serving_engine(seed: u64, with_view: bool) -> Engine {
        let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
        let mut k = Kaskade::new(g, Schema::provenance());
        if with_view {
            k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        }
        Engine::from_kaskade(&k)
    }

    fn greedy() -> AdvisorConfig {
        AdvisorConfig {
            min_dwell_epochs: 0,
            min_misses: 1,
            ..AdvisorConfig::default()
        }
    }

    #[test]
    fn advisor_creates_a_view_for_a_missed_workload() {
        let engine = serving_engine(41, false);
        let q = parse(LISTING_1).unwrap();
        // the 2-hop workload runs against the bare base graph: misses
        for _ in 0..8 {
            engine.execute(&q).unwrap();
        }
        let mut state = AdvisorState::default();
        let tracer = Tracer::new(false);
        let tick = advise_once(&engine, &greedy(), &mut state, &tracer);
        assert!(tick.misses_seen >= 8, "{tick:?}");
        assert_eq!(
            tick.created,
            vec!["connector:JOB_TO_JOB_2_HOP".to_string()],
            "{tick:?}"
        );
        assert!(tick.dropped.is_empty());
        // the created view now answers the workload: a later tick sees
        // benefit, not misses
        for _ in 0..4 {
            engine.execute(&q).unwrap();
        }
        let tick = advise_once(&engine, &greedy(), &mut state, &tracer);
        assert_eq!(tick.misses_seen, 0, "{tick:?}");
        assert!(tick.created.is_empty());
        assert!(tick.dropped.is_empty(), "beneficial view survives");
        assert_eq!(engine.metrics().advisor_migrations, 1);
    }

    #[test]
    fn advisor_drops_an_idle_view_only_after_dwell() {
        let engine = serving_engine(42, true);
        // publish a few epochs so the pre-existing view's dwell clock
        // (stamped at first observation) can expire
        let mut state = AdvisorState::default();
        let tracer = Tracer::new(false);
        let cfg = AdvisorConfig {
            min_dwell_epochs: 3,
            // high evidence floor: this test exercises the DROP path
            // only — the missed shape must not trigger creations
            min_misses: 1000,
            ..AdvisorConfig::default()
        };
        // a workload the view can't answer: misses, but no drop yet —
        // the view hasn't dwelled
        let q = parse("SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS A)")
            .unwrap();
        engine.execute(&q).unwrap();
        let tick = advise_once(&engine, &cfg, &mut state, &tracer);
        assert!(tick.dropped.is_empty(), "dwell guard holds: {tick:?}");
        for _ in 0..4 {
            let mut d = kaskade_core::GraphDelta::new();
            d.add_vertex("Job", vec![]);
            engine
                .submit(d, crate::engine::SubmitOpts::default())
                .unwrap();
            engine.flush();
        }
        engine.execute(&q).unwrap();
        let tick = advise_once(&engine, &cfg, &mut state, &tracer);
        assert_eq!(tick.dropped, vec![ViewId(0)], "{tick:?}");
        assert!(engine
            .snapshot()
            .state
            .catalog()
            .get_by_id(ViewId(0))
            .is_none());
    }

    #[test]
    fn idle_engine_is_not_evidence_to_drop() {
        let engine = serving_engine(43, true);
        let mut state = AdvisorState::default();
        let tracer = Tracer::new(false);
        let cfg = greedy();
        // no queries at all: repeated ticks must not touch the catalog
        for _ in 0..3 {
            let tick = advise_once(&engine, &cfg, &mut state, &tracer);
            assert_eq!(tick.migrations(), 0, "{tick:?}");
        }
        assert_eq!(engine.snapshot().state.catalog().len(), 1);
    }

    #[test]
    fn migration_cap_bounds_each_tick() {
        let engine = serving_engine(44, false);
        let q = parse(LISTING_1).unwrap();
        for _ in 0..8 {
            engine.execute(&q).unwrap();
        }
        let cfg = AdvisorConfig {
            max_migrations_per_tick: 0,
            min_misses: 1,
            min_dwell_epochs: 0,
            ..AdvisorConfig::default()
        };
        let mut state = AdvisorState::default();
        let tracer = Tracer::new(false);
        let tick = advise_once(&engine, &cfg, &mut state, &tracer);
        assert!(tick.misses_seen > 0);
        assert_eq!(tick.migrations(), 0, "cap of zero migrates nothing");
    }

    #[test]
    fn background_advisor_adapts_and_stops_cleanly() {
        let engine = Arc::new(serving_engine(45, false));
        let q = parse(LISTING_1).unwrap();
        let mut advisor = Advisor::start(
            Arc::clone(&engine),
            Arc::new(Tracer::new(false)),
            AdvisorConfig {
                every: Duration::from_millis(5),
                min_misses: 1,
                // this test races queries against ticks; an infinite
                // dwell keeps the freshly created view from being
                // dropped in a benefit-free window before we observe it
                min_dwell_epochs: u64::MAX,
                ..AdvisorConfig::default()
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            engine.execute(&q).unwrap();
            if engine.metrics().advisor_migrations >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "advisor never migrated"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        advisor.stop();
        let ticks = advisor.ticks();
        assert!(ticks >= 1);
        assert!(advisor.migrations() >= 1);
        // stopped: no further ticks
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(advisor.ticks(), ticks);
        assert!(engine
            .snapshot()
            .state
            .catalog()
            .get("connector:JOB_TO_JOB_2_HOP")
            .is_some());
    }
}
