//! External-id anchored point queries.
//!
//! A query whose `WHERE` clause pins a pattern variable with
//! `id(v) = <ext>` names **one vertex forever**: external ids are
//! client-minted `u64` keys that survive slot compaction (the
//! [`ExternalIdTable`] follows every remap) and restarts (the table is
//! checkpointed). The serving layer exploits that here: instead of
//! scanning a label's whole vertex population and filtering after the
//! fact, it resolves the external id against the **same epoch
//! snapshot** the query runs on and compiles the pattern with the
//! variable pinned to the resolved slot
//! ([`PatternPlan::new_pinned`]) — the anchor scan degenerates to a
//! single-slot probe.
//!
//! Resolution is snapshot-consistent by construction: the engine
//! publishes the external-id table alongside each epoch's state (see
//! [`crate::EpochSnapshot::extids`]), so a query never resolves an id
//! against a newer table than the graph it executes on — across
//! compactions, the pinned slot is always the right one for *this*
//! epoch.

use kaskade_core::KaskadeError;
use kaskade_graph::{ExternalIdTable, Graph, VertexId};
use kaskade_query::{execute_with_pattern, PatternPlan, Query, Table};

/// Executes a query whose `id(v) = <ext>` conjuncts were already split
/// off by [`Query::split_extid_anchors`]: `stripped` is the query with
/// those conjuncts removed, `anchors` the `(pattern variable, external
/// id)` pairs. Each anchor resolves through `extids` into a pinned
/// single-slot scan; an external id that is unmapped (never minted, or
/// retired with its vertex), a pin on a dead slot, or two anchors that
/// pin the same variable to different vertices make the predicate
/// unsatisfiable — the result is an empty table with the query's
/// columns, not an error.
pub fn execute_anchored(
    graph: &Graph,
    extids: &ExternalIdTable,
    stripped: &Query,
    anchors: &[(String, u64)],
) -> Result<Table, KaskadeError> {
    let mut pins: Vec<(String, VertexId)> = Vec::with_capacity(anchors.len());
    let mut unsatisfiable = false;
    for (var, ext) in anchors {
        match extids.get(*ext) {
            Some(v) if graph.is_vertex_live(v) => {
                match pins.iter().find(|(pv, _)| pv == var) {
                    // two anchors on one variable must agree
                    Some((_, prev)) if *prev != v => unsatisfiable = true,
                    Some(_) => {}
                    None => pins.push((var.clone(), v)),
                }
            }
            _ => unsatisfiable = true,
        }
    }
    execute_with_pattern(graph, stripped, &|p| {
        if unsatisfiable {
            let aliases = p.returns.iter().map(|(_, a)| a.clone()).collect();
            return Ok((aliases, Vec::new()));
        }
        let plan = PatternPlan::new_pinned(graph, p, &pins)?;
        Ok(plan.execute(graph))
    })
    .map_err(KaskadeError::Execution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::{GraphBuilder, Value};
    use kaskade_query::parse;

    /// j0 -> f0 -> j1, j0 -> f1 -> j2; jobs carry CPU props.
    fn lineage() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        let f1 = b.add_vertex("File");
        let j2 = b.add_vertex("Job");
        b.set_vertex_prop(j0, "CPU", Value::Int(10));
        b.set_vertex_prop(j1, "CPU", Value::Int(20));
        b.set_vertex_prop(j2, "CPU", Value::Int(30));
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.add_edge(j0, f1, "WRITES_TO");
        b.add_edge(f1, j2, "IS_READ_BY");
        b.finish()
    }

    fn extids() -> ExternalIdTable {
        let mut t = ExternalIdTable::new();
        t.insert(100, VertexId(0)).unwrap();
        t.insert(102, VertexId(2)).unwrap();
        t.insert(104, VertexId(4)).unwrap();
        t
    }

    const POINT: &str = "SELECT B.CPU FROM (
        MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job)
        RETURN a AS A, b AS B) WHERE id(A) = 100";

    #[test]
    fn anchored_query_answers_from_a_single_slot() {
        let g = lineage();
        let t = extids();
        let q = parse(POINT).unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        let table = execute_anchored(&g, &t, &stripped, &anchors).unwrap();
        let mut cpus: Vec<i64> = table
            .rows
            .iter()
            .map(|r| match &r[0] {
                kaskade_query::Datum::Val(Value::Int(v)) => *v,
                other => panic!("expected int, got {other:?}"),
            })
            .collect();
        cpus.sort();
        assert_eq!(cpus, vec![20, 30], "both downstream jobs of j0");
    }

    #[test]
    fn unmapped_or_dead_external_ids_yield_empty_not_error() {
        let g = lineage();
        let t = extids();
        let q = parse(&POINT.replace("= 100", "= 999")).unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        let table = execute_anchored(&g, &t, &stripped, &anchors).unwrap();
        assert_eq!(table.columns, vec!["B.CPU".to_string()]);
        assert!(table.rows.is_empty());
        // mapped id, but the vertex was retracted meanwhile
        let dead = g.remove_vertices([VertexId(0)]);
        let q = parse(POINT).unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        let table = execute_anchored(&dead, &t, &stripped, &anchors).unwrap();
        assert!(table.rows.is_empty());
    }

    #[test]
    fn conflicting_anchors_on_one_variable_are_unsatisfiable() {
        let g = lineage();
        let t = extids();
        let q = parse(&POINT.replace("id(A) = 100", "id(A) = 100 AND id(A) = 102")).unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        assert_eq!(anchors.len(), 2);
        let table = execute_anchored(&g, &t, &stripped, &anchors).unwrap();
        assert!(table.rows.is_empty());
        // ... while two agreeing anchors are just one pin
        let q = parse(&POINT.replace("id(A) = 100", "id(A) = 100 AND id(A) = 100")).unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        let table = execute_anchored(&g, &t, &stripped, &anchors).unwrap();
        assert_eq!(table.rows.len(), 2);
    }

    #[test]
    fn remaining_predicates_still_filter_after_anchoring() {
        let g = lineage();
        let t = extids();
        let q = parse(&POINT.replace("id(A) = 100", "id(A) = 100 AND B.CPU > 25")).unwrap();
        let (stripped, anchors) = q.split_extid_anchors().unwrap();
        let table = execute_anchored(&g, &t, &stripped, &anchors).unwrap();
        assert_eq!(table.rows.len(), 1, "only j2 (CPU 30) passes the filter");
    }
}
