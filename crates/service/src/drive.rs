//! A reusable load harness: N reader threads at a fixed pace against a
//! scripted delta writer.
//!
//! Both the `kaskade serve` CLI mode and the `kaskade-bench`
//! concurrent-throughput experiment drive the [`Engine`] the same way;
//! this module is that shared way. Reader threads round-robin a query
//! list through per-thread [`crate::Reader`] handles (the lock-free
//! path); one writer thread submits scripted deltas of a configurable
//! [`Workload`] shape (append / churn / hotkey / burst) on its own
//! cadence. Readers optionally self-check snapshot consistency on
//! every query, turning any torn read into a counted failure; every
//! run additionally verifies the final snapshot — views against
//! from-scratch re-materialization and incremental statistics against
//! a full recompute — so stale-view regressions fail `--smoke`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use kaskade_core::{materialize, DdlOp, GraphDelta, KaskadeError, Snapshot};
use kaskade_query::{Query, Table};

use crate::engine::{Engine, SubmitError, SubmitOpts};
use crate::metrics::{Metrics, MetricsReport};
use crate::shard::ShardedEngine;
use crate::stream::{delta_for, Workload};

/// The engine surface [`drive`] needs: per-thread readers, snapshot
/// access, and the write path. Implemented by the single [`Engine`] and
/// the [`ShardedEngine`], so the CLI's `serve` mode, the bench
/// experiments, and the acceptance tests exercise both through one
/// harness.
pub trait ServingBackend: Sync {
    /// A per-thread read handle with a cached, epoch-validated
    /// snapshot.
    type Reader: Send;

    /// Creates a read handle (see [`Engine::reader`]).
    fn serving_reader(&self) -> Self::Reader;

    /// Plans (through the backend's plan cache) and executes `query`
    /// against the reader's cached snapshot.
    fn serve_query(&self, reader: &mut Self::Reader, query: &Query) -> Result<Table, KaskadeError>;

    /// Runs `f` over the reader's cached read state without cloning
    /// it (this accessor sits on a hot loop: per-read consistency
    /// verification).
    fn with_reader_state<R>(&self, reader: &mut Self::Reader, f: impl FnOnce(&Snapshot) -> R) -> R;

    /// Runs `f` over the currently published read state — and the
    /// epoch it was published at — without cloning it (the drive
    /// writer scripts a delta from it every write step and submits
    /// with that epoch, so ids survive a concurrent slot compaction).
    fn with_current_state<R>(&self, f: impl FnOnce(u64, &Snapshot) -> R) -> R;

    /// Queues a delta whose existing-vertex ids were resolved against
    /// the snapshot published at `based_on` (see
    /// [`Engine::submit`] with [`SubmitOpts::based_on`]).
    fn submit_delta(&self, delta: GraphDelta, based_on: u64) -> Result<(), SubmitError>;

    /// Waits until every submitted delta is visible to readers.
    fn flush_writes(&self) -> u64;

    /// Queues a catalog [`DdlOp`] (create/drop view) to publish as its
    /// own epoch — WAL-logged, plan cache invalidated (see
    /// [`Engine::submit_ddl`]). Returns `false` if the backend is
    /// shutting down.
    fn submit_ddl(&self, op: DdlOp) -> bool;

    /// The backend's live metrics block. The
    /// [`Advisor`](crate::advisor::Advisor) reads its workload sensors
    /// (per-view benefit counters, the miss log) here and records its
    /// migrations through it.
    fn sensor_metrics(&self) -> &Metrics;

    /// The backend's aggregate metrics.
    fn metrics_report(&self) -> MetricsReport;
}

impl ServingBackend for Engine {
    type Reader = crate::snapshot::Reader;

    fn serving_reader(&self) -> Self::Reader {
        self.reader()
    }

    fn serve_query(&self, reader: &mut Self::Reader, query: &Query) -> Result<Table, KaskadeError> {
        self.execute_with(reader, query)
    }

    fn with_reader_state<R>(&self, reader: &mut Self::Reader, f: impl FnOnce(&Snapshot) -> R) -> R {
        f(&reader.snapshot().state)
    }

    fn with_current_state<R>(&self, f: impl FnOnce(u64, &Snapshot) -> R) -> R {
        let snap = self.snapshot();
        f(snap.epoch, &snap.state)
    }

    fn submit_delta(&self, delta: GraphDelta, based_on: u64) -> Result<(), SubmitError> {
        self.submit(delta, SubmitOpts::based_on(based_on))
    }

    fn flush_writes(&self) -> u64 {
        self.flush()
    }

    fn submit_ddl(&self, op: DdlOp) -> bool {
        self.submit_ddl(op)
    }

    fn sensor_metrics(&self) -> &Metrics {
        self.metrics_handle()
    }

    fn metrics_report(&self) -> MetricsReport {
        self.metrics()
    }
}

impl ServingBackend for ShardedEngine {
    type Reader = crate::shard::ShardedReader;

    fn serving_reader(&self) -> Self::Reader {
        self.reader()
    }

    fn serve_query(&self, reader: &mut Self::Reader, query: &Query) -> Result<Table, KaskadeError> {
        self.execute_with(reader, query)
    }

    fn with_reader_state<R>(&self, reader: &mut Self::Reader, f: impl FnOnce(&Snapshot) -> R) -> R {
        f(&reader.snapshot().state)
    }

    fn with_current_state<R>(&self, f: impl FnOnce(u64, &Snapshot) -> R) -> R {
        let snap = self.snapshot();
        f(snap.epoch, &snap.state)
    }

    fn submit_delta(&self, delta: GraphDelta, based_on: u64) -> Result<(), SubmitError> {
        self.submit(delta, SubmitOpts::based_on(based_on))
    }

    fn flush_writes(&self) -> u64 {
        self.flush()
    }

    fn submit_ddl(&self, op: DdlOp) -> bool {
        self.submit_ddl(op)
    }

    fn sensor_metrics(&self) -> &Metrics {
        self.metrics_handle()
    }

    fn metrics_report(&self) -> MetricsReport {
        self.metrics().global
    }
}

/// Workload shape for [`drive`].
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Wall-clock duration to run.
    pub duration: Duration,
    /// Pause between queries on each reader thread (`ZERO` = closed
    /// loop, i.e. as fast as the engine allows).
    pub read_pause: Duration,
    /// Pause between submitted deltas (`ZERO` disables the writer).
    pub write_pause: Duration,
    /// Cap on submitted deltas (0 = unlimited within `duration`).
    pub max_writes: u64,
    /// Re-verify on every read that each catalog entry matches a fresh
    /// materialization of its definition against the snapshot's base
    /// graph (expensive; for tests/smoke runs, not throughput numbers).
    pub verify_consistency: bool,
    /// Shape of the scripted delta stream the writer submits.
    pub workload: Workload,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            readers: 4,
            duration: Duration::from_millis(500),
            read_pause: Duration::ZERO,
            write_pause: Duration::from_millis(2),
            max_writes: 0,
            verify_consistency: false,
            workload: Workload::Append,
        }
    }
}

/// What a [`drive`] run observed.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// Successful reads across all reader threads.
    pub reads: u64,
    /// Failed reads (query errors) across all reader threads.
    pub read_errors: u64,
    /// Snapshot-consistency violations observed (always 0 unless the
    /// engine is broken; only counted with `verify_consistency`).
    pub consistency_violations: u64,
    /// Deltas submitted by the writer thread.
    pub writes: u64,
    /// Submissions the bounded queue refused (backpressure); the writer
    /// retries them after a pause.
    pub writes_backpressured: u64,
    /// Whether the final (post-flush) snapshot passed the full
    /// consistency oracle: every materialized view equals a fresh
    /// re-materialization over the final base graph, and the
    /// incrementally maintained statistics equal a from-scratch
    /// `GraphStats::compute`. Checked on every run — a stale-view or
    /// stale-stats regression fails `--smoke` even without
    /// `verify_consistency`.
    pub final_consistent: bool,
    /// Wall-clock time actually spent.
    pub elapsed: Duration,
    /// The engine's metrics at the end of the run (after a flush).
    pub report: MetricsReport,
}

impl DriveOutcome {
    /// Successful reads per second of wall-clock time.
    pub fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Checks that a snapshot is internally consistent: every catalog entry
/// equals a fresh materialization of its definition over the snapshot's
/// base graph — same vertices (type and properties, in id order) and
/// the same edge multiset (endpoints, type, and properties including
/// `ts` and the provenance `support` count; edge *order* may differ
/// between incremental and full builds) — and the incrementally
/// maintained statistics equal a from-scratch `GraphStats::compute`
/// over the base graph. Including properties matters: incremental
/// maintenance copies them separately from structure, so a
/// property-dropping bug must fail this oracle too. O(views ×
/// materialization) — a correctness oracle, not a fast path.
pub fn snapshot_is_consistent(state: &kaskade_core::Snapshot) -> bool {
    if *state.stats() != kaskade_graph::GraphStats::compute(state.graph()) {
        return false;
    }
    let props = |g: &kaskade_graph::Graph, m: &kaskade_graph::PropMap| {
        let mut kv: Vec<(String, String)> = m
            .iter()
            .map(|(k, v)| (g.resolve(k).to_string(), format!("{v:?}")))
            .collect();
        kv.sort();
        kv
    };
    let fingerprint = |g: &kaskade_graph::Graph| {
        let vertices: Vec<_> = g
            .vertices()
            .map(|v| (g.vertex_type(v).to_string(), props(g, g.vertex_props(v))))
            .collect();
        let mut edges: Vec<_> = g
            .edges()
            .map(|e| {
                (
                    g.edge_src(e).0,
                    g.edge_dst(e).0,
                    g.edge_type(e).to_string(),
                    props(g, g.edge_props(e)),
                )
            })
            .collect();
        edges.sort();
        (vertices, edges)
    };
    state.catalog().iter().all(|view| {
        let fresh = materialize(state.graph(), &view.def);
        fingerprint(&fresh) == fingerprint(&view.graph)
    })
}

/// Runs the workload against `engine` — a single [`Engine`] or a
/// [`ShardedEngine`] — and gathers the outcome. Reader threads cycle
/// through `queries` (offset by thread index so threads diverge); the
/// writer derives deltas of the configured [`Workload`] shape from the
/// latest snapshot via [`delta_for`]. Returns after `cfg.duration`
/// plus a final flush and a full consistency check of the final
/// snapshot.
pub fn drive<B: ServingBackend>(engine: &B, queries: &[Query], cfg: &DriveConfig) -> DriveOutcome {
    assert!(!queries.is_empty(), "drive needs at least one query");
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let read_errors = AtomicU64::new(0);
    let violations = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let backpressured = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for reader_idx in 0..cfg.readers.max(1) {
            let (stop, reads, read_errors, violations) = (&stop, &reads, &read_errors, &violations);
            let mut reader = engine.serving_reader();
            scope.spawn(move || {
                let mut i = reader_idx;
                while !stop.load(Ordering::Relaxed) {
                    let query = &queries[i % queries.len()];
                    i += 1;
                    match engine.serve_query(&mut reader, query) {
                        Ok(_) => {
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            read_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if cfg.verify_consistency
                        && !engine.with_reader_state(&mut reader, snapshot_is_consistent)
                    {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                    if !cfg.read_pause.is_zero() {
                        std::thread::sleep(cfg.read_pause);
                    }
                }
            });
        }
        if !cfg.write_pause.is_zero() {
            let (stop, writes, backpressured) = (&stop, &writes, &backpressured);
            scope.spawn(move || {
                let mut step = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if cfg.max_writes > 0 && step >= cfg.max_writes {
                        break;
                    }
                    // capture the snapshot's epoch with the delta: the
                    // delta's ids are in THAT epoch's id space, and a
                    // slot compaction may publish before the submit
                    // lands
                    let scripted = engine.with_current_state(|epoch, state| {
                        delta_for(cfg.workload, state, step).map(|d| (d, epoch))
                    });
                    match scripted {
                        Some((delta, epoch)) => match engine.submit_delta(delta, epoch) {
                            Ok(()) => {
                                writes.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(SubmitError::Backpressure) => {
                                // the queue is full: shed this step and
                                // let the worker drain before retrying
                                backpressured.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(cfg.write_pause);
                                continue;
                            }
                            Err(_) => break, // engine shutting down
                        },
                        None => break,
                    }
                    step += 1;
                    std::thread::sleep(cfg.write_pause);
                }
            });
        }
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
    });

    // the measured window ends when the reader threads stop: the final
    // flush and the O(views × materialization) consistency oracle below
    // must not deflate reads_per_sec
    let elapsed = start.elapsed();
    engine.flush_writes();
    let final_consistent = engine.with_current_state(|_, state| snapshot_is_consistent(state));
    DriveOutcome {
        reads: reads.load(Ordering::Relaxed),
        read_errors: read_errors.load(Ordering::Relaxed),
        consistency_violations: violations.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        writes_backpressured: backpressured.load(Ordering::Relaxed),
        final_consistent,
        elapsed,
        report: engine.metrics_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_core::{ConnectorDef, Kaskade, ViewDef};
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::Schema;
    use kaskade_query::{listings::LISTING_1, parse};

    #[test]
    fn drive_reads_and_writes_concurrently() {
        let g = generate_provenance(&ProvenanceConfig::tiny(31).core_only());
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = Engine::from_kaskade(&k);
        let queries = vec![parse(LISTING_1).unwrap()];
        let outcome = drive(
            &engine,
            &queries,
            &DriveConfig {
                readers: 4,
                duration: Duration::from_millis(200),
                write_pause: Duration::from_millis(1),
                ..DriveConfig::default()
            },
        );
        assert!(outcome.reads > 0, "readers made progress");
        assert_eq!(outcome.read_errors, 0);
        assert!(outcome.writes > 0, "writer made progress");
        assert!(outcome.report.epoch > 0, "snapshots were published");
        assert!(outcome.report.plan_cache_hit_rate() > 0.0);
        assert!(outcome.reads_per_sec() > 0.0);
        assert!(outcome.final_consistent, "final snapshot passes the oracle");
    }

    #[test]
    fn drive_churn_workload_stays_consistent() {
        let g = generate_provenance(&ProvenanceConfig::tiny(32).core_only());
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = Engine::from_kaskade(&k);
        let queries = vec![parse(LISTING_1).unwrap()];
        let outcome = drive(
            &engine,
            &queries,
            &DriveConfig {
                readers: 2,
                duration: Duration::from_millis(250),
                write_pause: Duration::from_millis(1),
                workload: Workload::Churn,
                verify_consistency: true,
                ..DriveConfig::default()
            },
        );
        assert_eq!(outcome.consistency_violations, 0, "no torn reads");
        assert!(outcome.final_consistent, "churn left a consistent state");
        assert!(outcome.writes > 0);
    }
}
